"""Project-wide, module-qualified call graph for interprocedural passes.

Every rule before this module was *lexical*: it saw one file at a time
and stopped at function boundaries.  The dataflow rule families
(REPRO21x seed-taint, REPRO22x lock order, REPRO23x durability) need to
answer questions like "is this RNG's seed argument tainted at *every*
call site of the enclosing function?" — which requires knowing, for the
whole analyzed tree at once, which function calls which.

The graph is deliberately modest and deliberately honest about it:

* names are **module-qualified** (``repro.tuning.queue.JobQueue.claim``),
  derived from the display path, so fixture trees in tests get the same
  resolution as the real package;
* ``self.method()`` resolves within the enclosing class;
* ``self.attr.method()`` resolves through *attribute types* inferred
  from ``__init__`` (annotated parameters assigned to ``self.attr``,
  or direct ``self.attr = ClassName(...)`` constructions);
* cross-module calls resolve through import aliases, including
  relative imports (``from ..fsutil import atomic_write_text``);
* anything dynamic (callbacks, ``getattr``, duck typing) simply
  produces no edge — passes must treat "no edge" as "unknown", never
  as "safe".

``repro analyze --graph FILE`` dumps the graph as deterministic JSON.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .lint import LintContext

#: Sentinel function name for module-level (top-of-file) code.
MODULE_SCOPE = "<module>"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(display_path: str) -> str:
    """Dotted module name for a repo-relative display path.

    ``src/repro/tuning/queue.py`` -> ``repro.tuning.queue``; fixture
    trees without a ``src/`` prefix keep their own shape
    (``sim/timeline.py`` -> ``sim.timeline``).
    """
    parts = list(Path(display_path).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolve_relative(package: str, level: int, module: Optional[str]) -> str:
    """Absolute module named by ``from <level dots><module> import ...``."""
    base_parts = package.split(".") if package else []
    # level=1 means "the current package"; each extra level goes up one.
    if level > 1:
        base_parts = base_parts[: max(0, len(base_parts) - (level - 1))]
    if module:
        base_parts.append(module)
    return ".".join(base_parts)


def _module_aliases(module: str, tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted target, resolving relative imports."""
    package = module.rsplit(".", 1)[0] if "." in module else ""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    head = name.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(package, node.level, node.module)
            else:
                base = node.module or ""
            for name in node.names:
                target = f"{base}.{name.name}" if base else name.name
                aliases[name.asname or name.name] = target
    return aliases


@dataclass
class FunctionInfo:
    """One def in the analyzed tree."""

    qualname: str                 # module.Class.method or module.func
    module: str
    name: str
    cls: str                      # "" for free functions
    node: FunctionNode
    lineno: int
    params: Tuple[str, ...]       # declared parameter names, minus self/cls

    @property
    def is_method(self) -> bool:
        return bool(self.cls)


@dataclass
class ClassInfo:
    """One class in the analyzed tree, with what the lock/taint passes need."""

    qualname: str                 # module.Class
    module: str
    name: str
    node: ast.ClassDef
    #: self.<attr> -> project class qualname, from __init__ evidence.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: names of self.*_lock attributes this class assigns.
    lock_attrs: Set[str] = field(default_factory=set)


@dataclass
class CallSite:
    """One resolved call edge occurrence."""

    caller: str                   # qualname (``mod.<module>`` at top level)
    callee: str                   # qualname of the resolved target
    module: str                   # caller's module
    node: ast.Call


@dataclass
class ModuleInfo:
    """One parsed file plus its lint context (for pragma suppression)."""

    name: str
    ctx: LintContext
    aliases: Dict[str, str]

    @property
    def tree(self) -> ast.Module:
        return self.ctx.tree

    @property
    def display_path(self) -> str:
        return self.ctx.display_path


def _param_names(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _annotation_class(expr: Optional[ast.expr]) -> Optional[str]:
    """The (possibly dotted) class name an annotation spells, unwrapping
    ``Optional[...]`` one level."""
    if expr is None:
        return None
    if isinstance(expr, ast.Subscript):
        head = expr.value
        if isinstance(head, ast.Name) and head.id == "Optional":
            return _annotation_class(expr.slice)
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value  # string annotation
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        parts: List[str] = []
        node: ast.expr = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
    return None


class CallGraph:
    """The resolved project: modules, defs, classes, and call edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: List[CallSite] = []
        self._callees: Dict[str, Set[str]] = {}
        self._callers: Dict[str, Set[str]] = {}
        self._sites_by_callee: Dict[str, List[CallSite]] = {}

    # -- queries --------------------------------------------------------------

    def callees_of(self, qualname: str) -> Set[str]:
        return self._callees.get(qualname, set())

    def callers_of(self, qualname: str) -> Set[str]:
        return self._callers.get(qualname, set())

    def call_sites_of(self, callee: str) -> List[CallSite]:
        return self._sites_by_callee.get(callee, [])

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        fn = self.functions.get(qualname)
        if fn is not None:
            return self.modules.get(fn.module)
        if qualname.endswith(f".{MODULE_SCOPE}"):
            return self.modules.get(qualname.rsplit(".", 1)[0])
        return None

    def suppressed(self, module: ModuleInfo, line: int, rule: str) -> bool:
        return module.ctx.suppressed(line, rule)

    # -- construction ---------------------------------------------------------

    def _add_edge(self, site: CallSite) -> None:
        self.calls.append(site)
        self._callees.setdefault(site.caller, set()).add(site.callee)
        self._callers.setdefault(site.callee, set()).add(site.caller)
        self._sites_by_callee.setdefault(site.callee, []).append(site)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON form (the ``--graph`` dump)."""
        return {
            "schema": "repro.analysis-callgraph",
            "version": 1,
            "modules": {
                name: info.display_path
                for name, info in sorted(self.modules.items())
            },
            "functions": [
                {
                    "qualname": fn.qualname,
                    "module": fn.module,
                    "line": fn.lineno,
                    "params": list(fn.params),
                }
                for _, fn in sorted(self.functions.items())
            ],
            "classes": [
                {
                    "qualname": cls.qualname,
                    "locks": sorted(cls.lock_attrs),
                    "attr_types": dict(sorted(cls.attr_types.items())),
                }
                for _, cls in sorted(self.classes.items())
            ],
            "edges": sorted(
                {(s.caller, s.callee) for s in self.calls}
            ),
        }


def _lock_attrs_of(cls: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.endswith("_lock")
            ):
                locks.add(target.attr)
    return locks


class _DefCollector(ast.NodeVisitor):
    """First pass: register every def/class of one module."""

    def __init__(self, graph: CallGraph, module: ModuleInfo) -> None:
        self.graph = graph
        self.module = module
        self.class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = f"{self.module.name}.{node.name}"
        self.graph.classes[qualname] = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            node=node,
            lock_attrs=_lock_attrs_of(node),
        )
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_def(self, node: FunctionNode) -> None:
        cls = self.class_stack[-1] if self.class_stack else ""
        prefix = f"{self.module.name}.{cls}." if cls else f"{self.module.name}."
        qualname = f"{prefix}{node.name}"
        # Innermost definition wins on (rare) name collisions.
        self.graph.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            cls=cls,
            node=node,
            lineno=node.lineno,
            params=_param_names(node),
        )
        # Nested defs resolve like free functions of the module; their
        # bodies are visited but their names are rarely call targets.
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)


def _infer_attr_types(graph: CallGraph, cls: ClassInfo, module: ModuleInfo) -> None:
    """Fill ``cls.attr_types`` from ``__init__`` assignments."""
    init = next(
        (
            stmt for stmt in cls.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ),
        None,
    )
    if init is None:
        return
    param_types: Dict[str, str] = {}
    args = init.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        spelled = _annotation_class(arg.annotation)
        if spelled is None:
            continue
        resolved = _resolve_class_name(graph, module, spelled)
        if resolved is not None:
            param_types[arg.arg] = resolved
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in param_types:
                cls.attr_types[target.attr] = param_types[value.id]
            elif isinstance(value, ast.Call):
                spelled_call = _spelled_name(value.func)
                if spelled_call is None:
                    continue
                resolved = _resolve_class_name(graph, module, spelled_call)
                if resolved is not None:
                    cls.attr_types[target.attr] = resolved


def _spelled_name(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_class_name(
    graph: CallGraph, module: ModuleInfo, spelled: str
) -> Optional[str]:
    """Project class qualname for a name as spelled in ``module``."""
    local = f"{module.name}.{spelled}"
    if local in graph.classes:
        return local
    head, _, rest = spelled.partition(".")
    target = module.aliases.get(head)
    if target is not None:
        candidate = f"{target}.{rest}" if rest else target
        if candidate in graph.classes:
            return candidate
    if spelled in graph.classes:
        return spelled
    return None


class _CallResolver(ast.NodeVisitor):
    """Second pass: resolve call targets to project qualnames."""

    def __init__(self, graph: CallGraph, module: ModuleInfo) -> None:
        self.graph = graph
        self.module = module
        self.class_stack: List[str] = []
        self.func_stack: List[str] = []

    @property
    def caller(self) -> str:
        if self.func_stack:
            return self.func_stack[-1]
        return f"{self.module.name}.{MODULE_SCOPE}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_def(self, node: FunctionNode) -> None:
        cls = self.class_stack[-1] if self.class_stack else ""
        prefix = f"{self.module.name}.{cls}." if cls else f"{self.module.name}."
        self.func_stack.append(f"{prefix}{node.name}")
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = self._resolve(node)
        if callee is not None:
            self.graph._add_edge(CallSite(
                caller=self.caller,
                callee=callee,
                module=self.module.name,
                node=node,
            ))
        self.generic_visit(node)

    # -- resolution -----------------------------------------------------------

    def _resolve(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func)
        return None

    def _resolve_bare(self, name: str) -> Optional[str]:
        mod = self.module.name
        local_fn = f"{mod}.{name}"
        if local_fn in self.graph.functions:
            return local_fn
        if local_fn in self.graph.classes:
            init = f"{local_fn}.__init__"
            return init if init in self.graph.functions else None
        target = self.module.aliases.get(name)
        if target is None:
            return None
        if target in self.graph.functions:
            return target
        if target in self.graph.classes:
            init = f"{target}.__init__"
            return init if init in self.graph.functions else None
        return None

    def _resolve_attribute(self, func: ast.Attribute) -> Optional[str]:
        value = func.value
        # self.method(...)
        if (
            isinstance(value, ast.Name)
            and value.id == "self"
            and self.class_stack
        ):
            qualname = (
                f"{self.module.name}.{self.class_stack[-1]}.{func.attr}"
            )
            if qualname in self.graph.functions:
                return qualname
            return None
        # self.attr.method(...): through inferred attribute types.
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.class_stack
        ):
            cls_qual = f"{self.module.name}.{self.class_stack[-1]}"
            cls = self.graph.classes.get(cls_qual)
            if cls is None:
                return None
            target_cls = cls.attr_types.get(value.attr)
            if target_cls is None:
                return None
            qualname = f"{target_cls}.{func.attr}"
            if qualname in self.graph.functions:
                return qualname
            return None
        # module.func(...) / package.module.Class.method(...) via aliases.
        spelled = _spelled_name(func)
        if spelled is None:
            return None
        head, _, rest = spelled.partition(".")
        target = self.module.aliases.get(head)
        if target is None or not rest:
            return None
        candidate = f"{target}.{rest}"
        if candidate in self.graph.functions:
            return candidate
        if candidate in self.graph.classes:
            init = f"{candidate}.__init__"
            return init if init in self.graph.functions else None
        return None


def build_call_graph(contexts: Sequence[LintContext]) -> CallGraph:
    """Build the project call graph from parsed lint contexts."""
    graph = CallGraph()
    for ctx in contexts:
        name = module_name_for(ctx.display_path)
        module = ModuleInfo(
            name=name,
            ctx=ctx,
            aliases=_module_aliases(name, ctx.tree),
        )
        graph.modules[name] = module
    for module in graph.modules.values():
        _DefCollector(graph, module).visit(module.tree)
    for module in graph.modules.values():
        for cls in list(graph.classes.values()):
            if cls.module == module.name:
                _infer_attr_types(graph, cls, module)
    for module in graph.modules.values():
        _CallResolver(graph, module).visit(module.tree)
    return graph


__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "MODULE_SCOPE",
    "ModuleInfo",
    "build_call_graph",
    "module_name_for",
]
