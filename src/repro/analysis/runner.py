"""The analysis driver behind ``repro analyze``.

One run = lint rules over every Python file under the given paths,
the concurrency heuristic over the threaded modules, the
interprocedural dataflow passes (seed-taint, lock order, durability)
over a project-wide call graph, the lease-protocol model check, and
(optionally) the in-process catalog verifiers — filtered through the
committed baseline into *new* findings (fail CI) and *baselined*
findings (explicitly accepted, with justification).

Rule selection accepts **families**: ``REPRO21x`` expands to every
registered rule sharing the first two digits (REPRO210, REPRO211), so
CI can say ``--rules REPRO21x,REPRO22x,REPRO23x,REPRO24x`` and keep
working as families grow.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..errors import ReproError
from ..fsutil import atomic_write_text
from . import concurrency, dataflow, durability, locks, protocol
from .baseline import Baseline, BaselineEntry
from .callgraph import CallGraph, build_call_graph
from .findings import Finding, FindingCollector
from .lint import LintContext, LintRule, rules_by_id

#: Directory names never worth analyzing.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}

#: Non-lint rules the runner drives directly (id -> short description).
EXTRA_RULES: Dict[str, str] = {
    concurrency.RULE_ID: "shared-state mutation outside the lock",
    dataflow.RULE_UNSEEDED: "RNG constructed without a seed",
    dataflow.RULE_UNTAINTED: "RNG seed not derived from a taint source",
    locks.RULE_ORDER: "lock-acquisition-order cycle",
    durability.RULE_RAW_WRITE: "non-atomic durable write",
    durability.RULE_RENAME_NO_FSYNC: "rename after write without fsync",
    protocol.RULE_ID: "lease-protocol invariant violation",
}

_FAMILY_RE = re.compile(r"^(REPRO\d\d)x$")


def collect_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.append(candidate)
        else:
            raise ReproError(f"no such file or directory: {path}")
    return out


def _display(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        resolved = path.resolve()
        resolved_root = root.resolve()
        if resolved.is_relative_to(resolved_root):
            return resolved.relative_to(resolved_root).as_posix()
    return path.as_posix()


def known_rule_ids() -> Set[str]:
    """Every rule id the runner can drive."""
    return {r.id for r in rules_by_id(None)} | set(EXTRA_RULES)


def expand_rule_ids(wanted: Iterable[str]) -> List[str]:
    """Expand family tokens (``REPRO21x``) and validate ids."""
    known = known_rule_ids()
    out: List[str] = []
    for token in wanted:
        family = _FAMILY_RE.match(token)
        if family:
            members = sorted(
                rule for rule in known if rule.startswith(family.group(1))
            )
            if not members:
                raise ReproError(
                    f"rule family {token} matches nothing; available: "
                    f"{sorted(known)}"
                )
            out.extend(members)
        elif token in known:
            out.append(token)
        else:
            raise ReproError(
                f"unknown analysis rules ['{token}']; available: "
                f"{sorted(known)} (families like REPRO21x also work)"
            )
    return out


@dataclass
class AnalysisReport:
    """Outcome of one ``repro analyze`` run."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def clean(self) -> bool:
        return not self.new

    def to_dict(self) -> dict:
        return {
            "files_analyzed": self.files_analyzed,
            "new_findings": [f.to_dict() for f in self.new],
            "baselined_findings": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": [
                e.to_dict() for e in self.stale_baseline
            ],
            "clean": self.clean,
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.new:
            lines.append(finding.render())
        if self.new:
            lines.append("")
        lines.append(
            f"{len(self.new)} new finding(s), {len(self.baselined)} "
            f"baselined, {self.files_analyzed} file(s) analyzed"
        )
        if self.baselined:
            for finding in self.baselined:
                lines.append(f"  baselined: {finding.render()}")
        if self.stale_baseline:
            lines.append(
                f"warning: {len(self.stale_baseline)} stale baseline "
                f"entr(ies) no longer match anything — prune them:"
            )
            for entry in self.stale_baseline:
                lines.append(
                    f"  stale: {entry.rule} {entry.path} "
                    f"[{entry.symbol}] {entry.fingerprint}"
                )
        return "\n".join(lines)


def _lint_contexts(
    files: Sequence[Path], root: Optional[Path]
) -> List[LintContext]:
    return [
        LintContext.for_file(path, _display(path, root)) for path in files
    ]


def _run_lint(
    ctx: LintContext, rules: Sequence[LintRule]
) -> List[Finding]:
    out: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                out.append(finding)
    return out


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    *,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    include_catalogs: bool = True,
    root: Optional[Union[str, Path]] = None,
    graph_out: Optional[Union[str, Path]] = None,
) -> AnalysisReport:
    """Run the full static analysis over ``paths``.

    ``rules`` narrows the run to specific rule ids or families
    (``REPRO21x``); by default every pass runs.  ``root`` makes
    reported paths repo-relative, which is what baseline fingerprints
    should use.  ``graph_out`` dumps the project call graph as
    deterministic JSON.
    """
    if rules is None:
        active_ids = sorted(known_rule_ids())
    else:
        active_ids = expand_rule_ids(rules)
    active_set = set(active_ids)
    lint_rules = rules_by_id(
        [r for r in active_ids if r not in EXTRA_RULES]
    )
    root_path = Path(root) if root is not None else None
    collector = FindingCollector()
    files = collect_python_files(paths)
    contexts = _lint_contexts(files, root_path)

    for ctx in contexts:
        collector.extend(_run_lint(ctx, lint_rules))
        if (
            concurrency.RULE_ID in active_set
            and concurrency.is_threaded_module(ctx.path)
        ):
            collector.extend(_concurrency_findings(ctx))

    # Interprocedural passes share one call graph over all analyzed files.
    graph_rules = {
        dataflow.RULE_UNSEEDED, dataflow.RULE_UNTAINTED,
        locks.RULE_ORDER,
        durability.RULE_RAW_WRITE, durability.RULE_RENAME_NO_FSYNC,
    }
    graph: Optional[CallGraph] = None
    if active_set.intersection(graph_rules) or graph_out is not None:
        graph = build_call_graph(contexts)
    if graph is not None:
        if active_set.intersection(
            {dataflow.RULE_UNSEEDED, dataflow.RULE_UNTAINTED}
        ):
            collector.extend(
                f for f in dataflow.check_seed_taint(graph)
                if f.rule in active_set
            )
        if locks.RULE_ORDER in active_set:
            collector.extend(locks.check_lock_order(graph))
        if active_set.intersection(
            {durability.RULE_RAW_WRITE, durability.RULE_RENAME_NO_FSYNC}
        ):
            collector.extend(
                f for f in durability.check_durability(graph)
                if f.rule in active_set
            )
        if graph_out is not None:
            atomic_write_text(
                Path(graph_out),
                json.dumps(graph.to_dict(), indent=1, sort_keys=True) + "\n",
            )

    if protocol.RULE_ID in active_set:
        collector.extend(protocol.check_lease_protocol())

    if include_catalogs:
        from .verifiers import verify_catalogs

        collector.extend(verify_catalogs())
    findings = collector.sorted()
    base = baseline if baseline is not None else Baseline.empty()
    new, baselined, stale = base.split(findings)
    return AnalysisReport(
        new=new,
        baselined=baselined,
        stale_baseline=stale,
        files_analyzed=len(files),
    )


def _concurrency_findings(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            out.extend(concurrency.check_class(ctx, node))
    return out


__all__ = [
    "AnalysisReport",
    "EXTRA_RULES",
    "analyze_paths",
    "collect_python_files",
    "expand_rule_ids",
    "known_rule_ids",
]
