"""The analysis driver behind ``repro analyze``.

One run = lint rules over every Python file under the given paths,
the concurrency heuristic over the threaded modules, and (optionally)
the in-process catalog verifiers — filtered through the committed
baseline into *new* findings (fail CI) and *baselined* findings
(explicitly accepted, with justification).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..errors import ReproError
from . import concurrency
from .baseline import Baseline, BaselineEntry
from .findings import Finding, FindingCollector
from .lint import LintRule, lint_file, rules_by_id

#: Directory names never worth analyzing.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def collect_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.append(candidate)
        else:
            raise ReproError(f"no such file or directory: {path}")
    return out


def _display(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        resolved = path.resolve()
        resolved_root = root.resolve()
        if resolved.is_relative_to(resolved_root):
            return resolved.relative_to(resolved_root).as_posix()
    return path.as_posix()


@dataclass
class AnalysisReport:
    """Outcome of one ``repro analyze`` run."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def clean(self) -> bool:
        return not self.new

    def to_dict(self) -> dict:
        return {
            "files_analyzed": self.files_analyzed,
            "new_findings": [f.to_dict() for f in self.new],
            "baselined_findings": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": [
                e.to_dict() for e in self.stale_baseline
            ],
            "clean": self.clean,
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.new:
            lines.append(finding.render())
        if self.new:
            lines.append("")
        lines.append(
            f"{len(self.new)} new finding(s), {len(self.baselined)} "
            f"baselined, {self.files_analyzed} file(s) analyzed"
        )
        if self.baselined:
            for finding in self.baselined:
                lines.append(f"  baselined: {finding.render()}")
        if self.stale_baseline:
            lines.append(
                f"warning: {len(self.stale_baseline)} stale baseline "
                f"entr(ies) no longer match anything — prune them:"
            )
            for entry in self.stale_baseline:
                lines.append(
                    f"  stale: {entry.rule} {entry.path} "
                    f"[{entry.symbol}] {entry.fingerprint}"
                )
        return "\n".join(lines)


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    *,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    include_catalogs: bool = True,
    root: Optional[Union[str, Path]] = None,
) -> AnalysisReport:
    """Run the full static analysis over ``paths``.

    ``rules`` narrows the lint pass to specific rule ids (the
    concurrency heuristic runs unless narrowed out with ids that
    exclude ``REPRO201``; catalog verifiers run unless
    ``include_catalogs`` is False).  ``root`` makes reported paths
    repo-relative, which is what baseline fingerprints should use.
    """
    if rules is None:
        active_rules: List[LintRule] = rules_by_id(None)
        run_concurrency = True
    else:
        wanted = list(rules)
        known = {r.id for r in rules_by_id(None)} | {concurrency.RULE_ID}
        unknown = [r for r in wanted if r not in known]
        if unknown:
            raise ReproError(
                f"unknown analysis rules {unknown}; available: "
                f"{sorted(known)}"
            )
        active_rules = rules_by_id(
            [r for r in wanted if r != concurrency.RULE_ID]
        )
        run_concurrency = concurrency.RULE_ID in wanted
    root_path = Path(root) if root is not None else None
    collector = FindingCollector()
    files = collect_python_files(paths)
    for file_path in files:
        display = _display(file_path, root_path)
        collector.extend(
            lint_file(file_path, active_rules, display_path=display)
        )
        if run_concurrency and concurrency.is_threaded_module(file_path):
            collector.extend(
                concurrency.check_file(file_path, display_path=display)
            )
    if include_catalogs:
        from .verifiers import verify_catalogs

        collector.extend(verify_catalogs())
    findings = collector.sorted()
    base = baseline if baseline is not None else Baseline.empty()
    new, baselined, stale = base.split(findings)
    return AnalysisReport(
        new=new,
        baselined=baselined,
        stale_baseline=stale,
        files_analyzed=len(files),
    )


__all__ = ["AnalysisReport", "analyze_paths", "collect_python_files"]
