"""Concurrency heuristic: shared-state mutation outside the lock.

The modules known to be exercised from multiple threads (the plan cache
and the serving layer) follow one convention: a class that owns a
``self._lock`` (or ``self._<anything>_lock``) protects *all* of its
mutable attributes with it.  This pass walks every class that creates a
lock attribute and reports attribute mutations — assignments, augmented
assignments, subscript stores, and calls of known container mutators on
``self.<attr>`` — that are not lexically inside a ``with self._lock:``
block (rule **REPRO201**).

Helpers that only ever run with the lock held are *proven* safe by the
per-class escape analysis in :mod:`repro.analysis.locks` and exempted —
they no longer need baseline entries.  What remains after the proof is
a real finding (or a deliberate baseline with a one-line
justification).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set

from .findings import Finding
from .lint import MUTATING_METHODS, LintContext, dotted_name

RULE_ID = "REPRO201"

#: Path parts of modules known to be shared across threads.  ``sim``
#: covers :mod:`repro.sim.engine`, the struct-of-arrays event core both
#: threaded simulators instantiate per run; ``tuning`` and ``store``
#: hold the PR 9 fleet (scheduler thread + worker pool over a shared
#: queue and content-addressed store).
THREADED_PARTS: Set[str] = {"serving", "cluster", "sim", "tuning", "store"}
#: File names of modules known to be shared across threads.
THREADED_FILES: Set[str] = {"plan_cache.py"}


def is_threaded_module(path: Path) -> bool:
    return (
        bool(THREADED_PARTS.intersection(path.parts))
        or path.name in THREADED_FILES
    )


def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
    """Names of lock attributes this class assigns (``_lock``-suffixed
    attributes bound from ``threading.Lock()`` / ``RLock()`` or just
    named like locks)."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and (target.attr == "_lock" or target.attr.endswith("_lock"))
            ):
                locks.add(target.attr)
    return locks


def _is_lock_with(stmt: ast.With, locks: Set[str]) -> bool:
    for item in stmt.items:
        expr = item.context_expr
        dotted = dotted_name(expr)
        if dotted is not None and any(
            dotted == f"self.{lock}" for lock in locks
        ):
            return True
    return False


def _self_mutation(stmt: ast.stmt) -> Optional[str]:
    """The mutated ``self.<attr>`` name, if this statement mutates one."""

    def attr_of(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    if isinstance(stmt, ast.Assign):
        targets: Sequence[ast.expr] = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            return attr_of(func.value)
        return None
    else:
        return None
    for target in targets:
        name = attr_of(target)
        if name is not None:
            return name
        if isinstance(target, ast.Subscript):
            name = attr_of(target.value)
            if name is not None:
                return name
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                name = attr_of(element)
                if name is not None:
                    return name
    return None


def _walk_statements(
    body: Sequence[ast.stmt], locks: Set[str], locked: bool
) -> Iterator[tuple]:
    """Yield ``(stmt, locked)`` for every statement, tracking lock scope."""
    for stmt in body:
        if isinstance(stmt, ast.With):
            inner = locked or _is_lock_with(stmt, locks)
            yield stmt, locked
            yield from _walk_statements(stmt.body, locks, inner)
            continue
        yield stmt, locked
        for field_body in ("body", "orelse", "finalbody"):
            children = getattr(stmt, field_body, None)
            if children:
                yield from _walk_statements(children, locks, locked)
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                yield from _walk_statements(handler.body, locks, locked)


def check_class(
    ctx: LintContext, cls: ast.ClassDef
) -> Iterator[Finding]:
    locks = _lock_attributes(cls)
    if not locks:
        return
    # Imported lazily: locks.py builds on this module's lexical helpers.
    from .locks import proven_lock_held

    proven = proven_lock_held(cls, locks)
    lock_list = ", ".join(sorted(locks))
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue  # construction happens-before sharing
        if method.name in proven:
            continue  # escape analysis: only runs with the lock held
        for stmt, locked in _walk_statements(method.body, locks, False):
            if locked:
                continue
            attr = _self_mutation(stmt)
            if attr is None or attr in locks:
                continue
            line = getattr(stmt, "lineno", method.lineno)
            if ctx.suppressed(line, RULE_ID):
                continue
            yield Finding(
                rule=RULE_ID,
                path=ctx.display_path,
                line=line,
                symbol=f"{cls.name}.{method.name}",
                message=(
                    f"shared attribute self.{attr} mutated outside "
                    f"`with self.{lock_list}` in threaded module"
                ),
            )


def check_file(
    path: Path, *, display_path: Optional[str] = None
) -> List[Finding]:
    """Run the concurrency heuristic over one file (threaded modules
    get it by default from the runner; any file can be checked
    explicitly)."""
    ctx = LintContext.for_file(path, display_path)
    out: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            out.extend(check_class(ctx, node))
    return out


__all__ = ["RULE_ID", "check_file", "is_threaded_module"]
