"""REPRO21x — interprocedural seed-taint analysis.

Determinism in this codebase reduces to one dataflow property: **every
random draw descends from an explicit seed**.  REPRO102 enforces the
lexical half (no hidden-global-state draws); this pass enforces the
interprocedural half over the call graph:

* **REPRO210** — an RNG constructed with *no* seed at all
  (``default_rng()``, ``random.Random()``) in deterministic code.
* **REPRO211** — an RNG whose seed expression cannot be traced, through
  the project call graph, to a **taint source**:

  - a parameter whose name spells seed-ness (``seed``, ``rng``,
    ``*_seed``, ``seed_*``, ``entropy``),
  - an integer literal (a pinned constant is deterministic by
    definition),
  - a ``sha256(...)``-derived value (the repo's canonical way to fold
    strings into seeds),
  - a CLI ``args.seed`` / ``self.seed`` attribute.

  A seed that is a *plain* parameter is chased to every call site of
  the enclosing function; it is tainted only if **all** known call
  sites pass a tainted value (a function nobody calls cannot be
  proven and is flagged — rename the parameter to ``seed`` or add a
  pragma).

Scope: the parts of the tree whose behavior must replay bit-identically
(``sim``, ``serving``, ``cluster``, ``faults``, ``tuning``, ``eval``,
``workloads``).  Taint *tracing* follows callers anywhere in the
project, including out-of-scope modules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, ModuleInfo, _spelled_name
from .findings import Finding
from .lint import enclosing_symbols

RULE_UNSEEDED = "REPRO210"
RULE_UNTAINTED = "REPRO211"

#: Path parts whose RNG constructions must be seed-tainted.
TAINT_PARTS: Set[str] = {
    "sim", "serving", "cluster", "faults", "tuning", "eval", "workloads",
}

#: Canonical names that construct an RNG (after alias resolution).
RNG_CONSTRUCTORS: Set[str] = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
}

#: Parameter / attribute names that are axiomatically seed-derived.
_SEED_NAME_RE = re.compile(
    r"(^|_)(seed|seeds|rng|generator|entropy)(_|$)", re.IGNORECASE
)

#: Call targets that *produce* seeds by construction.
_SEED_CALL_RE = re.compile(r"(sha256|sha1|blake2|seed)", re.IGNORECASE)

#: How many caller hops the taint chase will follow.
_MAX_DEPTH = 8


def is_seedish_name(name: str) -> bool:
    return bool(_SEED_NAME_RE.search(name))


def _in_scope(module: ModuleInfo) -> bool:
    return bool(TAINT_PARTS.intersection(module.ctx.parts))


@dataclass(frozen=True)
class _RngSite:
    """One RNG construction: where, what, and its seed expression."""

    module: ModuleInfo
    owner: str                    # enclosing function qualname (or <module>)
    canonical: str                # e.g. "numpy.random.default_rng"
    node: ast.Call
    seed: Optional[ast.expr]      # None = constructed with no seed at all


def _canonical_call_name(
    node: ast.Call, module: ModuleInfo
) -> Optional[str]:
    spelled = _spelled_name(node.func)
    if spelled is None:
        return None
    head, _, rest = spelled.partition(".")
    target = module.aliases.get(head, head)
    return f"{target}.{rest}" if rest else target


def _seed_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("seed", "x"):  # random.Random(x=...) is exotic but legal
            return keyword.value
    return None


class TaintAnalysis:
    """Evaluates seed-taint over the project call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: (qualname, param) -> proven taint; None marks in-progress
        #: (cycles resolve optimistically — a self-feeding seed loop is
        #: somebody's deliberate construction, not an accident).
        self._param_memo: Dict[Tuple[str, str], Optional[bool]] = {}
        #: qualname -> "every return statement is tainted"
        self._return_memo: Dict[str, Optional[bool]] = {}
        self._site_index: Optional[Dict[Tuple[int, str], str]] = None

    # -- public ---------------------------------------------------------------

    def check(self) -> List[Finding]:
        findings: List[Finding] = []
        for site in self._rng_sites():
            line = site.node.lineno
            symbol = enclosing_symbols(site.module.tree).get(line, "")
            if site.seed is None:
                rule = RULE_UNSEEDED
                message = (
                    f"{site.canonical}() constructed with no seed in "
                    f"deterministic code; derive the generator from an "
                    f"explicit seed"
                )
            elif self._expr_tainted(site.seed, site.owner, _MAX_DEPTH):
                continue
            else:
                rule = RULE_UNTAINTED
                message = (
                    f"seed of {site.canonical}(...) is not derived from "
                    f"any taint source (seed/rng parameter, sha256 "
                    f"digest, or CLI --seed) on any call path"
                )
            if self.graph.suppressed(site.module, line, rule):
                continue
            findings.append(Finding(
                rule=rule,
                path=site.module.display_path,
                line=line,
                symbol=symbol,
                message=message,
            ))
        return findings

    # -- site collection ------------------------------------------------------

    def _rng_sites(self) -> List[_RngSite]:
        sites: List[_RngSite] = []
        for module in self.graph.modules.values():
            if not _in_scope(module):
                continue
            owners = _owner_map(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = _canonical_call_name(node, module)
                if canonical not in RNG_CONSTRUCTORS:
                    continue
                sites.append(_RngSite(
                    module=module,
                    owner=owners.get(node.lineno, _module_owner(module)),
                    canonical=canonical,
                    node=node,
                    seed=_seed_argument(node),
                ))
        return sites

    # -- taint lattice --------------------------------------------------------

    def _expr_tainted(self, expr: ast.expr, owner: str, depth: int) -> bool:
        """Is ``expr``, evaluated in ``owner``'s scope, seed-derived?"""
        if depth <= 0:
            return False
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (int, str, bytes)) and not isinstance(
                expr.value, bool
            )
        if isinstance(expr, ast.Name):
            return self._name_tainted(expr.id, owner, depth)
        if isinstance(expr, ast.Attribute):
            # self.seed, args.seed, cfg.base_seed — trust the name.
            return is_seedish_name(expr.attr)
        if isinstance(expr, ast.BinOp):
            return (
                self._expr_tainted(expr.left, owner, depth)
                and self._expr_tainted(expr.right, owner, depth)
            )
        if isinstance(expr, ast.UnaryOp):
            return self._expr_tainted(expr.operand, owner, depth)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return bool(expr.elts) and all(
                self._expr_tainted(el, owner, depth) for el in expr.elts
            )
        if isinstance(expr, ast.Subscript):
            return self._expr_tainted(expr.value, owner, depth)
        if isinstance(expr, ast.IfExp):
            return (
                self._expr_tainted(expr.body, owner, depth)
                and self._expr_tainted(expr.orelse, owner, depth)
            )
        if isinstance(expr, ast.Call):
            return self._call_tainted(expr, owner, depth)
        return False

    def _call_tainted(self, call: ast.Call, owner: str, depth: int) -> bool:
        module = self.graph.module_of(owner)
        spelled = _spelled_name(call.func) or ""
        canonical = spelled
        if module is not None:
            resolved = _canonical_call_name(call, module)
            if resolved is not None:
                canonical = resolved
        # sha256(...) and friends are taint sources by construction;
        # int(...) / int.from_bytes(...) / abs(...) are transparent.
        if _SEED_CALL_RE.search(canonical):
            return True
        transparent = {"int", "int.from_bytes", "abs", "hash", "min", "max"}
        if canonical in transparent:
            return bool(call.args) and any(
                self._expr_tainted(a, owner, depth) for a in call.args
            )
        # A project function whose every return is tainted.
        callee = self._resolve_project_callee(call, owner)
        if callee is not None:
            return self._returns_tainted(callee, depth - 1)
        return False

    def _resolve_project_callee(
        self, call: ast.Call, owner: str
    ) -> Optional[str]:
        if self._site_index is None:
            self._site_index = {
                (id(site.node), site.caller): site.callee
                for site in self.graph.calls
            }
        return self._site_index.get((id(call), owner))

    def _name_tainted(self, name: str, owner: str, depth: int) -> bool:
        if is_seedish_name(name):
            return True
        fn = self.graph.function(owner)
        if fn is not None and name in fn.params:
            return self._param_tainted(fn, name, depth)
        # A local: chase its (last textual) binding in the owner scope.
        binding = self._local_binding(name, owner)
        if binding is not None:
            return self._expr_tainted(binding, owner, depth - 1)
        return False

    def _local_binding(self, name: str, owner: str) -> Optional[ast.expr]:
        body = self._owner_body(owner)
        if body is None:
            return None
        bound: Optional[ast.expr] = None
        for node in body:
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            bound = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    if (
                        isinstance(stmt.target, ast.Name)
                        and stmt.target.id == name
                        and stmt.value is not None
                    ):
                        bound = stmt.value
        return bound

    def _owner_body(self, owner: str) -> Optional[Sequence[ast.stmt]]:
        fn = self.graph.function(owner)
        if fn is not None:
            return fn.node.body
        module = self.graph.module_of(owner)
        if module is not None:
            return module.tree.body
        return None

    def _param_tainted(
        self, fn: FunctionInfo, param: str, depth: int
    ) -> bool:
        """All known call sites pass a tainted value for ``param``."""
        key = (fn.qualname, param)
        if key in self._param_memo:
            memoized = self._param_memo[key]
            # In-progress (None) resolves optimistically: a self-feeding
            # seed loop is a deliberate construction, not an accident.
            return True if memoized is None else memoized
        self._param_memo[key] = None
        sites = self.graph.call_sites_of(fn.qualname)
        if not sites:
            self._param_memo[key] = False
            return False
        verdict = True
        for site in sites:
            arg = _argument_for(site.node, fn, param)
            if arg is None or not self._expr_tainted(
                arg, site.caller, depth - 1
            ):
                verdict = False
                break
        self._param_memo[key] = verdict
        return verdict

    def _returns_tainted(self, qualname: str, depth: int) -> bool:
        if qualname in self._return_memo:
            memoized = self._return_memo[qualname]
            return True if memoized is None else memoized
        fn = self.graph.function(qualname)
        if fn is None:
            self._return_memo[qualname] = False
            return False
        self._return_memo[qualname] = None
        returns = [
            node for node in ast.walk(fn.node)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        verdict = bool(returns) and all(
            self._expr_tainted(node.value, qualname, depth)
            for node in returns
            if node.value is not None
        )
        self._return_memo[qualname] = verdict
        return verdict


def _owner_map(module: ModuleInfo) -> Dict[int, str]:
    """Line -> qualname of the innermost enclosing def."""
    out: Dict[int, str] = {}
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, class_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                prefix = (
                    f"{module.name}.{class_name}."
                    if class_name else f"{module.name}."
                )
                qualname = f"{prefix}{child.name}"
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end or child.lineno, qualname))
                visit(child, class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)
            else:
                visit(child, class_name)

    visit(module.tree, "")
    for start, end, qualname in sorted(spans, key=lambda s: (s[0], -(s[1]))):
        for line in range(start, end + 1):
            out[line] = qualname
    return out


def _module_owner(module: ModuleInfo) -> str:
    from .callgraph import MODULE_SCOPE

    return f"{module.name}.{MODULE_SCOPE}"


def _argument_for(
    call: ast.Call, fn: FunctionInfo, param: str
) -> Optional[ast.expr]:
    """The expression a call site passes for ``param`` (None if absent)."""
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    try:
        index = fn.params.index(param)
    except ValueError:
        return None
    if index < len(call.args):
        arg = call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    # Not passed: the default applies.  Look it up; a literal default
    # is deterministic.
    defaults = fn.node.args.defaults
    positional = [a.arg for a in (*fn.node.args.posonlyargs, *fn.node.args.args)]
    if positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    offset = len(positional) - len(defaults)
    if param in positional:
        d_index = positional.index(param) - offset
        if 0 <= d_index < len(defaults):
            return defaults[d_index]
    for kw_arg, kw_default in zip(
        fn.node.args.kwonlyargs, fn.node.args.kw_defaults
    ):
        if kw_arg.arg == param and kw_default is not None:
            return kw_default
    return None


def check_seed_taint(graph: CallGraph) -> List[Finding]:
    """Run the REPRO21x pass over a built call graph."""
    return TaintAnalysis(graph).check()


__all__ = [
    "RNG_CONSTRUCTORS",
    "RULE_UNSEEDED",
    "RULE_UNTAINTED",
    "TAINT_PARTS",
    "TaintAnalysis",
    "check_seed_taint",
    "is_seedish_name",
]
