"""REPRO240 — exhaustive model check of the tuning lease protocol.

The fleet's fault story rests on :class:`repro.tuning.queue.JobQueue`
behaving as a lease protocol: claim -> renew-by-completion | failure |
silent death, with bounded retries and deterministic backoff.  Unit
tests exercise chosen paths; this pass explores **every** two-worker
interleaving over a small scope (two jobs, three attempts) against the
*real* queue class and proves, in each reachable state:

* **no double grant** — a claim never returns a job that was already
  leased, and a job is never leased to two workers at once;
* **no lost job** — every quiescent state (no action enabled) has all
  jobs ``done`` or ``poisoned``; nothing is stranded;
* **retry-count monotonicity** — ``attempts`` never decreases, and a
  failure/expiry bumps it by exactly one;
* **terminal immutability** — ``done``/``poisoned`` jobs never change;
* **completion postcondition** — ``complete`` yields ``done`` with the
  worker's sha recorded and attempts unchanged.

Finite state space: a zero-delay, zero-jitter
:class:`~repro.faults.resilience.RetryPolicy` collapses the backoff
clock, and states are canonicalized to ``(state, attempts, worker)``
per job, so lease deadlines and ``not_before`` gates don't blow up the
frontier.  Each transition rebuilds a fresh queue from the canonical
state and drives one public method — the model checks the shipped
transition code, not a re-implementation of it.

For tests, ``REPRO_ANALYSIS_QUEUE_CLASS=module:Class`` swaps in a
(deliberately buggy) queue implementation; the checker then reports a
REPRO240 finding with a counterexample trace.
"""

from __future__ import annotations

import importlib
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Type

from .findings import Finding

RULE_ID = "REPRO240"

#: Environment seam: "module.path:ClassName" of an alternative queue.
QUEUE_CLASS_ENV = "REPRO_ANALYSIS_QUEUE_CLASS"

#: Small-scope parameters (two of everything, three strikes).
WORKERS = ("w1", "w2")
JOB_IDS_PRIORITY = ((0, "a"), (1, "b"))
MAX_ATTEMPTS = 3
LEASE_TIMEOUT_S = 10.0

#: Canonical per-job state: (state, attempts, worker-or-"").
JobState = Tuple[str, int, str]
#: Canonical queue state: one JobState per job, in job-id order.
State = Tuple[JobState, ...]


@dataclass
class Violation:
    """One invariant breach with its counterexample."""

    invariant: str
    detail: str
    trace: Tuple[str, ...]

    def render(self, limit: int = 12) -> str:
        steps = self.trace[-limit:]
        prefix = "... -> " if len(self.trace) > limit else ""
        return (
            f"{self.invariant}: {self.detail} "
            f"[trace: {prefix}{' -> '.join(steps) if steps else '<initial>'}]"
        )


@dataclass
class ModelCheckResult:
    """Outcome of the exhaustive exploration."""

    states: int = 0
    transitions: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _queue_class() -> Tuple[Type, str]:
    """The queue class under check and its display path."""
    spec = os.environ.get(QUEUE_CLASS_ENV, "")
    if spec:
        module_name, _, cls_name = spec.partition(":")
        module = importlib.import_module(module_name)
        cls = getattr(module, cls_name)
        return cls, getattr(module, "__file__", module_name) or module_name
    from ..tuning.queue import JobQueue

    return JobQueue, "src/repro/tuning/queue.py"


def _model_keys() -> Dict[str, Tuple[int, Any]]:
    """job id -> (priority, PlanKey) for the small-scope jobs, in
    sorted-id order (the canonical state layout)."""
    from ..core.plan_cache import PlanKey

    keys: Dict[str, Tuple[int, Any]] = {}
    for priority, slug in JOB_IDS_PRIORITY:
        key = PlanKey(
            network=f"net-{slug}",
            device="edge",
            batch_size=1,
            precision="fp32",
            use_memory_management=True,
            use_hybrid_execution=True,
            use_inter_kernel=False,
            use_intra_kernel=False,
            objective="latency",
        )
        keys[key.slug()] = (priority, key)
    return dict(sorted(keys.items()))


def _build_queue(cls: Type, state: State) -> Any:
    """A fresh, un-persisted queue materializing a canonical state.

    Zero-delay retry policy: ``not_before`` gates collapse to 0, so
    pending jobs are always claimable and the state space is finite.
    """
    from ..faults.resilience import RetryPolicy
    from ..tuning.queue import LEASED, TuneJob

    queue = cls(
        None,
        retry_policy=RetryPolicy(
            max_attempts=MAX_ATTEMPTS,
            base_delay_s=0.0,
            multiplier=1.0,
            max_delay_s=0.0,
            jitter=0.0,
        ),
        lease_timeout_s=LEASE_TIMEOUT_S,
    )
    for (job_id, (priority, key)), (job_state, attempts, worker) in zip(
        _model_keys().items(), state
    ):
        job = TuneJob(
            key=key,
            priority=priority,
            attempts=attempts,
            state=job_state,
            not_before_s=0.0,
            lease_deadline_s=LEASE_TIMEOUT_S if job_state == LEASED else 0.0,
            worker=worker,
            failures=tuple("x" for _ in range(attempts)),
        )
        queue._jobs[job_id] = job
    return queue


def _snapshot(queue: Any, order: List[str]) -> State:
    from ..tuning.queue import LEASED

    return tuple(
        (job.state, job.attempts, job.worker if job.state == LEASED else "")
        for job in (queue._jobs[job_id] for job_id in order)
    )


class LeaseModelChecker:
    """Breadth-first exploration of the two-worker lease protocol."""

    def __init__(self) -> None:
        self.cls, self.display_path = _queue_class()
        self.order = list(_model_keys())
        self.result = ModelCheckResult()

    # -- invariant checks -----------------------------------------------------

    def _check_transition(
        self,
        action: str,
        before: State,
        after: State,
        trace: Tuple[str, ...],
    ) -> None:
        from ..tuning.queue import DONE, LEASED, POISONED

        def blame(invariant: str, detail: str) -> None:
            self.result.violations.append(
                Violation(invariant, detail, trace + (action,))
            )

        leased_workers = [w for s, _, w in after if s == LEASED]
        if len(leased_workers) != len(set(leased_workers)):
            blame("no-double-grant", "one worker holds two leases at once")
        for job_id, (b, a) in zip(self.order, zip(before, after)):
            b_state, b_attempts, _bw = b
            a_state, a_attempts, _aw = a
            if a_attempts < b_attempts:
                blame(
                    "retry-monotonicity",
                    f"job {job_id} attempts fell {b_attempts} -> {a_attempts}",
                )
            if b_state in (DONE, POISONED) and a != b:
                blame(
                    "terminal-immutability",
                    f"terminal job {job_id} changed: {b} -> {a}",
                )
            if (
                b_state == LEASED
                and a_state == LEASED
                and action.startswith("claim")
                and a != b
            ):
                blame(
                    "no-double-grant",
                    f"claim re-leased already-leased job {job_id}",
                )
            if a_attempts > b_attempts + 1:
                blame(
                    "retry-monotonicity",
                    f"job {job_id} attempts jumped {b_attempts} -> {a_attempts}",
                )
            # A reported failure or a silent death consumes exactly one
            # attempt — otherwise a poison-pill job retries forever.
            failed_here = (
                action == f"fail({_bw},{job_id})"
                or (action == "expire-leases" and b_state == LEASED)
            )
            if failed_here and a_attempts != b_attempts + 1:
                blame(
                    "retry-monotonicity",
                    f"{action} left job {job_id} at attempts="
                    f"{a_attempts} (expected {b_attempts + 1})",
                )

    def _check_quiescent(self, state: State, trace: Tuple[str, ...]) -> None:
        from ..tuning.queue import DONE, POISONED

        stranded = [
            job_id
            for job_id, (s, _, _) in zip(self.order, state)
            if s not in (DONE, POISONED)
        ]
        if stranded:
            self.result.violations.append(Violation(
                "no-lost-job",
                f"quiescent state strands job(s) {', '.join(stranded)}",
                trace,
            ))

    # -- transitions ----------------------------------------------------------

    def _successors(
        self, state: State
    ) -> List[Tuple[str, Optional[State], Optional[Violation]]]:
        """Enabled (action, next-state | None-on-protocol-error) pairs."""
        from ..errors import ReproError
        from ..tuning.queue import DONE, LEASED

        held: Dict[str, str] = {}
        for job_id, (s, _, worker) in zip(self.order, state):
            if s == LEASED:
                held[worker] = job_id
        out: List[Tuple[str, Optional[State], Optional[Violation]]] = []

        def run(action: str, fn: Callable[[Any], object]) -> None:
            queue = _build_queue(self.cls, state)
            try:
                fn(queue)
            except ReproError as exc:
                out.append((action, None, Violation(
                    "protocol-error", f"{action} raised: {exc}", ()
                )))
                return
            out.append((action, _snapshot(queue, self.order), None))

        for worker in WORKERS:
            if worker not in held:
                run(
                    f"claim({worker})",
                    lambda q, w=worker: q.claim(w, 0.0),
                )
            else:
                job_id = held[worker]
                run(
                    f"complete({worker},{job_id})",
                    lambda q, j=job_id: q.complete(j, "sha-" + j, 0.0),
                )
                run(
                    f"fail({worker},{job_id})",
                    lambda q, j=job_id: q.fail(j, "boom", 0.0),
                )
        if held:
            run("expire-leases", lambda q: q.expire_leases(LEASE_TIMEOUT_S))

        # A claim that found nothing claimable leaves the state unchanged;
        # completion must move the job to DONE — enforce the postcondition.
        checked: List[Tuple[str, Optional[State], Optional[Violation]]] = []
        for action, after, violation in out:
            if violation is not None:
                checked.append((action, after, violation))
                continue
            assert after is not None
            if action.startswith("complete("):
                job_id = action[:-1].split(",", 1)[1]
                index = self.order.index(job_id)
                a_state, a_attempts, _ = after[index]
                b_state, b_attempts, _ = state[index]
                if a_state != DONE or a_attempts != b_attempts:
                    checked.append((action, after, Violation(
                        "complete-postcondition",
                        f"complete left job {job_id} as "
                        f"({a_state}, attempts={a_attempts})",
                        (),
                    )))
                    continue
            checked.append((action, after, None))
        return checked

    # -- exploration ----------------------------------------------------------

    def explore(self) -> ModelCheckResult:
        from ..tuning.queue import PENDING

        initial: State = tuple((PENDING, 0, "") for _ in self.order)
        seen: Dict[State, Tuple[str, ...]] = {initial: ()}
        frontier = deque([initial])
        self.result.states = 1
        while frontier:
            state = frontier.popleft()
            trace = seen[state]
            successors = self._successors(state)
            progressed = False
            for action, after, violation in successors:
                self.result.transitions += 1
                if violation is not None:
                    self.result.violations.append(Violation(
                        violation.invariant,
                        violation.detail,
                        trace + (action,),
                    ))
                    continue
                assert after is not None
                if after != state:
                    progressed = True
                self._check_transition(action, state, after, trace)
                if after not in seen:
                    seen[after] = trace + (action,)
                    self.result.states += 1
                    frontier.append(after)
                if len(self.result.violations) >= 16:
                    return self.result  # enough counterexamples
            if not successors or not progressed:
                self._check_quiescent(state, trace)
        return self.result


def check_lease_protocol() -> List[Finding]:
    """Run the REPRO240 model check; findings carry counterexamples."""
    checker = LeaseModelChecker()
    result = checker.explore()
    findings: List[Finding] = []
    seen_keys: Set[Tuple[str, str]] = set()
    for violation in result.violations:
        key = (violation.invariant, violation.detail)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        findings.append(Finding(
            rule=RULE_ID,
            path=checker.display_path,
            line=1,
            symbol=f"lease-protocol/{violation.invariant}",
            message=violation.render(),
        ))
    return findings


__all__ = [
    "LeaseModelChecker",
    "ModelCheckResult",
    "QUEUE_CLASS_ENV",
    "RULE_ID",
    "Violation",
    "check_lease_protocol",
]
