"""Comparison methods evaluated against EdgeNN in Section V."""

from .cloud import CloudModel, CloudResult, run_cloud
from .cpu_only import cpu_only_plan, run_cpu_only
from .gpu_only import gpu_only_plan, run_gpu_only
from .interkernel import run_interkernel_only

__all__ = [
    "CloudModel",
    "CloudResult",
    "cpu_only_plan",
    "gpu_only_plan",
    "run_cloud",
    "run_cpu_only",
    "run_gpu_only",
    "run_interkernel_only",
]
