"""Cloud-offload inference — the §V-D comparison.

The paper's model: upload a compressed input image over the measured edge
uplink, wait for the cloud (queueing/scheduling latency), and compute on a
discrete-GPU server:

    t_total = v_in / b  +  t_cloud  +  t_compute(discrete GPU)

with v_in ≈ 400 KB, b ≈ 1 MB/s and t_cloud ≈ 100 ms measured on Alibaba
Cloud.  ``computing_only`` exposes just the discrete-GPU compute time —
the "on-cloud (computing only)" bars of Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import SpecError
from ..hardware import calibration as cal
from ..hardware.device import Device
from ..hardware.specs import RTX_2080TI_HOST, DeviceSpec
from ..nn.graph import NetworkGraph
from .gpu_only import run_gpu_only


@dataclass(frozen=True)
class CloudModel:
    """Network + cloud-side latency parameters (paper defaults)."""

    input_bytes: float = cal.CLOUD_INPUT_BYTES
    bandwidth: float = cal.CLOUD_BANDWIDTH
    cloud_latency_s: float = cal.CLOUD_LATENCY_S

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.bandwidth <= 0 or self.cloud_latency_s < 0:
            raise SpecError("invalid cloud model parameters")

    @property
    def transmission_s(self) -> float:
        """Paper's t_net = v_in / b."""
        return self.input_bytes / self.bandwidth


@dataclass(frozen=True)
class CloudResult:
    """Breakdown of one cloud-offloaded inference."""

    network: str
    computing_s: float
    transmission_s: float
    cloud_latency_s: float

    @property
    def total_s(self) -> float:
        return self.computing_s + self.transmission_s + self.cloud_latency_s


def run_cloud(
    network: Union[str, NetworkGraph],
    server: Union[Device, DeviceSpec] = RTX_2080TI_HOST,
    model: Optional[CloudModel] = None,
) -> CloudResult:
    """Simulate offloading one inference to a discrete-GPU cloud server."""
    if model is None:
        model = CloudModel()
    report = run_gpu_only(network, server)
    return CloudResult(
        network=report.network,
        computing_s=report.total_s,
        transmission_s=model.transmission_s,
        cloud_latency_s=model.cloud_latency_s,
    )
