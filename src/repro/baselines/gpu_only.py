"""GPU-only inference — "the direct execution of the original programs".

The paper's baseline (Fig 8, Fig 9): every kernel runs on the GPU, every
buffer is a regular CUDA array, weights are explicitly ``cudaMemcpy``'d to
the device, and execution is single-stream (copy → kernel → copy ...).
Works on both the integrated device and the discrete-GPU host, which is
how Fig 9 contrasts the two copy-time shares.
"""

from __future__ import annotations

from typing import Union

from ..compile import compile_fixed
from ..core.memory_manager import MemoryPolicy
from ..core.plan import ExecutionPlan
from ..core.report import InferenceReport
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph


def gpu_only_plan(graph: NetworkGraph, device: DeviceSpec,
                  policy: MemoryPolicy = MemoryPolicy.ALL_REGULAR) -> ExecutionPlan:
    """All layers on the GPU under the requested memory policy."""
    return compile_fixed(graph, device, placement="gpu", policy=policy).plan


def run_gpu_only(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec],
    *,
    policy: MemoryPolicy = MemoryPolicy.ALL_REGULAR,
    serialize: bool = True,
) -> InferenceReport:
    """Simulate the original program: GPU kernels, regular memory,
    single-stream execution.

    ``policy=ALL_MANAGED`` gives the "memory management only" ablation arm
    (zero-copy, still GPU-only); managed buffers need no staging copies, so
    serialization is irrelevant for them.
    """
    compiled = compile_fixed(
        network, device,
        placement="gpu",
        policy=policy,
        serialize=serialize,
        # The original programs stage every layer output through the host
        # (self-contained memcpy-in / kernel / memcpy-out layer functions);
        # managed allocations make staging moot.
        host_staging=policy is MemoryPolicy.ALL_REGULAR,
    )
    return compiled.execute()
