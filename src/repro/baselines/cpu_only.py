"""CPU-only inference — the edge-CPU baselines of Fig 6 / Fig 7.

Runs every layer on the device's CPU with plain host memory (no copies,
no GPU).  Used for the Jetson CPU, the Raspberry Pi 4, and the Dimensity
8100 phone processor.
"""

from __future__ import annotations

from typing import Union

from ..compile import compile_fixed
from ..core.plan import ExecutionPlan
from ..core.report import InferenceReport
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph


def cpu_only_plan(graph: NetworkGraph, device: DeviceSpec) -> ExecutionPlan:
    """All layers on the CPU; buffers are plain host memory (REGULAR with
    no device side ever touched, hence no transfers)."""
    return compile_fixed(graph, device, placement="cpu").plan


def run_cpu_only(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec],
) -> InferenceReport:
    """Simulate CPU-only inference on any device's CPU."""
    return compile_fixed(network, device, placement="cpu").execute()
