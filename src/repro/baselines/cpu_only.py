"""CPU-only inference — the edge-CPU baselines of Fig 6 / Fig 7.

Runs every layer on the device's CPU with plain host memory (no copies,
no GPU).  Used for the Jetson CPU, the Raspberry Pi 4, and the Dimensity
8100 phone processor.
"""

from __future__ import annotations

from typing import Union

from ..core.executor import HybridExecutor
from ..core.memory_manager import MemoryPolicy, plan_allocations
from ..core.plan import ExecutionPlan, cpu_layer
from ..core.report import InferenceReport
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model


def cpu_only_plan(graph: NetworkGraph, device: DeviceSpec) -> ExecutionPlan:
    """All layers on the CPU; buffers are plain host memory (REGULAR with
    no device side ever touched, hence no transfers)."""
    plan = ExecutionPlan(graph.name)
    for name in graph.topo_order():
        plan.set_layer(cpu_layer(name))
    plan_allocations(graph, plan, device, MemoryPolicy.ALL_REGULAR)
    return plan


def run_cpu_only(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec],
) -> InferenceReport:
    """Simulate CPU-only inference on any device's CPU."""
    graph = build_model(network) if isinstance(network, str) else network
    dev = device if isinstance(device, Device) else Device(device)
    plan = cpu_only_plan(graph, dev.spec)
    executor = HybridExecutor(graph, dev, plan)
    return executor.run()
