"""Inter-kernel-only co-running — the state-of-the-art comparator of §V-F.

Models the FineStream-style approach [96]: it uses the shared memory of
the integrated architecture (zero-copy) and assigns *whole kernels* to
processors, but "supports only inter-kernel co-running" — no intra-kernel
splits.  The paper finds it helps only the networks with independent DAG
parts (SqueezeNet ~8%, nothing elsewhere).
"""

from __future__ import annotations

from typing import Union

from ..compile import compile_plan
from ..core.memory_manager import MemoryPolicy
from ..core.report import InferenceReport
from ..core.tuner import TunerConfig
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph


def run_interkernel_only(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec],
) -> InferenceReport:
    """Simulate inter-kernel-only hybrid execution (branch assignment with
    zero-copy memory, but no layer splitting)."""
    config = TunerConfig(
        use_intra_kernel=False,
        use_inter_kernel=True,
        memory_policy=MemoryPolicy.SEMANTIC,
    )
    return compile_plan(network, device, config).execute()
