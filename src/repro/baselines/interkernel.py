"""Inter-kernel-only co-running — the state-of-the-art comparator of §V-F.

Models the FineStream-style approach [96]: it uses the shared memory of
the integrated architecture (zero-copy) and assigns *whole kernels* to
processors, but "supports only inter-kernel co-running" — no intra-kernel
splits.  The paper finds it helps only the networks with independent DAG
parts (SqueezeNet ~8%, nothing elsewhere).
"""

from __future__ import annotations

from typing import Union

from ..core.executor import HybridExecutor
from ..core.memory_manager import MemoryPolicy
from ..core.report import InferenceReport
from ..core.tuner import AdaptiveTuner, TunerConfig
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model


def run_interkernel_only(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec],
) -> InferenceReport:
    """Simulate inter-kernel-only hybrid execution (branch assignment with
    zero-copy memory, but no layer splitting)."""
    graph = build_model(network) if isinstance(network, str) else network
    dev = device if isinstance(device, Device) else Device(device)
    config = TunerConfig(
        use_intra_kernel=False,
        use_inter_kernel=True,
        memory_policy=MemoryPolicy.SEMANTIC,
    )
    tuner = AdaptiveTuner(graph, dev, config)
    result = tuner.tune()
    executor = HybridExecutor(graph, dev, result.plan)
    return executor.run()
