"""Workload generators."""

from .inputs import batch_of_inputs, input_for

__all__ = ["batch_of_inputs", "input_for"]
