"""Workload generators: synthetic inputs and request-arrival processes."""

from .arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    DiurnalPoissonArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from .inputs import batch_of_inputs, input_for

__all__ = [
    "ArrivalProcess",
    "ClosedLoopArrivals",
    "DiurnalPoissonArrivals",
    "FlashCrowdArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "batch_of_inputs",
    "input_for",
]
