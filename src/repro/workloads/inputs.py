"""Deterministic synthetic inputs for the benchmark networks.

The paper feeds compressed camera images (~400 KB); runtime cost depends
only on tensor shapes, so deterministic synthetic tensors of the same
shapes preserve the measured behaviour (see DESIGN.md substitution table).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model


def input_for(network: Union[str, NetworkGraph], seed: int = 0) -> np.ndarray:
    """A reproducible random input of the network's declared shape.

    Values are drawn uniformly from [0, 1) like a normalized image.
    """
    graph = build_model(network) if isinstance(network, str) else network
    rng = np.random.default_rng(seed)
    return rng.random(graph.input_shape, dtype=np.float32)


def batch_of_inputs(
    network: Union[str, NetworkGraph], count: int, seed: int = 0
) -> list:
    """``count`` distinct deterministic inputs (for repeated-inference
    scenarios such as the adaptive-tuning demo)."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [input_for(network, seed=seed + i) for i in range(count)]
