"""Request-arrival processes for the serving simulator.

Two classic load models, both fully deterministic given their seed so a
:class:`~repro.serving.simulator.ServingSimulator` run can be replayed
bit-for-bit:

* **open loop** (:class:`PoissonArrivals`) — requests arrive at a fixed
  average rate regardless of how the server keeps up.  This is the
  internet-facing regime: under overload the queue grows without bound
  unless admission control sheds, which is exactly the behaviour the
  latency/throughput knee sweeps probe.
* **closed loop** (:class:`ClosedLoopArrivals`) — a fixed population of
  clients, each with at most one request outstanding: issue, wait for the
  response, think, repeat.  Offered load is self-limiting, so the closed
  loop can never overload the server the way the open loop does.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ReproError


class ArrivalProcess:
    """Interface the serving simulator drives.

    ``initial_arrivals`` yields every arrival instant known up front;
    ``next_after`` is consulted on each request completion and may yield
    one follow-up arrival (closed-loop feedback).  Open-loop processes
    simply return ``None`` from ``next_after``.
    """

    def initial_arrivals(self) -> List[float]:
        raise NotImplementedError

    def next_after(self, completion_s: float) -> Optional[float]:
        return None


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson process: i.i.d. exponential inter-arrival gaps.

    Generates every arrival in ``[0, duration_s)`` at construction from a
    seeded :func:`numpy.random.default_rng`, so the same (rate, duration,
    seed) triple always produces the same trace.
    """

    def __init__(self, rate_rps: float, duration_s: float, seed: int = 0) -> None:
        if rate_rps <= 0:
            raise ReproError(f"arrival rate must be positive, got {rate_rps}")
        if duration_s <= 0:
            raise ReproError(f"duration must be positive, got {duration_s}")
        self.rate_rps = rate_rps
        self.duration_s = duration_s
        self.seed = seed
        rng = np.random.default_rng(seed)
        times: List[float] = []
        t = 0.0
        # Draw gaps in chunks: cheaper than one rng call per request and
        # still deterministic (the stream of draws is fixed by the seed).
        expected = max(16, int(rate_rps * duration_s * 1.2))
        while True:
            for gap in rng.exponential(1.0 / rate_rps, size=expected):
                t += float(gap)
                if t >= duration_s:
                    self._times = times
                    return
                times.append(t)

    def initial_arrivals(self) -> List[float]:
        return list(self._times)


class UniformArrivals(ArrivalProcess):
    """Open-loop constant-rate process (one request every ``1/rate`` s).

    The zero-variance counterpart of :class:`PoissonArrivals`: useful in
    tests, where queueing effects should come from the policy under test
    rather than from arrival burstiness.
    """

    def __init__(self, rate_rps: float, duration_s: float) -> None:
        if rate_rps <= 0:
            raise ReproError(f"arrival rate must be positive, got {rate_rps}")
        if duration_s <= 0:
            raise ReproError(f"duration must be positive, got {duration_s}")
        self.rate_rps = rate_rps
        self.duration_s = duration_s
        gap = 1.0 / rate_rps
        count = int(np.ceil(duration_s * rate_rps))
        self._times = [
            t for t in (i * gap for i in range(count)) if t < duration_s
        ]

    def initial_arrivals(self) -> List[float]:
        return list(self._times)


class ClosedLoopArrivals(ArrivalProcess):
    """Closed loop: ``clients`` users, each think-send-wait in sequence.

    Client ``i`` issues its first request at ``i * think_s / clients``
    (staggered so the population does not arrive as one burst), then
    re-issues ``think_s`` after each response, until ``duration_s``.
    """

    def __init__(
        self, clients: int, think_s: float, duration_s: float
    ) -> None:
        if clients < 1:
            raise ReproError(f"need at least one client, got {clients}")
        if think_s < 0:
            raise ReproError(f"think time must be >= 0, got {think_s}")
        if duration_s <= 0:
            raise ReproError(f"duration must be positive, got {duration_s}")
        self.clients = clients
        self.think_s = think_s
        self.duration_s = duration_s

    def initial_arrivals(self) -> List[float]:
        stagger = self.think_s / self.clients if self.clients else 0.0
        return [
            t for t in (i * stagger for i in range(self.clients))
            if t < self.duration_s
        ]

    def next_after(self, completion_s: float) -> Optional[float]:
        t = completion_s + self.think_s
        if t >= self.duration_s:
            return None
        return t
