"""Crash-safe filesystem primitives shared by every persistence layer.

The plan cache, the plan store, and the tuning job queue all persist
load-bearing JSON.  A torn write — a process killed (or a disk full)
halfway through ``write_text`` — must never leave a half-written file
where a reader expects an artifact: readers would see valid-prefix JSON
garbage, and at fleet scale some worker *will* die mid-write.

:func:`atomic_write_text` gives all of them the same guarantee: the
payload is written to a ``*.tmp`` sibling and moved into place with
:func:`os.replace`, which is atomic on POSIX (and on Windows for same-
volume moves).  After a crash the target path holds either the old
complete content or the new complete content — never a mixture — and
at worst an orphaned ``*.tmp`` file is left behind for
:func:`sweep_tmp_files` to collect.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import List, Union

#: Suffix of in-flight writes; readers must ignore these.
TMP_SUFFIX = ".tmp"


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp sibling + rename).

    The temporary file lives in the same directory as the target so the
    final :func:`os.replace` never crosses a filesystem boundary.  The
    data is flushed and fsynced before the rename, so a crash after
    return cannot roll the content back either.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        # Leave no half-written tmp behind when *this* writer survives
        # its own failure (a killed process still may; see sweep).
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    return path


def sweep_tmp_files(directory: Union[str, Path]) -> List[Path]:
    """Delete orphaned ``*.tmp`` files under ``directory`` (one level).

    These are the corpses of writers killed mid-:func:`atomic_write_text`;
    the corresponding target files are intact, so the tmp files are pure
    garbage.  Returns what was removed.
    """
    directory = Path(directory)
    removed: List[Path] = []
    if not directory.is_dir():
        return removed
    for tmp in sorted(directory.glob(f"*{TMP_SUFFIX}")):
        try:
            tmp.unlink()
        except OSError:
            continue
        removed.append(tmp)
    return removed


def sha256_text(text: str) -> str:
    """Hex content digest of ``text`` (UTF-8)."""
    return hashlib.sha256(text.encode()).hexdigest()


__all__ = ["TMP_SUFFIX", "atomic_write_text", "sha256_text", "sweep_tmp_files"]
