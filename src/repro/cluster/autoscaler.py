"""Autoscaler: grow and shrink model pools on the virtual clock.

The autoscaler ticks at a fixed virtual interval.  Each tick it looks
at two per-pool signals accumulated since the previous tick — mean
queue depth across routable replicas and the deadline-miss rate
(timed-out + late completions over admitted) — and reacts:

- *scale up* when either signal is above its high-water mark: add
  replicas (the fleet's device mix decides which hardware they are).
- *scale down* when both are below their low-water marks: mark the
  newest routable replica *draining* — it accepts no new requests,
  finishes what it has, and is retired by the event loop once empty.

Scaling is rate-limited by a cooldown, bounded by ``min_replicas`` /
``max_replicas``, and every decision is recorded as a
:class:`~repro.obs.provenance.ScalingRecord` in the run's provenance
log, so a fleet report can always answer *why* the replica population
changed.  Determinism: decisions are pure functions of the windowed
signals, so the same seed and config replays the same scaling history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ReproError
from ..obs import Observability, ScalingRecord
from .fleet import Fleet, Pool, Replica


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and limits for one run's scaling behavior."""

    interval_s: float = 5.0
    high_depth: float = 4.0
    low_depth: float = 0.5
    high_miss_rate: float = 0.05
    low_miss_rate: float = 0.01
    min_replicas: int = 1
    max_replicas: int = 4096
    cooldown_s: float = 10.0
    step: int = 1

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ReproError(
                f"autoscaler interval must be > 0, got {self.interval_s}"
            )
        if self.low_depth > self.high_depth:
            raise ReproError(
                "autoscaler depth thresholds inverted: "
                f"low {self.low_depth} > high {self.high_depth}"
            )
        if self.low_miss_rate > self.high_miss_rate:
            raise ReproError(
                "autoscaler miss-rate thresholds inverted: "
                f"low {self.low_miss_rate} > high {self.high_miss_rate}"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ReproError(
                "autoscaler replica bounds invalid: "
                f"min {self.min_replicas}, max {self.max_replicas}"
            )
        if self.step < 1:
            raise ReproError(f"autoscaler step must be >= 1, got {self.step}")


class _PoolWindow:
    """Signals accumulated for one pool since the last tick."""

    __slots__ = ("depth_sum", "depth_samples", "admitted", "missed")

    def __init__(self) -> None:
        self.depth_sum = 0
        self.depth_samples = 0
        self.admitted = 0
        self.missed = 0

    def reset(self) -> None:
        self.depth_sum = 0
        self.depth_samples = 0
        self.admitted = 0
        self.missed = 0

    @property
    def mean_depth(self) -> float:
        if self.depth_samples == 0:
            return 0.0
        return self.depth_sum / self.depth_samples

    @property
    def miss_rate(self) -> float:
        if self.admitted == 0:
            return 0.0
        return self.missed / self.admitted


class Autoscaler:
    """Windowed threshold scaler over a fleet's pools."""

    def __init__(
        self,
        fleet: Fleet,
        policy: AutoscalerPolicy,
        obs: Observability,
    ) -> None:
        self.fleet = fleet
        self.policy = policy
        self.obs = obs
        self._windows = {pool.name: _PoolWindow() for pool in fleet.pools}
        self._last_change = {pool.name: float("-inf") for pool in fleet.pools}
        #: replicas added this tick — the event loop registers them with
        #: the pool's router after the tick returns.
        self.added: List[Replica] = []

    # -- signal feed (called by the event loop) ---------------------------

    def observe_admit(self, pool: Pool, depth: int) -> None:
        window = self._windows[pool.name]
        window.admitted += 1
        window.depth_sum += depth
        window.depth_samples += 1

    def observe_miss(self, pool: Pool) -> None:
        self._windows[pool.name].missed += 1

    # -- tick -------------------------------------------------------------

    def _record(
        self,
        pool: Pool,
        now: float,
        action: str,
        replica: Replica,
        window: _PoolWindow,
        reason: str,
    ) -> None:
        self.obs.provenance.record_scaling(ScalingRecord(
            pool=pool.name,
            t_s=now,
            action=action,
            replica=replica.name,
            device=replica.spec.name,
            replicas_after=len(pool.active_replicas),
            queue_depth_mean=window.mean_depth,
            miss_rate=window.miss_rate,
            reason=reason,
        ))

    def tick(self, now: float) -> List[Replica]:
        """Evaluate every pool; returns replicas added this tick."""
        self.added = []
        for pool in self.fleet.pools:
            window = self._windows[pool.name]
            self._evaluate(pool, window, now)
            window.reset()
        return self.added

    def _evaluate(
        self, pool: Pool, window: _PoolWindow, now: float
    ) -> None:
        policy = self.policy
        if now - self._last_change[pool.name] < policy.cooldown_s:
            return
        active = pool.active_replicas
        depth = window.mean_depth
        miss = window.miss_rate
        if depth >= policy.high_depth or miss >= policy.high_miss_rate:
            room = policy.max_replicas - len(active)
            for _ in range(min(policy.step, room)):
                replica = self.fleet.add_replica(pool, now=now)
                self.added.append(replica)
                pool.scale_ups += 1
                reason = (
                    f"depth {depth:.2f} >= {policy.high_depth}"
                    if depth >= policy.high_depth
                    else f"miss rate {miss:.4f} >= {policy.high_miss_rate}"
                )
                self._record(pool, now, "scale_up", replica, window, reason)
            if room > 0:
                self._last_change[pool.name] = now
            return
        if depth <= policy.low_depth and miss <= policy.low_miss_rate:
            room = len(active) - policy.min_replicas
            drained = 0
            # Retire newest-first: oldest replicas carry the sticky
            # tenant state worth keeping.
            for replica in reversed(active):
                if drained >= min(policy.step, room):
                    break
                replica.draining = True
                replica.version += 1
                drained += 1
                pool.scale_downs += 1
                self._record(
                    pool, now, "scale_down", replica, window,
                    f"depth {depth:.2f} <= {policy.low_depth} and "
                    f"miss rate {miss:.4f} <= {policy.low_miss_rate}",
                )
            if drained > 0:
                self._last_change[pool.name] = now


__all__ = ["Autoscaler", "AutoscalerPolicy"]
