"""Fleet-run metrics: the cluster-level analogue of ServingReport.

:class:`ClusterReport` describes one simulated fleet run: per-pool and
fleet-wide goodput, tail latency percentiles, energy, shed/miss counts,
the per-device utilization histograms that show whether the router kept
heterogeneous hardware evenly loaded, and the scaling history length.
Like every report in this repo it is JSON-serializable with a stable
content digest — the cross-process determinism gate compares exactly
that digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ReproError
from ..serving.report import LatencyStats

#: Schema identity for serialized cluster reports.
CLUSTER_REPORT_SCHEMA = "repro.cluster.report"
CLUSTER_REPORT_VERSION = 1

#: Utilization histogram resolution: ten 10%-wide bins.
UTILIZATION_BINS = 10


def utilization_histogram(utilizations: List[float]) -> List[int]:
    """Bin replica utilizations into ``UTILIZATION_BINS`` equal-width
    bins over [0, 1]; utilization 1.0 lands in the last bin."""
    bins = [0] * UTILIZATION_BINS
    for u in utilizations:
        index = min(UTILIZATION_BINS - 1, int(u * UTILIZATION_BINS))
        bins[index] += 1
    return bins


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's contribution to the run."""

    name: str
    device: str
    served: int
    failed: int
    batches: int
    busy_s: float
    energy_j: float
    utilization: float
    created_s: float
    retired_s: float = -1.0     # -1: still active at end of run

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "device": self.device,
            "served": self.served,
            "failed": self.failed,
            "batches": self.batches,
            "busy_s": self.busy_s,
            "energy_j": self.energy_j,
            "utilization": self.utilization,
            "created_s": self.created_s,
            "retired_s": self.retired_s,
        }


@dataclass(frozen=True)
class PoolStats:
    """One model pool's view of the run."""

    name: str
    network: str
    replicas_start: int
    replicas_end: int
    replicas_peak: int
    offered: int
    served: int
    shed: int
    timed_out: int
    late: int
    failed: int
    latency: LatencyStats
    batch_histogram: Dict[int, int]
    energy_j: float
    scale_ups: int = 0
    scale_downs: int = 0

    def __post_init__(self) -> None:
        accounted = self.served + self.shed + self.timed_out + self.failed
        if accounted != self.offered:
            raise ReproError(
                f"pool {self.name!r} conservation violated: "
                f"served {self.served} + shed {self.shed} + "
                f"timed_out {self.timed_out} + failed {self.failed} "
                f"!= offered {self.offered}"
            )

    @property
    def miss_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.timed_out / self.offered

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "network": self.network,
            "replicas_start": self.replicas_start,
            "replicas_end": self.replicas_end,
            "replicas_peak": self.replicas_peak,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "late": self.late,
            "failed": self.failed,
            "miss_rate": self.miss_rate,
            "p50_ms": self.latency.p50_s * 1e3,
            "p95_ms": self.latency.p95_s * 1e3,
            "p99_ms": self.latency.p99_s * 1e3,
            "mean_ms": self.latency.mean_s * 1e3,
            "batch_histogram": dict(sorted(self.batch_histogram.items())),
            "energy_j": self.energy_j,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
        }


@dataclass
class ClusterReport:
    """Complete outcome of one simulated fleet run."""

    router: str
    mix: str
    duration_s: float
    makespan_s: float
    offered: int
    served: int
    shed: int
    timed_out: int
    late: int
    failed: int
    latency: LatencyStats
    energy_j: float
    replicas_start: int
    replicas_end: int
    replicas_peak: int
    #: base device name -> 10-bin replica utilization histogram.
    device_utilization: Dict[str, List[int]]
    #: base device name -> mean replica utilization.
    device_utilization_mean: Dict[str, float]
    pools: Tuple[PoolStats, ...]
    replicas: Tuple[ReplicaStats, ...] = ()
    scaling_events: int = 0
    seed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        accounted = self.served + self.shed + self.timed_out + self.failed
        if accounted != self.offered:
            raise ReproError(
                f"fleet conservation violated: served {self.served} + "
                f"shed {self.shed} + timed_out {self.timed_out} + "
                f"failed {self.failed} != offered {self.offered}"
            )
        if self.late > self.timed_out:
            raise ReproError(
                f"late completions {self.late} exceed deadline misses "
                f"{self.timed_out}"
            )
        pool_offered = sum(p.offered for p in self.pools)
        if pool_offered != self.offered:
            raise ReproError(
                f"pool totals ({pool_offered}) disagree with fleet "
                f"offered ({self.offered})"
            )

    # -- derived ----------------------------------------------------------

    @property
    def goodput_rps(self) -> float:
        """Useful responses per virtual second: served within deadline."""
        if self.makespan_s == 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def throughput_rps(self) -> float:
        """All responses per virtual second, late completions included."""
        if self.makespan_s == 0:
            return 0.0
        return (self.served + self.late) / self.makespan_s

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def miss_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.timed_out / self.offered

    @property
    def energy_per_request_j(self) -> float:
        if self.served == 0:
            return 0.0
        return self.energy_j / self.served

    def pool(self, name: str) -> PoolStats:
        for p in self.pools:
            if p.name == name:
                return p
        raise ReproError(f"no pool {name!r} in cluster report")

    # -- serialization ----------------------------------------------------

    def to_dict(self, *, include_replicas: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": CLUSTER_REPORT_SCHEMA,
            "version": CLUSTER_REPORT_VERSION,
            "router": self.router,
            "mix": self.mix,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "late": self.late,
            "failed": self.failed,
            "shed_rate": self.shed_rate,
            "miss_rate": self.miss_rate,
            "goodput_rps": self.goodput_rps,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.latency.p50_s * 1e3,
            "p95_ms": self.latency.p95_s * 1e3,
            "p99_ms": self.latency.p99_s * 1e3,
            "mean_ms": self.latency.mean_s * 1e3,
            "max_ms": self.latency.max_s * 1e3,
            "energy_j": self.energy_j,
            "energy_per_request_j": self.energy_per_request_j,
            "replicas_start": self.replicas_start,
            "replicas_end": self.replicas_end,
            "replicas_peak": self.replicas_peak,
            "scaling_events": self.scaling_events,
            "device_utilization": {
                name: list(bins)
                for name, bins in sorted(self.device_utilization.items())
            },
            "device_utilization_mean": {
                name: mean
                for name, mean in sorted(
                    self.device_utilization_mean.items()
                )
            },
            "pools": [p.to_dict() for p in self.pools],
            "seed": self.seed,
            "extra": {k: self.extra[k] for k in sorted(self.extra)},
        }
        if include_replicas:
            out["replicas"] = [r.to_dict() for r in self.replicas]
        return out

    def to_json(self, *, include_replicas: bool = False) -> str:
        return json.dumps(
            self.to_dict(include_replicas=include_replicas),
            sort_keys=True,
            indent=2,
        )

    def digest(self) -> str:
        """Stable content hash over the full report, replicas included.

        The cross-process determinism gate runs the same seeded config
        twice in fresh interpreters and compares these: any wall-clock
        leak, unseeded randomness, or iteration-order dependence in the
        fleet path shows up as a mismatch here.  ``extra`` is excluded —
        it carries advisory environment facts (plan-cache traffic) that
        legitimately differ between a cold and a warm process.
        """
        payload = self.to_dict(include_replicas=True)
        payload.pop("extra", None)
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI's output)."""
        lines = [
            f"cluster run: router={self.router} mix=[{self.mix}] "
            f"({self.duration_s:g}s offered, "
            f"makespan {self.makespan_s:.3f}s)",
            f"fleet     : {self.replicas_start} -> {self.replicas_end} "
            f"replicas (peak {self.replicas_peak}, "
            f"{self.scaling_events} scaling events)",
            f"requests  : offered {self.offered}, served {self.served}, "
            f"shed {self.shed} ({self.shed_rate:.1%}), "
            f"timed out {self.timed_out} ({self.late} late), "
            f"failed {self.failed}",
            f"goodput   : {self.goodput_rps:.2f} req/s "
            f"(throughput {self.throughput_rps:.2f} req/s)",
            f"latency   : p50 {self.latency.p50_s * 1e3:.3f} ms, "
            f"p95 {self.latency.p95_s * 1e3:.3f} ms, "
            f"p99 {self.latency.p99_s * 1e3:.3f} ms "
            f"(mean {self.latency.mean_s * 1e3:.3f}, "
            f"max {self.latency.max_s * 1e3:.3f})",
            f"energy    : {self.energy_j:.1f} J total, "
            f"{self.energy_per_request_j * 1e3:.3f} mJ/request",
        ]
        lines.append("device utilization (mean, 10-bin histogram):")
        for name in sorted(self.device_utilization):
            bins = self.device_utilization[name]
            mean = self.device_utilization_mean[name]
            spark = " ".join(str(b) for b in bins)
            lines.append(f"  {name:<28} {mean:6.1%}  [{spark}]")
        if len(self.pools) > 1 or self.pools[0].scale_ups:
            lines.append("pools:")
            for p in self.pools:
                lines.append(
                    f"  {p.name:<14} replicas={p.replicas_start}->"
                    f"{p.replicas_end} offered={p.offered} "
                    f"served={p.served} shed={p.shed} "
                    f"miss={p.miss_rate:.2%} "
                    f"p99={p.latency.p99_s * 1e3:.3f}ms"
                )
        return "\n".join(lines)


__all__ = [
    "CLUSTER_REPORT_SCHEMA",
    "CLUSTER_REPORT_VERSION",
    "UTILIZATION_BINS",
    "ClusterReport",
    "PoolStats",
    "ReplicaStats",
    "utilization_histogram",
]
