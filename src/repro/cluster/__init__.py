"""repro.cluster: fleet-scale heterogeneous edge serving.

Simulates hundreds-to-thousands of devices from the hardware catalog —
each a :class:`~repro.cluster.fleet.Replica` wrapping a per-device
compiled-plan service model and a bounded queue — behind a global
routing tier on the shared virtual clock.  The headline result the
subsystem exists to show: routing by *compiled-plan predicted cost*
(``plan_cost``) beats device-blind policies on both fleet goodput and
tail latency, because per-device plan compilation gives the router an
accurate cost model for free.

Entry points:

- :func:`simulate_cluster` / :class:`ClusterSimulator` — run a fleet.
- :class:`DeviceMix` — declarative heterogeneous fleet composition.
- :func:`make_router` — ``round_robin`` | ``least_queue`` | ``plan_cost``.
- :class:`AutoscalerPolicy` — per-pool scaling on queue depth and
  deadline-miss rate, recorded in the provenance log.
- :class:`ClusterReport` — digestable fleet metrics (see
  ``docs/cluster.md``).
"""

from .autoscaler import Autoscaler, AutoscalerPolicy
from .fleet import DEFAULT_THROTTLE, DeviceMix, Fleet, Pool, Replica
from .report import (
    CLUSTER_REPORT_SCHEMA,
    CLUSTER_REPORT_VERSION,
    ClusterReport,
    PoolStats,
    ReplicaStats,
)
from .router import (
    ENERGY,
    LATENCY,
    LeastQueueRouter,
    PlanCostRouter,
    ROUTERS,
    RoundRobinRouter,
    Router,
    make_router,
)
from .simulator import (
    ClusterConfig,
    ClusterSimulator,
    ClusterTenant,
    simulate_cluster,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "CLUSTER_REPORT_SCHEMA",
    "CLUSTER_REPORT_VERSION",
    "ClusterConfig",
    "ClusterReport",
    "ClusterSimulator",
    "ClusterTenant",
    "DEFAULT_THROTTLE",
    "DeviceMix",
    "ENERGY",
    "Fleet",
    "LATENCY",
    "LeastQueueRouter",
    "PlanCostRouter",
    "Pool",
    "PoolStats",
    "ROUTERS",
    "Replica",
    "ReplicaStats",
    "RoundRobinRouter",
    "Router",
    "make_router",
    "simulate_cluster",
]
