"""Service times for fleet devices the EdgeNN engine cannot target.

The hardware catalog is deliberately wider than the paper's device
under test: a realistic edge fleet mixes integrated CPU-GPU SoCs (where
:class:`~repro.serving.simulator.ServiceTimeModel` tunes real EdgeNN
plans) with CPU-only boards like the Raspberry Pi 4 and discrete-GPU
hosts like the RTX 2080 Ti box.  Those run the paper's *baseline*
execution paths — all-CPU or original-program GPU-only — via
:func:`~repro.compile.pipeline.compile_fixed`, which supports batching
and precision but involves no tuner.

:class:`BaselineServiceTimeModel` wraps that path behind the same
``service(network, batch, kind=..., factors=..., retuned=...)`` surface
the serving model exposes, so :class:`~repro.cluster.fleet.Replica` is
agnostic to which side of the integrated/discrete line its device falls
on.  Degraded plan ``kind`` s collapse to the single baseline plan
(there is no hybrid execution or zero-copy to turn off), and thermal
``factors`` execute the *stale* nominal plan at throttled rates —
exactly the naive-device semantics the serving model uses.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..compile.backends import AnalyticBackend
from ..compile.pipeline import CompiledPlan, compile_fixed
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..hardware.throttle import ThrottleFactors, apply_throttle
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from ..serving.simulator import BatchServiceTime


class BaselineServiceTimeModel:
    """Batched service times for CPU-only and discrete-GPU devices.

    Duck-types the serving :class:`ServiceTimeModel` surface that
    :class:`~repro.cluster.fleet.Replica` uses.  ``base_config`` is
    ``None``: there are no engine feature flags here, and the fleet
    dispatcher treats that (together with a non-integrated spec) as
    "no hybrid kernels to fail".
    """

    base_config = None

    def __init__(
        self,
        spec: DeviceSpec,
        precision: Precision = Precision.FP32,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self._spec = spec
        self._precision = precision
        self._obs = obs if obs is not None else NOOP_OBS
        self._placement = "gpu" if spec.has_gpu else "cpu"
        self._warm: Dict[Tuple, BatchServiceTime] = {}

    @property
    def spec(self) -> DeviceSpec:
        return self._spec

    @property
    def placement(self) -> str:
        return self._placement

    def service(
        self,
        network: str,
        batch: int,
        *,
        kind: str = "normal",
        factors: Optional[ThrottleFactors] = None,
        retuned: bool = False,
    ) -> BatchServiceTime:
        """Warm service time of one batch on the baseline path.

        ``kind`` and ``retuned`` are accepted for surface compatibility;
        every kind is the same fixed plan, and there is nothing to
        re-tune — a throttled baseline device always runs its nominal
        plan at the throttled rates.
        """
        key = (network, batch, factors)
        cached = self._warm.get(key)
        if cached is not None:
            return cached
        compiled = compile_fixed(
            network,
            self._spec,
            placement=self._placement,
            precision=self._precision,
            batch_size=batch,
            # The original-program path stages layer outputs through the
            # host on GPU devices (single-stream copy/kernel/copy).
            serialize=self._placement == "gpu",
            host_staging=self._placement == "gpu",
            obs=self._obs,
        )
        if factors is not None and not factors.is_noop:
            compiled = CompiledPlan(
                graph=compiled.graph,
                device=Device(apply_throttle(self._spec, factors)),
                artifact=compiled.artifact,
            )
        report = AnalyticBackend(warm_weights=True).execute(
            compiled, obs=self._obs
        )
        svc = BatchServiceTime(
            total_s=report.total_s,
            cpu_busy_s=report.cpu_busy_s,
            gpu_busy_s=report.gpu_busy_s,
            energy_j=report.energy.energy_j,
        )
        self._warm[key] = svc
        return svc

    def warm(self, network: str, batch: int) -> BatchServiceTime:
        return self.service(network, batch)


__all__ = ["BaselineServiceTimeModel"]
