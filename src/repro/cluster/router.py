"""Routing policies: which replica gets the next request.

Three policies, one protocol:

``round_robin``
    Cycle through the pool's routable replicas.  Device-blind — the
    baseline every fleet paper compares against, and the one that falls
    over on heterogeneous hardware because a Raspberry Pi receives the
    same share as a desktop GPU host.

``least_queue``
    Route to the replica with the shallowest queue.  Load-aware but
    still device-blind: five requests queued on a fast device often
    finish before one queued on a slow one.

``plan_cost``
    Route to the replica whose *compiled plan* predicts the best
    completion (or energy, under ``objective="energy"``) for this
    request: predicted queue wait plus the device's tuned single-request
    service time.  This is the cluster-level payoff of per-device plan
    compilation — the tuner's cost model becomes the routing metric, no
    probing required.

Scale note: the event loop routes ~10^6 requests across ~10^3 replicas,
so per-request work must be O(log n), not O(n).  ``least_queue`` and
``plan_cost`` keep lazy heaps with per-replica version stamps: state
changes bump :attr:`Replica.version` via :meth:`Router.note`, pushes are
O(log n), and stale entries are discarded on pop.  For ``plan_cost`` the
heap keys must be *time-invariant while a replica's state is unchanged*
or lazy deletion would be unsound; see :class:`PlanCostRouter` for the
two-heap construction that achieves this exactly (and makes the
never-picks-a-dominated-replica property testable, not approximate).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from .fleet import Pool, Replica


class Router:
    """Per-pool routing policy.

    The simulator calls :meth:`choose` once per admitted request and
    :meth:`note` after any replica state change that affects routing
    (enqueue, dispatch, completion, drain, retire).  Policies keep their
    own indexes; ``note`` is how they stay consistent without the event
    loop knowing what the policy indexes.
    """

    name = "base"

    def __init__(self, pool: Pool) -> None:
        self.pool = pool
        for replica in pool.replicas:
            if replica.routable:
                self.on_replica_added(replica)

    def choose(self, now: float, tenant: str) -> Optional[Replica]:
        """Pick a routable replica, or None when the pool is empty."""
        raise NotImplementedError

    def note(self, replica: Replica, now: float) -> None:
        """Observe a state change on ``replica`` (already version-bumped)."""

    def on_replica_added(self, replica: Replica) -> None:
        """Observe a replica joining the routable set."""


class RoundRobinRouter(Router):
    """Cycle through routable replicas in creation order."""

    name = "round_robin"

    def choose(self, now: float, tenant: str) -> Optional[Replica]:
        replicas = self.pool.replicas
        n = len(replicas)
        for _ in range(n):
            replica = replicas[self.pool.rr_index % n]
            self.pool.rr_index += 1
            if replica.routable:
                return replica
        return None


class LeastQueueRouter(Router):
    """Route to the replica with the fewest requests in flight.

    Lazy min-heap of ``(depth, version, idx)``; entries whose version no
    longer matches the replica's are stale and dropped on pop.
    """

    name = "least_queue"

    def __init__(self, pool: Pool) -> None:
        self._heap: List[Tuple[int, int, int, Replica]] = []
        super().__init__(pool)

    def _push(self, replica: Replica) -> None:
        heapq.heappush(
            self._heap,
            (replica.depth, replica.version, replica.idx, replica),
        )

    def on_replica_added(self, replica: Replica) -> None:
        self._push(replica)

    def note(self, replica: Replica, now: float) -> None:
        if replica.routable:
            self._push(replica)

    def choose(self, now: float, tenant: str) -> Optional[Replica]:
        heap = self._heap
        while heap:
            depth, version, _, replica = heap[0]
            if version != replica.version or not replica.routable:
                heapq.heappop(heap)
                continue
            return replica
        return None


#: Routing objective: minimize predicted latency or predicted energy.
Objective = str
LATENCY: Objective = "latency"
ENERGY: Objective = "energy"


class PlanCostRouter(Router):
    """Route to the replica whose compiled plan predicts the best cost.

    **Latency objective.**  The predicted completion delay for a request
    arriving at ``now`` is ``wait(now) + svc1`` where ``wait(now) =
    max(0, busy_until - now) + depth * unit_s``.  That quantity changes
    as the clock advances, which a single lazy heap cannot order.  Two
    heaps restore exact argmin with time-invariant keys:

    - *idle heap*: replicas with ``busy_until <= now`` and empty queue
      cost exactly ``svc1_s`` — constant.  Keyed by ``svc1_s``.
    - *busy heap*: replicas with pending work cost ``(busy_until +
      depth * unit_s + svc1_s) - now``.  The parenthesized part — the
      predicted absolute completion instant — is constant while state is
      unchanged.  Keyed by that instant.

    A replica sits in exactly one heap per (state, version); on pop the
    top of each heap is validated against the live replica and the two
    candidate costs are compared at the current clock.  Every state
    change re-files the replica, so both tops are exact minima and the
    chosen replica is the true argmin: it can never be strictly
    dominated on (predicted wait, predicted service) by another
    routable replica — the property test in
    ``tests/properties/test_router_properties.py`` exercises exactly
    this claim.

    **Energy objective.** Keys become ``(unit_energy_j, svc1_s)`` —
    time-invariant outright, one heap suffices (the idle heap is used).

    **Tenant affinity.** A sticky map remembers each tenant's last
    replica; it is reused when its current predicted cost is within
    ``affinity_slack`` of the optimum, keeping per-tenant state (warm
    caches, session KV) on one device without sacrificing more than the
    slack.
    """

    name = "plan_cost"

    def __init__(
        self,
        pool: Pool,
        *,
        objective: Objective = LATENCY,
        affinity_slack: float = 0.0,
    ) -> None:
        if objective not in (LATENCY, ENERGY):
            raise ReproError(
                f"unknown objective {objective!r}; "
                f"expected {LATENCY!r} or {ENERGY!r}"
            )
        if affinity_slack < 0.0:
            raise ReproError(
                f"affinity_slack must be >= 0, got {affinity_slack}"
            )
        self.objective = objective
        self.affinity_slack = affinity_slack
        #: idle replicas (latency) / all replicas (energy), keyed by a
        #: clock-free cost.
        self._idle: List[Tuple[float, int, int, Replica]] = []
        #: busy replicas keyed by predicted absolute completion instant.
        self._busy: List[Tuple[float, int, int, Replica]] = []
        self._sticky: Dict[str, Replica] = {}
        super().__init__(pool)

    # -- heap maintenance -------------------------------------------------

    def _file(self, replica: Replica, now: float) -> None:
        """Push ``replica`` into the heap its current state belongs to.

        The idle heap takes replicas with no pending work *as of now* —
        their cost stays ``svc1_s`` until the next state change because
        the clock only moves forward.  Everything else goes in the busy
        heap keyed by its predicted absolute completion instant; every
        live busy entry has ``busy_until >= now`` (the completion event
        at ``busy_until`` re-files it), so within that heap cost is
        ``key - now`` and the top is the exact argmin.
        """
        if self.objective == ENERGY:
            heapq.heappush(
                self._idle,
                (replica.unit_energy_j, replica.version, replica.idx, replica),
            )
            return
        if replica.depth == 0 and replica.busy_until <= now:
            heapq.heappush(
                self._idle,
                (replica.svc1_s, replica.version, replica.idx, replica),
            )
        else:
            completion = (
                replica.busy_until
                + replica.depth * replica.unit_s
                + replica.svc1_s
            )
            heapq.heappush(
                self._busy,
                (completion, replica.version, replica.idx, replica),
            )

    def on_replica_added(self, replica: Replica) -> None:
        self._file(replica, replica.created_s)

    def note(self, replica: Replica, now: float) -> None:
        if replica.routable:
            self._file(replica, now)

    # -- cost evaluation --------------------------------------------------

    def _cost(self, replica: Replica, now: float) -> float:
        if self.objective == ENERGY:
            return replica.unit_energy_j
        return replica.predicted_latency_s(now)

    def _peek(
        self, heap: List[Tuple[float, int, int, Replica]]
    ) -> Optional[Tuple[float, Replica]]:
        while heap:
            key, version, _, replica = heap[0]
            if version != replica.version or not replica.routable:
                heapq.heappop(heap)
                continue
            return key, replica
        return None

    def choose(self, now: float, tenant: str) -> Optional[Replica]:
        best: Optional[Replica] = None
        best_cost = float("inf")
        idle = self._peek(self._idle)
        if idle is not None:
            cost = self._cost(idle[1], now)
            if cost < best_cost:
                best, best_cost = idle[1], cost
        busy = self._peek(self._busy)
        if busy is not None:
            cost = self._cost(busy[1], now)
            if cost < best_cost:
                best, best_cost = busy[1], cost
        if best is None:
            return None
        if self.affinity_slack > 0.0:
            sticky = self._sticky.get(tenant)
            if (
                sticky is not None
                and sticky.routable
                and self._cost(sticky, now)
                <= best_cost * (1.0 + self.affinity_slack)
            ):
                return sticky
            self._sticky[tenant] = best
        return best


RouterFactory = Callable[[Pool], Router]

ROUTERS: Dict[str, RouterFactory] = {
    "round_robin": RoundRobinRouter,
    "least_queue": LeastQueueRouter,
    "plan_cost": PlanCostRouter,
}


def make_router(
    name: str,
    pool: Pool,
    *,
    objective: Objective = LATENCY,
    affinity_slack: float = 0.0,
) -> Router:
    """Instantiate the named policy for ``pool``."""
    if name not in ROUTERS:
        raise ReproError(
            f"unknown router {name!r}; available: {sorted(ROUTERS)}"
        )
    if name == "plan_cost":
        return PlanCostRouter(
            pool, objective=objective, affinity_slack=affinity_slack
        )
    return ROUTERS[name](pool)


__all__ = [
    "ENERGY",
    "LATENCY",
    "LeastQueueRouter",
    "PlanCostRouter",
    "ROUTERS",
    "RoundRobinRouter",
    "Router",
    "make_router",
]
