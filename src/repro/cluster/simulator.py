"""Fleet-scale discrete-event simulator on the shared virtual clock.

Where :mod:`repro.serving.simulator` models one device behind a
batcher, this loop models *hundreds to thousands* of them behind a
routing tier: open-loop request streams (one per
:class:`ClusterTenant`) are merged into a single time-ordered arrival
sequence, each arrival is routed to a replica of its model's pool by
the configured :class:`~repro.cluster.router.Router`, and each replica
runs continuous batching — whenever its device is free and its queue
non-empty it dispatches up to ``max_batch_size`` requests as one batch
whose service time (and energy) comes from the replica's compiled
plan via the shared :class:`~repro.serving.simulator.ServiceTimeModel`.

Scale decisions, all in service of ≥10^6 requests × ≥500 replicas in
one process:

- requests are plain float arrival timestamps, not objects; per-tenant
  arrival arrays are pre-generated with numpy and merged with a stable
  argsort, so the event loop's heap holds only batch completions and
  routing is the only per-request Python work;
- replicas use *continuous batching*: a batch dispatches the moment the
  device frees up (``max_wait_s`` is treated as 0 — at fleet arrival
  rates queues are never starved long enough for wait timers to matter),
  which removes timer events entirely;
- deadline bookkeeping mirrors serving's semantics: requests whose
  deadline passed while queued are abandoned at dispatch (``timed_out``),
  and completions past deadline count as ``timed_out`` + ``late``.

Faults: a :class:`~repro.faults.FaultScenario` applies to a
deterministic ``fault_share`` subset of replicas, each with its own
seeded :class:`~repro.faults.FaultInjector` stream and its own window
phase (``fault_stagger_s``), so thermal throttling rolls across the
fleet instead of hitting every device at once — exactly the situation
where device-aware routing pays off.

Determinism: same (tenants, mix, config, seed) reproduces a
bit-identical :class:`~repro.cluster.report.ClusterReport` digest in
any process; the CI gate compares digests across fresh interpreters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import EdgeNNConfig
from ..core.plan_cache import default_plan_cache
from ..errors import ReproError
from ..faults import FaultScenario
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from ..obs.timeline import TimelineArtifact, TimelineRecorder
from ..serving.batcher import _EPS, BatchPolicy
from ..serving.report import LatencyStats
from ..sim.engine import ArrivalSchedule, EventEngine, EventHeap
from ..sim.trace import Trace, TraceEvent
from ..workloads.arrivals import ArrivalProcess, ClosedLoopArrivals
from .autoscaler import Autoscaler, AutoscalerPolicy
from .fleet import DeviceMix, Fleet, Pool, Replica, base_device_name
from .report import (
    ClusterReport,
    PoolStats,
    ReplicaStats,
    utilization_histogram,
)
from .router import LATENCY, Router, make_router

#: the fleet heap's only event kind — batch completions (continuous
#: batching has no wait timers; arrivals live in the merged epoch).
_COMPLETION = 1


@dataclass(frozen=True)
class ClusterTenant:
    """One model's request stream entering the routing tier."""

    network: str
    arrival: ArrivalProcess
    name: Optional[str] = None       # defaults to the network name

    @property
    def tenant_name(self) -> str:
        return self.name if self.name is not None else self.network

    def __post_init__(self) -> None:
        if isinstance(self.arrival, ClosedLoopArrivals):
            raise ReproError(
                "cluster tenants must be open-loop: closed-loop clients "
                "couple arrivals to completions, which the merged-array "
                "fleet loop does not model"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Run-wide fleet knobs."""

    router: str = "plan_cost"
    policy: BatchPolicy = field(
        default_factory=lambda: BatchPolicy(max_wait_s=0.0)
    )
    precision: Precision = Precision.FP32
    engine: Optional[EdgeNNConfig] = None
    seed: int = 0
    #: plan_cost objective: "latency" or "energy".
    objective: str = LATENCY
    #: plan_cost tenant stickiness: reuse a tenant's previous replica
    #: while its cost is within this relative slack of the optimum.
    affinity_slack: float = 0.0
    #: autoscaler policy (None: the fleet size is fixed).
    autoscaler: Optional[AutoscalerPolicy] = None
    #: fault scenario applied to ``fault_share`` of replicas.
    faults: Optional[FaultScenario] = None
    fault_share: float = 0.25
    #: max per-replica phase offset for fault windows (rolling faults).
    fault_stagger_s: float = 0.0
    #: timeline window width in virtual seconds (0: recording off).
    #: When on, the run exposes a digest-stable
    #: :class:`~repro.obs.timeline.TimelineArtifact` on the simulator.
    timeline_window_s: float = 0.0


class ClusterSimulator:
    """Discrete-event loop over a fleet of replicas and a router tier."""

    def __init__(
        self,
        tenants: Sequence[ClusterTenant],
        mix: DeviceMix,
        replicas_per_pool: int,
        config: Optional[ClusterConfig] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        if not tenants:
            raise ReproError("a cluster run needs at least one tenant")
        names = [t.tenant_name for t in tenants]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate tenant names: {names}")
        self._tenants = tuple(tenants)
        self._config = config or ClusterConfig()
        self._obs = obs if obs is not None else NOOP_OBS
        cfg = self._config
        networks: List[str] = []
        for tenant in tenants:
            if tenant.network not in networks:
                networks.append(tenant.network)
        self.fleet = Fleet(
            mix,
            [(network, replicas_per_pool) for network in networks],
            policy=cfg.policy,
            precision=cfg.precision,
            engine=cfg.engine,
            seed=cfg.seed,
            faults=cfg.faults,
            fault_share=cfg.fault_share,
            fault_stagger_s=cfg.fault_stagger_s,
            obs=self._obs,
        )
        self._pools: Dict[str, Pool] = {
            pool.name: pool for pool in self.fleet.pools
        }
        self.routers: Dict[str, Router] = {
            pool.name: make_router(
                cfg.router,
                pool,
                objective=cfg.objective,
                affinity_slack=cfg.affinity_slack,
            )
            for pool in self.fleet.pools
        }
        self.autoscaler: Optional[Autoscaler] = (
            Autoscaler(self.fleet, cfg.autoscaler, self._obs)
            if cfg.autoscaler is not None
            else None
        )
        #: windowed telemetry of the last run (None unless
        #: ``config.timeline_window_s`` > 0).
        self.timeline: Optional[TimelineArtifact] = None
        #: recorder calls the last run made, total and by hook
        #: name (feeds the analytic overhead bench).
        self.timeline_ops: int = 0
        self.timeline_op_counts: Dict[str, int] = {}
        #: fleet batch-slice trace of the last run (None unless the
        #: observability bundle is enabled) — feeds the Perfetto export.
        self.trace: Optional[Trace] = None
        # Recorder shared between run() and _try_dispatch().
        self._tl: Optional[TimelineRecorder] = None

    def _horizon_s(self) -> float:
        return max(
            float(getattr(t.arrival, "duration_s", 0.0))
            for t in self._tenants
        )

    # -- service selection under faults ----------------------------------

    def _batch_service(self, replica: Replica, size: int, now: float):
        """Service time for one batch, with this replica's faults applied.

        Thermal windows run the *stale* nominal plan at throttled rates
        (the naive-device behavior — fleet-level resilience is routing
        around the slow replica, not re-tuning it); memory pressure
        demotes to the no-zero-copy plan variant; kernel failures lose
        the batch after its device time is consumed, mirroring serving.
        Returns (service, failed).
        """
        injector = replica.injector
        if injector is None:
            return replica.model.warm(replica.network, size), False
        factors = injector.throttle_at(now)
        kind = "no_zerocopy" if injector.memory_pressure_at(now) else "normal"
        svc = replica.model.service(
            replica.network, size, kind=kind, factors=factors
        )
        failed = False
        base_cfg = getattr(replica.model, "base_config", None)
        hybrid = base_cfg.use_hybrid_execution if base_cfg else True
        if hybrid and injector.scenario.kernel_failure_p > 0.0:
            failed = injector.kernel_fails(
                now, detail=f"{replica.name}#{replica.batches}"
            )
        return svc, failed

    # -- replica state transitions ----------------------------------------

    def _try_dispatch(
        self,
        replica: Replica,
        pool: Pool,
        now: float,
        heap: EventHeap,
    ) -> None:
        """Dispatch one batch if the device is free."""
        if replica.busy_until > now + _EPS or not replica.queue:
            return
        deadline = pool.policy.deadline_s
        batch: List[float] = []
        abandoned = 0
        while replica.queue and len(batch) < pool.policy.max_batch_size:
            arrival = replica.queue.popleft()
            if deadline is not None and now - arrival > deadline + _EPS:
                # Abandoned in queue: the client gave up before we got
                # to it — device time is not spent on it.
                pool.timed_out += 1
                abandoned += 1
                if self.autoscaler is not None:
                    self.autoscaler.observe_miss(pool)
                continue
            batch.append(arrival)
        replica.version += 1
        tl = self._tl
        if tl is not None and abandoned:
            tl.record_timed_out(now, abandoned)
        if not batch:
            return
        size = len(batch)
        svc, failed = self._batch_service(replica, size, now)
        end = now + svc.total_s
        replica.busy_until = end
        replica.busy_s += svc.total_s
        replica.energy_j += svc.energy_j
        replica.batches += 1
        pool.batch_histogram[size] = pool.batch_histogram.get(size, 0) + 1
        if tl is not None:
            tl.record_batch(
                now, end, size,
                busy=((base_device_name(replica.spec.name), svc.total_s),),
                energy_j=svc.energy_j,
            )
        if self.trace is not None:
            self.trace.add(TraceEvent(
                resource=replica.name,
                label=f"{pool.name}:batch(n={size})",
                start_s=now,
                end_s=end,
                category="batch",
            ))
        heap.push(end, _COMPLETION, (replica, tuple(batch), failed))

    def _retire_if_drained(self, replica: Replica, now: float) -> None:
        if (
            replica.draining
            and replica.active
            and not replica.queue
            and replica.busy_until <= now + _EPS
        ):
            replica.active = False
            replica.retired_s = now
            replica.version += 1

    # -- the event loop ---------------------------------------------------

    def run(self) -> ClusterReport:
        cfg = self._config
        cache = default_plan_cache()
        cache_before = cache.stats()
        tl: Optional[TimelineRecorder] = None
        if cfg.timeline_window_s > 0.0:
            tl = TimelineRecorder(
                cfg.timeline_window_s,
                source=f"cluster:{cfg.router}",
                meta={
                    "seed": str(cfg.seed),
                    "tenants": ",".join(
                        sorted(t.tenant_name for t in self._tenants)
                    ),
                },
            )
        self._tl = tl
        self.timeline = None
        self.timeline_ops = 0
        self.timeline_op_counts = {}
        self.trace = Trace() if self._obs.enabled else None
        # The shared event core merges all tenants' arrival epochs
        # (concatenate + stable argsort, same dedup'd path serving
        # uses) and drives the completion heap and autoscaler ticks.
        schedule = ArrivalSchedule(
            [t.arrival.as_arrays() for t in self._tenants]
        )
        heap = EventHeap()
        engine = EventEngine(schedule, heap)
        if tl is not None:
            # The whole arrival stream is known up front — one bulk
            # call instead of one recorder call per request.
            tl.record_offered_bulk(schedule.times)
        pools_of_tenant: List[Pool] = [
            self._pools[t.network] for t in self._tenants
        ]
        tenant_names: List[str] = [t.tenant_name for t in self._tenants]
        scaler = self.autoscaler
        tick_interval = (
            cfg.autoscaler.interval_s if cfg.autoscaler is not None else 0.0
        )
        next_tick_at = tick_interval if scaler is not None else float("inf")
        peak = self.fleet.replica_count()
        pool_peak = {
            pool.name: len(pool.replicas) for pool in self.fleet.pools
        }

        def on_tick(now: float) -> None:
            # Autoscaler ticks interleave with real events on the same
            # clock; a tick fires before any event at a later instant.
            nonlocal next_tick_at, peak
            added = scaler.tick(now)
            for replica in added:
                self.routers[replica.pool_name].on_replica_added(replica)
            for pool in self.fleet.pools:
                for replica in pool.replicas:
                    self._retire_if_drained(replica, now)
            peak = max(
                peak,
                sum(
                    1 for p in self.fleet.pools
                    for r in p.replicas if r.active
                ),
            )
            for pool in self.fleet.pools:
                pool_peak[pool.name] = max(
                    pool_peak[pool.name],
                    sum(1 for r in pool.replicas if r.active),
                )
            next_tick_at += tick_interval

        def on_arrival(now: float, tenant_index: int) -> None:
            pool = pools_of_tenant[tenant_index]
            router = self.routers[pool.name]
            pool.offered += 1
            replica = router.choose(now, tenant_names[tenant_index])
            if (
                replica is None
                or replica.depth >= pool.policy.max_queue_depth
            ):
                # Admission control: the routing tier sheds what the
                # chosen backend cannot queue — same accounting as
                # the single-device service's bounded queues.
                pool.shed += 1
                if tl is not None:
                    tl.record_shed(now)
                return
            replica.queue.append(now)
            replica.version += 1
            if scaler is not None:
                scaler.observe_admit(pool, replica.depth)
            self._try_dispatch(replica, pool, now, heap)
            router.note(replica, now)

        def on_event(now: float, kind: int, payload: object) -> None:
            replica, batch, failed = payload
            pool = self._pools[replica.pool_name]
            deadline = pool.policy.deadline_s
            lat_before = len(pool.latencies) if tl is not None else 0
            for arrival in batch:
                if failed:
                    pool.failed += 1
                    replica.failed += 1
                elif (
                    deadline is not None
                    and now - arrival > deadline + _EPS
                ):
                    # Completed, but past deadline: late response.
                    pool.timed_out += 1
                    pool.late += 1
                    if scaler is not None:
                        scaler.observe_miss(pool)
                else:
                    pool.served += 1
                    replica.served += 1
                    pool.latencies.append(now - arrival)
            if tl is not None:
                if failed:
                    tl.record_failed(now, len(batch))
                else:
                    served_now = pool.latencies[lat_before:]
                    if served_now:
                        tl.record_served(now, served_now)
                    late_n = len(batch) - len(served_now)
                    if late_n:
                        tl.record_timed_out(now, late_n, late=True)
            replica.version += 1
            self._try_dispatch(replica, pool, now, heap)
            self._retire_if_drained(replica, now)
            self.routers[pool.name].note(replica, now)

        engine.run(
            on_arrival=on_arrival,
            on_event=on_event,
            next_tick=(
                (lambda: next_tick_at) if scaler is not None else None
            ),
            on_tick=on_tick if scaler is not None else None,
        )

        horizon = self._horizon_s()
        makespan = max(horizon, *(
            [r.busy_until for p in self.fleet.pools for r in p.replicas]
            or [0.0]
        ))
        if tl is not None:
            self.timeline_op_counts = tl.op_counts
            self.timeline_ops = tl.ops
            self.timeline = tl.finish(
                horizon_s=horizon,
                makespan_s=makespan,
                capacity={
                    name: float(count)
                    for name, count in self.fleet.device_counts().items()
                },
            )
            self._tl = None
        cache_delta = cache.stats().delta(cache_before)
        return self._build_report(
            makespan, horizon, peak, pool_peak, cache_delta
        )

    # -- report assembly --------------------------------------------------

    def _build_report(
        self, makespan, horizon, peak, pool_peak, cache_delta
    ) -> ClusterReport:
        cfg = self._config
        pool_stats: List[PoolStats] = []
        replica_stats: List[ReplicaStats] = []
        all_latencies: List[float] = []
        by_device: Dict[str, List[float]] = {}
        for pool in self.fleet.pools:
            pool_stats.append(
                PoolStats(
                    name=pool.name,
                    network=pool.network,
                    replicas_start=pool.replicas_start,
                    replicas_end=sum(
                        1 for r in pool.replicas if r.active
                    ),
                    replicas_peak=pool_peak[pool.name],
                    offered=pool.offered,
                    served=pool.served,
                    shed=pool.shed,
                    timed_out=pool.timed_out,
                    late=pool.late,
                    failed=pool.failed,
                    latency=LatencyStats.from_latencies(pool.latencies),
                    batch_histogram=dict(pool.batch_histogram),
                    energy_j=pool.energy_j,
                    scale_ups=pool.scale_ups,
                    scale_downs=pool.scale_downs,
                )
            )
            all_latencies.extend(pool.latencies)
            for replica in pool.replicas:
                base = base_device_name(replica.spec.name)
                utilization = replica.utilization(makespan)
                by_device.setdefault(base, []).append(utilization)
                replica_stats.append(
                    ReplicaStats(
                        name=replica.name,
                        device=replica.spec.name,
                        served=replica.served,
                        failed=replica.failed,
                        batches=replica.batches,
                        busy_s=replica.busy_s,
                        energy_j=replica.energy_j,
                        utilization=utilization,
                        created_s=replica.created_s,
                        retired_s=(
                            replica.retired_s
                            if replica.retired_s is not None
                            else -1.0
                        ),
                    )
                )
        report = ClusterReport(
            router=cfg.router,
            mix=self.fleet.mix.describe(),
            duration_s=horizon,
            makespan_s=makespan,
            offered=sum(p.offered for p in pool_stats),
            served=sum(p.served for p in pool_stats),
            shed=sum(p.shed for p in pool_stats),
            timed_out=sum(p.timed_out for p in pool_stats),
            late=sum(p.late for p in pool_stats),
            failed=sum(p.failed for p in pool_stats),
            latency=LatencyStats.from_latencies(all_latencies),
            energy_j=sum(p.energy_j for p in pool_stats),
            replicas_start=sum(p.replicas_start for p in pool_stats),
            replicas_end=sum(p.replicas_end for p in pool_stats),
            replicas_peak=peak,
            device_utilization={
                name: utilization_histogram(us)
                for name, us in by_device.items()
            },
            device_utilization_mean={
                name: sum(us) / len(us) for name, us in by_device.items()
            },
            pools=tuple(pool_stats),
            replicas=tuple(replica_stats),
            scaling_events=sum(
                p.scale_ups + p.scale_downs for p in pool_stats
            ),
            seed=cfg.seed,
        )
        report.extra["plan_cache_hits"] = float(cache_delta.hits)
        report.extra["plan_cache_misses"] = float(cache_delta.misses)
        return report


def simulate_cluster(
    tenants: Sequence[ClusterTenant],
    mix: DeviceMix,
    replicas_per_pool: int,
    config: Optional[ClusterConfig] = None,
    *,
    obs: Optional[Observability] = None,
) -> ClusterReport:
    """Run one fleet simulation and return its report."""
    return ClusterSimulator(
        tenants, mix, replicas_per_pool, config, obs=obs
    ).run()


__all__ = [
    "ClusterConfig",
    "ClusterSimulator",
    "ClusterTenant",
    "simulate_cluster",
]
