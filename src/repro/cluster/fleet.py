"""Fleet model: replicas, device mixes, and per-model pools.

A *fleet* is hundreds-to-thousands of :class:`Replica` objects — one
simulated edge device each, drawn from the hardware catalog — grouped
into per-model :class:`Pool` s.  Every replica wraps a per-device-spec
:class:`~repro.serving.simulator.ServiceTimeModel` (shared across all
replicas on the same spec, so each (network, device, batch) tunes
exactly once per process through the global plan cache) and a bounded
FIFO queue driven by the cluster event loop.

Device diversity is the point: DeepEdgeBench-style fleets mix Jetson,
Raspberry Pi, phone SoCs, and cloud hosts whose service times for the
same model differ by an order of magnitude, which is what makes the
routing policy (:mod:`repro.cluster.router`) matter.  A
:class:`DeviceMix` describes that composition declaratively, including
a share of thermally throttled variants derived through
:func:`repro.hardware.throttle.apply_throttle`.

Everything here is deterministic: replica identity, device assignment,
fault assignment, and the per-replica randomness stream are all pure
functions of (mix, seed, replica index).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..core.engine import EdgeNNConfig
from ..errors import ReproError
from ..faults import FaultInjector, FaultScenario
from ..hardware.specs import DeviceSpec
from ..hardware.throttle import ThrottleFactors, apply_throttle
from ..hardware.variants import full_catalog
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from ..serving.batcher import BatchPolicy
from ..serving.simulator import ServiceTimeModel
from .baselines import BaselineServiceTimeModel

#: Any per-spec batched service-time provider (EdgeNN-tuned or baseline).
AnyServiceModel = Union[ServiceTimeModel, BaselineServiceTimeModel]


def stable_hash(*parts: object) -> int:
    """Deterministic 64-bit hash of the given parts (never Python's
    randomized ``hash``): the seed substrate for per-replica streams."""
    blob = ":".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def unit_fraction(*parts: object) -> float:
    """Deterministic draw in [0, 1) keyed by the given parts."""
    return stable_hash(*parts) / float(2 ** 64)


#: Default DVFS operating point for the throttled share of a mix: the
#: GPU is cut hardest (hottest block), tracking the thermal windows the
#: fault catalog uses.
DEFAULT_THROTTLE = ThrottleFactors(cpu=0.8, gpu=0.6, bandwidth=0.8)


@dataclass(frozen=True)
class DeviceMix:
    """Declarative fleet composition: weighted catalog devices.

    ``entries`` is a sequence of (catalog device name, integer weight);
    replicas are assigned device specs by cycling through the weighted
    sequence, so a mix of ``(("jetson-agx-xavier", 2), ("raspberry-pi-4",
    1))`` yields two Jetsons for every Pi regardless of fleet size.

    ``throttled_share`` in [0, 1] derives that fraction of replicas as
    thermally throttled variants of their assigned device (first-class
    :class:`DeviceSpec` s via :func:`apply_throttle`), modeling the part
    of a real fleet that sits in hot enclosures or on degraded power.
    """

    entries: Tuple[Tuple[str, int], ...]
    throttled_share: float = 0.0
    throttle: ThrottleFactors = field(default_factory=lambda: DEFAULT_THROTTLE)

    def __post_init__(self) -> None:
        if not self.entries:
            raise ReproError("a device mix needs at least one device")
        catalog = full_catalog()
        for name, weight in self.entries:
            if name not in catalog:
                raise ReproError(
                    f"unknown device {name!r} in mix; "
                    f"available: {sorted(catalog)}"
                )
            if not isinstance(weight, int) or weight < 1:
                raise ReproError(
                    f"mix weight for {name!r} must be an int >= 1, "
                    f"got {weight!r}"
                )
        if not 0.0 <= self.throttled_share <= 1.0:
            raise ReproError(
                f"throttled_share must be in [0, 1], "
                f"got {self.throttled_share}"
            )

    @classmethod
    def parse(
        cls,
        text: str,
        *,
        throttled_share: float = 0.0,
        throttle: Optional[ThrottleFactors] = None,
    ) -> "DeviceMix":
        """Parse ``"name[:weight],name[:weight],..."`` (CLI form)."""
        entries: List[Tuple[str, int]] = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, weight_text = token.partition(":")
            try:
                weight = int(weight_text) if weight_text else 1
            except ValueError:
                raise ReproError(
                    f"mix weight must be an integer, got {token!r}"
                ) from None
            entries.append((name, weight))
        if not entries:
            raise ReproError(f"empty device mix: {text!r}")
        return cls(
            entries=tuple(entries),
            throttled_share=throttled_share,
            throttle=throttle or DEFAULT_THROTTLE,
        )

    def _cycle(self) -> List[str]:
        cycle: List[str] = []
        for name, weight in self.entries:
            cycle.extend([name] * weight)
        return cycle

    def spec_for(self, index: int) -> DeviceSpec:
        """Device spec of the ``index``-th replica of this mix.

        Pure function of (mix, index): the weighted cycle picks the base
        device, and the throttled share is spread evenly along the
        sequence (replica ``i`` is throttled when the running share
        crosses an integer at ``i``), so any prefix of the fleet has the
        composition the mix declares.
        """
        if index < 0:
            raise ReproError(f"replica index must be >= 0, got {index}")
        cycle = self._cycle()
        catalog = full_catalog()
        spec = catalog[cycle[index % len(cycle)]]
        share = self.throttled_share
        throttled = int((index + 1) * share) > int(index * share)
        if throttled and not self.throttle.is_noop:
            spec = apply_throttle(spec, self.throttle)
        return spec

    def describe(self) -> str:
        parts = [f"{name}:{weight}" for name, weight in self.entries]
        text = ",".join(parts)
        if self.throttled_share > 0:
            text += f" ({self.throttled_share:.0%} throttled)"
        return text


def base_device_name(spec_name: str) -> str:
    """Catalog name with any throttle suffix stripped
    (``jetson-agx-xavier@thr-...`` -> ``jetson-agx-xavier``)."""
    return spec_name.split("@", 1)[0]


class Replica:
    """One simulated device instance serving one model pool.

    Holds the bounded FIFO queue (arrival instants only — at fleet scale
    requests are float timestamps, not objects), the busy horizon, and
    the counters the report aggregates.  ``version`` increments on every
    routing-relevant state change so the routers' lazy heaps can discard
    stale entries in O(1).
    """

    __slots__ = (
        "name", "idx", "spec", "pool_name", "network", "model",
        "queue", "busy_until", "version", "active", "draining",
        "created_s", "retired_s", "busy_s", "energy_j", "batches",
        "served", "failed", "svc1_s", "unit_s", "unit_energy_j",
        "faults", "injector",
    )

    def __init__(
        self,
        name: str,
        spec: DeviceSpec,
        pool_name: str,
        network: str,
        model: AnyServiceModel,
        *,
        idx: int = 0,
        max_batch: int,
        created_s: float = 0.0,
        faults: Optional[FaultScenario] = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        #: fleet-wide creation index: the deterministic heap tie-break
        #: the routers use (``id()`` would vary run to run).
        self.idx = idx
        self.spec = spec
        self.pool_name = pool_name
        self.network = network
        self.model = model
        self.queue: Deque[float] = deque()
        self.busy_until = 0.0
        self.version = 0
        self.active = True
        self.draining = False
        self.created_s = created_s
        self.retired_s: Optional[float] = None
        self.busy_s = 0.0
        self.energy_j = 0.0
        self.batches = 0
        self.served = 0
        self.failed = 0
        # Predicted costs from the compiled plan (nominal device): the
        # numbers plan_cost routing ranks replicas by.  Computing them
        # here is the only tuning a replica ever triggers, and it is
        # memoized per device spec through the shared plan cache.
        svc1 = model.service(network, 1)
        svc_b = model.service(network, max_batch)
        self.svc1_s = svc1.total_s
        self.unit_s = svc_b.total_s / max_batch
        self.unit_energy_j = svc_b.energy_j / max_batch
        self.faults = faults
        # Per-replica deterministic fault draws: each faulted replica
        # gets its own injector stream keyed by (run seed, replica
        # name), so adding a replica never perturbs another's faults.
        self.injector: Optional[FaultInjector] = (
            None if faults is None
            else FaultInjector(faults, seed=stable_hash(seed, name))
        )

    @property
    def routable(self) -> bool:
        """True while the router may send new requests here."""
        return self.active and not self.draining

    @property
    def depth(self) -> int:
        return len(self.queue)

    def idle_at(self, now: float) -> bool:
        return self.busy_until <= now

    def predicted_wait_s(self, now: float) -> float:
        """Predicted queueing delay for a request arriving at ``now``:
        the remaining busy time plus the amortized cost of everything
        already queued (the compiled plan's per-request unit cost)."""
        return max(0.0, self.busy_until - now) + self.depth * self.unit_s

    def predicted_latency_s(self, now: float) -> float:
        """Predicted completion delay: wait plus own service."""
        return self.predicted_wait_s(now) + self.svc1_s

    def utilization(self, makespan_s: float) -> float:
        """Busy share of this replica's lifetime within the run."""
        end = self.retired_s if self.retired_s is not None else makespan_s
        alive = end - self.created_s
        if alive <= 0.0:
            return 0.0
        return min(1.0, self.busy_s / alive)


class Pool:
    """All replicas serving one model, plus that model's counters."""

    __slots__ = (
        "name", "network", "policy", "replicas", "latencies",
        "offered", "served", "shed", "timed_out", "late", "failed",
        "batch_histogram", "scale_ups", "scale_downs", "replicas_start",
        "rr_index",
    )

    def __init__(
        self, name: str, network: str, policy: BatchPolicy
    ) -> None:
        self.name = name
        self.network = network
        self.policy = policy
        self.replicas: List[Replica] = []
        #: served-request latencies (the percentile substrate); a plain
        #: float list keeps a million entries cheap and digest-stable.
        self.latencies: List[float] = []
        self.offered = 0
        self.served = 0
        self.shed = 0
        self.timed_out = 0
        self.late = 0
        self.failed = 0
        self.batch_histogram: Dict[int, int] = {}
        self.scale_ups = 0
        self.scale_downs = 0
        self.replicas_start = 0
        self.rr_index = 0

    @property
    def active_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.routable]

    @property
    def energy_j(self) -> float:
        return sum(r.energy_j for r in self.replicas)


class Fleet:
    """Builds and grows the replica population for a set of model pools.

    One :class:`ServiceTimeModel` is kept per distinct device spec, so
    however many replicas share a spec, each (network, batch, variant)
    combination compiles exactly once — plans are per-device assets, the
    fleet's hot path never tunes.
    """

    def __init__(
        self,
        mix: DeviceMix,
        pools: Sequence[Tuple[str, int]],
        *,
        policy: Optional[BatchPolicy] = None,
        precision: Precision = Precision.FP32,
        engine: Optional[EdgeNNConfig] = None,
        seed: int = 0,
        faults: Optional[FaultScenario] = None,
        fault_share: float = 0.25,
        fault_stagger_s: float = 0.0,
        obs: Optional[Observability] = None,
    ) -> None:
        if not pools:
            raise ReproError("a fleet needs at least one model pool")
        if not 0.0 <= fault_share <= 1.0:
            raise ReproError(
                f"fault_share must be in [0, 1], got {fault_share}"
            )
        self.mix = mix
        self.policy = policy or BatchPolicy(max_wait_s=0.0)
        self.seed = seed
        self.faults = faults
        self.fault_share = fault_share
        self.fault_stagger_s = fault_stagger_s
        self._precision = precision
        self._engine = engine
        self._obs = obs if obs is not None else NOOP_OBS
        self._models: Dict[str, AnyServiceModel] = {}
        #: per-pool count of replicas ever created (names + mix cycle).
        self._counters: Dict[str, int] = {}
        #: fleet-wide creation count (deterministic replica indices).
        self._created = 0
        self.pools: List[Pool] = []
        seen = set()
        for network, count in pools:
            if network in seen:
                raise ReproError(f"duplicate pool for network {network!r}")
            if count < 1:
                raise ReproError(
                    f"pool {network!r} needs at least one replica, "
                    f"got {count}"
                )
            seen.add(network)
            pool = Pool(network, network, self.policy)
            self.pools.append(pool)
            self._counters[network] = 0
            for _ in range(count):
                self.add_replica(pool, now=0.0)
            pool.replicas_start = len(pool.replicas)

    def model_for(self, spec: DeviceSpec) -> AnyServiceModel:
        """Shared per-spec service model: EdgeNN-tuned plans for
        integrated devices, the paper's baseline paths (all-CPU /
        GPU-only) for everything else."""
        model = self._models.get(spec.name)
        if model is None:
            if spec.is_integrated:
                model = ServiceTimeModel(
                    spec, self._precision, self._engine, obs=self._obs
                )
            else:
                model = BaselineServiceTimeModel(
                    spec, self._precision, obs=self._obs
                )
            self._models[spec.name] = model
        return model

    def _fault_copy(self, name: str) -> Optional[FaultScenario]:
        """This replica's fault scenario, or None for the healthy share.

        Which replicas are faulted, and each faulted replica's window
        phase, are deterministic draws keyed by (seed, replica name) —
        adding a replica never re-rolls anyone else's faults.
        """
        if self.faults is None or self.fault_share <= 0.0:
            return None
        if unit_fraction(self.seed, name, "faulted") >= self.fault_share:
            return None
        offset = unit_fraction(self.seed, name, "phase") * self.fault_stagger_s
        return self.faults.shifted(offset)

    def add_replica(self, pool: Pool, *, now: float) -> Replica:
        """Create, register, and return one new replica for ``pool``."""
        index = self._counters[pool.name]
        self._counters[pool.name] = index + 1
        self._created += 1
        spec = self.mix.spec_for(index)
        name = f"{pool.name}#{index}"
        replica = Replica(
            name,
            spec,
            pool.name,
            pool.network,
            self.model_for(spec),
            idx=self._created,
            max_batch=self.policy.max_batch_size,
            created_s=now,
            faults=self._fault_copy(name),
            seed=self.seed,
        )
        pool.replicas.append(replica)
        return replica

    def replica_count(self) -> int:
        return sum(len(p.replicas) for p in self.pools)

    def device_counts(self) -> Dict[str, int]:
        """Replicas ever created per base catalog device."""
        counts: Dict[str, int] = {}
        for pool in self.pools:
            for replica in pool.replicas:
                base = base_device_name(replica.spec.name)
                counts[base] = counts.get(base, 0) + 1
        return counts


__all__ = [
    "DEFAULT_THROTTLE",
    "DeviceMix",
    "Fleet",
    "Pool",
    "Replica",
    "base_device_name",
    "stable_hash",
    "unit_fraction",
]
