"""Resilience primitives: retry backoff and a circuit breaker.

Both primitives are deterministic and clock-explicit so they compose
with the virtual-clock simulator: jitter is derived from a seeded hash
(never ``random``), and the breaker is advanced by the caller's notion
of *now* rather than wall time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ReproError


def _unit_draw(seed: int, *parts: object) -> float:
    """Deterministic draw in [0, 1) from (seed, *parts).

    sha256 rather than ``hash()`` so the value is stable across
    processes and Python's per-process hash randomization — the
    determinism gate replays the same seed in two fresh interpreters.
    """
    payload = ":".join(str(p) for p in (seed, *parts)).encode()
    digest = hashlib.sha256(payload).digest()
    # 1 << 64 is the draw denominator (8 digest bytes), not a byte size.
    return int.from_bytes(digest[:8], "big") / float(1 << 64)  # repro-analysis: ignore[REPRO106]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded deterministic jitter.

    Attempt ``k`` (0-based) sleeps ``base * multiplier**k`` capped at
    ``max_delay_s``, then stretched by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from the seeded hash.  The
    jittered delay is re-capped so the cap is a true upper bound.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.05
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ReproError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ReproError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(
                f"jitter fraction must be in [0, 1), got {self.jitter}"
            )

    def nominal_delay(self, attempt: int) -> float:
        """Un-jittered delay after 0-based ``attempt`` (monotone, capped)."""
        if attempt < 0:
            raise ReproError(f"attempt index must be >= 0, got {attempt}")
        return min(
            self.base_delay_s * self.multiplier**attempt, self.max_delay_s
        )

    def delay(self, attempt: int, *, token: object = "") -> float:
        """Jittered delay after ``attempt``; ``token`` decorrelates callers."""
        nominal = self.nominal_delay(attempt)
        factor = 1.0 - self.jitter + 2.0 * self.jitter * _unit_draw(
            self.seed, "backoff", token, attempt
        )
        return min(nominal * factor, self.max_delay_s)

    def schedule(self, *, token: object = "") -> List[float]:
        """All inter-attempt delays for one request (len max_attempts-1)."""
        return [
            self.delay(k, token=token) for k in range(self.max_attempts - 1)
        ]


@dataclass
class BreakerStats:
    """Counters the breaker exposes for metrics export."""

    failures: int = 0
    successes: int = 0
    opens: int = 0
    short_circuits: int = 0


class CircuitBreaker:
    """Closed → open → half-open breaker on an explicit clock.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` rejects until ``reset_timeout_s`` of virtual
    time has elapsed, after which one probe is let through (half-open).
    A probe success closes the circuit, a probe failure re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout_s: float = 0.5,
        name: str = "backend",
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ReproError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.stats = BreakerStats()
        self.transitions: List[dict] = []

    @property
    def state(self) -> str:
        return self._state

    def _transition(self, now: float, state: str) -> None:
        if state == self._state:
            return
        self.transitions.append(
            {"t": now, "from": self._state, "to": state}
        )
        self._state = state

    def allow(self, now: float) -> bool:
        """May a call proceed at virtual instant ``now``?"""
        if self._state == self.OPEN:
            assert self._opened_at is not None
            if now - self._opened_at >= self.reset_timeout_s:
                self._transition(now, self.HALF_OPEN)
                return True
            self.stats.short_circuits += 1
            return False
        return True

    def record_success(self, now: float) -> None:
        self.stats.successes += 1
        self._consecutive_failures = 0
        if self._state in (self.HALF_OPEN, self.OPEN):
            self._transition(now, self.CLOSED)

    def record_failure(self, now: float) -> None:
        self.stats.failures += 1
        self._consecutive_failures += 1
        if self._state == self.HALF_OPEN:
            self._open(now)
        elif (
            self._state == self.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def _open(self, now: float) -> None:
        self._transition(now, self.OPEN)
        self._opened_at = now
        self.stats.opens += 1


__all__ = ["BreakerStats", "CircuitBreaker", "RetryPolicy"]
