"""Fault scenarios: declarative, serializable failure models.

A :class:`FaultScenario` describes *what can go wrong* during a run on
the virtual clock:

* **thermal windows** — intervals during which DVFS cuts processor and
  DRAM rates (:class:`~repro.hardware.throttle.ThrottleFactors`);
* **memory-pressure windows** — intervals during which zero-copy
  (MANAGED) allocations are unavailable: a resilient runtime demotes
  them to REGULAR, a naive one suffers allocation failure;
* **transient kernel failures** — a per-dispatch probability that a
  hybrid kernel launch fails (optionally only inside windows);
* **malformed payloads** — a per-request probability that the payload
  is corrupt (rejected by validation, or poisoning its whole batch);
* **artifact corruption** — a probability that a plan-artifact file on
  disk is corrupted before it is read back.

Scenarios are pure data: the same scenario plus the same seed always
expands to the same fault timeline (see :mod:`repro.faults.injector`).
They round-trip through versioned JSON so ``repro serve --faults``
accepts either a built-in name (:data:`SCENARIO_CATALOG`) or a file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from ..errors import ReproError
from ..fsutil import atomic_write_text
from ..hardware.throttle import ThrottleFactors

SCENARIO_SCHEMA = "repro.fault-scenario"
SCENARIO_VERSION = 1


@dataclass(frozen=True)
class ThermalWindow:
    """One thermal-throttle interval on the virtual clock."""

    start_s: float
    duration_s: float
    factors: ThrottleFactors = field(default_factory=ThrottleFactors)

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ReproError(
                f"thermal window needs start >= 0 and duration > 0, got "
                f"start={self.start_s}, duration={self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "cpu_factor": self.factors.cpu,
            "gpu_factor": self.factors.gpu,
            "bandwidth_factor": self.factors.bandwidth,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ThermalWindow":
        try:
            return cls(
                start_s=float(data["start_s"]),
                duration_s=float(data["duration_s"]),
                factors=ThrottleFactors(
                    cpu=float(data.get("cpu_factor", 1.0)),
                    gpu=float(data.get("gpu_factor", 1.0)),
                    bandwidth=float(data.get("bandwidth_factor", 1.0)),
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed thermal window: {exc}") from exc


@dataclass(frozen=True)
class MemoryPressureWindow:
    """One interval during which zero-copy allocation is unavailable."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ReproError(
                f"memory-pressure window needs start >= 0 and duration > 0, "
                f"got start={self.start_s}, duration={self.duration_s}"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def to_dict(self) -> Dict[str, object]:
        return {"start_s": self.start_s, "duration_s": self.duration_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MemoryPressureWindow":
        try:
            return cls(
                start_s=float(data["start_s"]),
                duration_s=float(data["duration_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed memory-pressure window: {exc}") from exc


def _probability(label: str, value: object) -> float:
    p = float(value)  # type: ignore[arg-type]
    if not 0.0 <= p <= 1.0:
        raise ReproError(f"{label} must be a probability in [0, 1], got {p}")
    return p


@dataclass(frozen=True)
class FaultScenario:
    """A complete, seed-independent failure model for one run."""

    name: str
    description: str = ""
    thermal: Tuple[ThermalWindow, ...] = ()
    memory_pressure: Tuple[MemoryPressureWindow, ...] = ()
    #: per-dispatch probability that a hybrid kernel launch fails.
    kernel_failure_p: float = 0.0
    #: per-request probability that the payload is malformed.
    payload_corrupt_p: float = 0.0
    #: per-file probability that a plan artifact on disk is corrupted.
    artifact_corrupt_p: float = 0.0
    #: per-(job, attempt) probability that a tuning-fleet worker dies
    #: mid-write (torn tmp file, no result reported).
    worker_crash_p: float = 0.0
    version: int = SCENARIO_VERSION

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("a fault scenario needs a non-empty name")
        _probability("kernel_failure_p", self.kernel_failure_p)
        _probability("payload_corrupt_p", self.payload_corrupt_p)
        _probability("artifact_corrupt_p", self.artifact_corrupt_p)
        _probability("worker_crash_p", self.worker_crash_p)

    @property
    def is_quiet(self) -> bool:
        """True when the scenario injects nothing at all."""
        return (
            not self.thermal
            and not self.memory_pressure
            and self.kernel_failure_p == 0.0
            and self.payload_corrupt_p == 0.0
            and self.artifact_corrupt_p == 0.0
            and self.worker_crash_p == 0.0
        )

    def thermal_at(self, now: float):
        """The active thermal window at virtual instant ``now`` (or None)."""
        for window in self.thermal:
            if window.active(now):
                return window
        return None

    def memory_pressure_at(self, now: float):
        """The active memory-pressure window at ``now`` (or None)."""
        for window in self.memory_pressure:
            if window.active(now):
                return window
        return None

    def overlapping_windows(self) -> List[str]:
        """Pairs of same-kind windows that overlap in virtual time.

        Overlapping windows make the injected timeline ambiguous (which
        throttle factor applies?), so the static verifier rejects them.
        Returns human-readable descriptions, empty when disjoint.
        """
        problems: List[str] = []
        for kind, windows in (
            ("thermal", self.thermal),
            ("memory_pressure", self.memory_pressure),
        ):
            ordered = sorted(windows, key=lambda w: w.start_s)
            for earlier, later in zip(ordered, ordered[1:]):
                if later.start_s < earlier.end_s:
                    problems.append(
                        f"{kind} windows [{earlier.start_s:g}, "
                        f"{earlier.end_s:g}) and [{later.start_s:g}, "
                        f"{later.end_s:g}) overlap"
                    )
        return problems

    def shifted(self, offset_s: float) -> "FaultScenario":
        """Copy of this scenario with every window ``offset_s`` later.

        The cluster fleet (:mod:`repro.cluster`) assigns the same
        scenario to many replicas; shifting each replica's copy by a
        deterministic per-replica phase keeps the *fleet* from
        throttling in lockstep — real thermal events are correlated in
        shape, not in phase.  Probabilities are unaffected.
        """
        if offset_s == 0.0:
            return self
        if offset_s < 0:
            raise ReproError(
                f"scenario shift must be >= 0, got {offset_s}"
            )
        return replace(
            self,
            thermal=tuple(
                ThermalWindow(
                    start_s=w.start_s + offset_s,
                    duration_s=w.duration_s,
                    factors=w.factors,
                )
                for w in self.thermal
            ),
            memory_pressure=tuple(
                MemoryPressureWindow(
                    start_s=w.start_s + offset_s,
                    duration_s=w.duration_s,
                )
                for w in self.memory_pressure
            ),
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCENARIO_SCHEMA,
            "version": self.version,
            "name": self.name,
            "description": self.description,
            "thermal": [w.to_dict() for w in self.thermal],
            "memory_pressure": [w.to_dict() for w in self.memory_pressure],
            "kernel_failure_p": self.kernel_failure_p,
            "payload_corrupt_p": self.payload_corrupt_p,
            "artifact_corrupt_p": self.artifact_corrupt_p,
            "worker_crash_p": self.worker_crash_p,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultScenario":
        schema = data.get("schema")
        if schema != SCENARIO_SCHEMA:
            raise ReproError(
                f"not a fault scenario (schema={schema!r}, "
                f"expected {SCENARIO_SCHEMA!r})"
            )
        version = data.get("version")
        if version != SCENARIO_VERSION:
            raise ReproError(
                f"unsupported fault-scenario version {version!r} "
                f"(this build reads version {SCENARIO_VERSION})"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ReproError("fault scenario needs a non-empty string name")
        return cls(
            name=name,
            description=str(data.get("description", "")),
            thermal=tuple(
                ThermalWindow.from_dict(w) for w in data.get("thermal", ())
            ),
            memory_pressure=tuple(
                MemoryPressureWindow.from_dict(w)
                for w in data.get("memory_pressure", ())
            ),
            kernel_failure_p=_probability(
                "kernel_failure_p", data.get("kernel_failure_p", 0.0)
            ),
            payload_corrupt_p=_probability(
                "payload_corrupt_p", data.get("payload_corrupt_p", 0.0)
            ),
            artifact_corrupt_p=_probability(
                "artifact_corrupt_p", data.get("artifact_corrupt_p", 0.0)
            ),
            worker_crash_p=_probability(
                "worker_crash_p", data.get("worker_crash_p", 0.0)
            ),
            version=version,
        )

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"fault scenario is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ReproError("fault scenario JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        # Scenario files are golden artifacts; write atomically (REPRO230).
        return atomic_write_text(Path(path), self.to_json() + "\n")

    def describe(self) -> str:
        """One-paragraph human summary (``repro faults show``)."""
        lines = [f"scenario {self.name!r}: {self.description}"]
        for w in self.thermal:
            lines.append(
                f"  thermal       : [{w.start_s:g}s, {w.end_s:g}s) "
                f"cpu x{w.factors.cpu:g} gpu x{w.factors.gpu:g} "
                f"bw x{w.factors.bandwidth:g}"
            )
        for w in self.memory_pressure:
            lines.append(
                f"  mem pressure  : [{w.start_s:g}s, {w.end_s:g}s) "
                f"zero-copy unavailable"
            )
        if self.kernel_failure_p:
            lines.append(
                f"  kernel faults : p={self.kernel_failure_p:g} per dispatch "
                f"(hybrid kernels)"
            )
        if self.payload_corrupt_p:
            lines.append(
                f"  bad payloads  : p={self.payload_corrupt_p:g} per request"
            )
        if self.artifact_corrupt_p:
            lines.append(
                f"  disk faults   : p={self.artifact_corrupt_p:g} per "
                f"plan artifact"
            )
        if self.worker_crash_p:
            lines.append(
                f"  worker crashes: p={self.worker_crash_p:g} per "
                f"tuning attempt"
            )
        if self.is_quiet:
            lines.append("  (quiet: injects nothing)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Built-in scenario catalog
# ---------------------------------------------------------------------------

#: GPU-heavy thermal soak: the GPU clock halves mid-run, which is where a
#: plan tuned for the cool device loses — re-tuning shifts work CPU-wards.
THERMAL_SOAK = FaultScenario(
    name="thermal-soak",
    description="sustained mid-run GPU-heavy DVFS throttling",
    thermal=(
        ThermalWindow(
            start_s=2.0, duration_s=6.0,
            factors=ThrottleFactors(cpu=0.85, gpu=0.45, bandwidth=0.70),
        ),
    ),
)

#: Transient hybrid-kernel launch failures (driver hiccups, ECC retries).
FLAKY_KERNELS = FaultScenario(
    name="flaky-kernels",
    description="transient hybrid-kernel launch failures",
    kernel_failure_p=0.25,
)

#: Zero-copy pool exhausted for two long stretches of the run.
MEMORY_PRESSURE = FaultScenario(
    name="memory-pressure",
    description="zero-copy pool exhausted in two windows",
    memory_pressure=(
        MemoryPressureWindow(start_s=1.0, duration_s=3.0),
        MemoryPressureWindow(start_s=6.0, duration_s=2.5),
    ),
)

#: A slice of client traffic arrives malformed.
BAD_PAYLOADS = FaultScenario(
    name="bad-payloads",
    description="a fraction of request payloads are malformed",
    payload_corrupt_p=0.08,
)

#: Every plan artifact on disk is corrupted (exercises the checksum path).
CORRUPT_ARTIFACTS = FaultScenario(
    name="corrupt-artifacts",
    description="plan artifacts on disk are corrupted before reload",
    artifact_corrupt_p=1.0,
)

#: A tuning fleet having a bad day: workers die mid-write and some of
#: the writes that do land are corrupt (exercises lease expiry, retry
#: backoff, and the store's quarantine path).
FLAKY_FLEET = FaultScenario(
    name="flaky-fleet",
    description="tuning workers crash mid-write and corrupt artifacts",
    worker_crash_p=0.20,
    artifact_corrupt_p=0.10,
)

#: Everything at once: the bad day a resilient service must survive.
EDGE_STORM = FaultScenario(
    name="edge-storm",
    description="thermal throttling + flaky kernels + memory pressure "
                "+ malformed payloads, all in one run",
    thermal=(
        ThermalWindow(
            start_s=3.0, duration_s=4.0,
            factors=ThrottleFactors(cpu=0.85, gpu=0.50, bandwidth=0.75),
        ),
    ),
    memory_pressure=(MemoryPressureWindow(start_s=7.5, duration_s=2.0),),
    kernel_failure_p=0.15,
    payload_corrupt_p=0.05,
)

#: Built-in scenarios by name (``repro faults list``).
SCENARIO_CATALOG: Mapping[str, FaultScenario] = {
    s.name: s
    for s in (
        THERMAL_SOAK, FLAKY_KERNELS, MEMORY_PRESSURE,
        BAD_PAYLOADS, CORRUPT_ARTIFACTS, FLAKY_FLEET, EDGE_STORM,
    )
}


def load_scenario(name_or_path: Union[str, Path]) -> FaultScenario:
    """Resolve a scenario by catalog name or JSON file path."""
    name = str(name_or_path)
    if name in SCENARIO_CATALOG:
        return SCENARIO_CATALOG[name]
    path = Path(name_or_path)
    if path.exists():
        return FaultScenario.from_json(path.read_text())
    raise ReproError(
        f"unknown fault scenario {name!r}: not a catalog name "
        f"({sorted(SCENARIO_CATALOG)}) and no such file"
    )


def scale_to_horizon(
    scenario: FaultScenario, horizon_s: float, *, reference_s: float = 10.0
) -> FaultScenario:
    """Rescale a scenario's windows to a different run length.

    Catalog scenarios are authored against a ``reference_s`` (10 s)
    horizon; a 60 s soak run wants its windows stretched proportionally
    rather than all faults crowding the first sixth of the run.
    """
    if horizon_s <= 0 or reference_s <= 0:
        raise ReproError("horizons must be positive")
    f = horizon_s / reference_s
    if f == 1.0:
        return scenario
    return replace(
        scenario,
        thermal=tuple(
            ThermalWindow(
                start_s=w.start_s * f, duration_s=w.duration_s * f,
                factors=w.factors,
            )
            for w in scenario.thermal
        ),
        memory_pressure=tuple(
            MemoryPressureWindow(
                start_s=w.start_s * f, duration_s=w.duration_s * f
            )
            for w in scenario.memory_pressure
        ),
    )


__all__ = [
    "BAD_PAYLOADS",
    "CORRUPT_ARTIFACTS",
    "EDGE_STORM",
    "FLAKY_FLEET",
    "FLAKY_KERNELS",
    "FaultScenario",
    "MEMORY_PRESSURE",
    "MemoryPressureWindow",
    "SCENARIO_CATALOG",
    "SCENARIO_SCHEMA",
    "SCENARIO_VERSION",
    "THERMAL_SOAK",
    "ThermalWindow",
    "load_scenario",
    "scale_to_horizon",
]
