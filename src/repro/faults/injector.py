"""FaultInjector: expand a scenario + seed into concrete fault events.

The injector is the only source of randomness in the fault layer, and
it is not random at all: every draw is ``sha256(seed, kind, index)``,
so the same (scenario, seed) pair produces the same fault timeline in
any process.  Each decision that fires is appended to an event list and
mirrored into ``repro.obs`` (a ``fault`` span on the trace plus labeled
counters), and the whole timeline digests to a stable hex string — the
CI determinism gate compares that digest across fresh interpreters.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..hardware.throttle import ThrottleFactors
from .resilience import _unit_draw
from .scenario import (
    FaultScenario,
    MemoryPressureWindow,
    ThermalWindow,
)


class FaultInjector:
    """Deterministic runtime companion to a :class:`FaultScenario`."""

    def __init__(
        self,
        scenario: FaultScenario,
        *,
        seed: int = 0,
        obs=None,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self._obs = obs
        self.events: List[Dict[str, object]] = []
        # Independent draw streams so adding e.g. payload faults never
        # perturbs the kernel-failure sequence.
        self._kernel_draws = 0
        self._payload_draws = 0
        self._artifact_draws = 0

    # -- bookkeeping ----------------------------------------------------------

    def _record(self, kind: str, now: float, **detail: object) -> None:
        event: Dict[str, object] = {"t": round(now, 9), "kind": kind}
        event.update(detail)
        self.events.append(event)
        if self._obs is not None and getattr(self._obs, "enabled", False):
            self._obs.tracer.record(
                f"fault.{kind}",
                now,
                now,
                category="fault",
                attributes={k: str(v) for k, v in detail.items()},
            )
            self._obs.metrics.counter(
                "faults_injected_total",
                "Fault events injected, by kind.",
                labels=("kind",),
            ).labels(kind=kind).inc()

    # -- timeline queries -----------------------------------------------------

    def throttle_at(self, now: float) -> Optional[ThrottleFactors]:
        """Active throttle factors at ``now``, or None outside windows."""
        window: Optional[ThermalWindow] = self.scenario.thermal_at(now)
        if window is None:
            return None
        return window.factors

    def memory_pressure_at(self, now: float) -> bool:
        """True while zero-copy allocation is unavailable."""
        window: Optional[MemoryPressureWindow]
        window = self.scenario.memory_pressure_at(now)
        return window is not None

    # -- probabilistic draws (each consumes one stream index) -----------------

    def kernel_fails(self, now: float, *, detail: str = "") -> bool:
        """Does the next hybrid-kernel launch fail?"""
        p = self.scenario.kernel_failure_p
        if p <= 0.0:
            return False
        index = self._kernel_draws
        self._kernel_draws += 1
        fails = _unit_draw(self.seed, "kernel", index) < p
        if fails:
            self._record("kernel_failure", now, index=index, detail=detail)
        return fails

    def payload_corrupt(self, now: float, *, request_id: int) -> bool:
        """Is this request's payload malformed?"""
        p = self.scenario.payload_corrupt_p
        if p <= 0.0:
            return False
        index = self._payload_draws
        self._payload_draws += 1
        corrupt = _unit_draw(self.seed, "payload", index) < p
        if corrupt:
            self._record(
                "payload_corrupt", now, index=index, request_id=request_id
            )
        return corrupt

    def artifact_corrupt(self, *, path: str, now: float = 0.0) -> bool:
        """Should this plan-artifact file be corrupted on disk?"""
        p = self.scenario.artifact_corrupt_p
        if p <= 0.0:
            return False
        index = self._artifact_draws
        self._artifact_draws += 1
        corrupt = _unit_draw(self.seed, "artifact", index) < p
        if corrupt:
            self._record("artifact_corrupt", now, index=index, path=path)
        return corrupt

    # -- keyed draws (order-independent: safe under parallel scheduling) ------

    def worker_crashes(
        self, *, job_id: str, attempt: int, now: float = 0.0
    ) -> bool:
        """Does the worker running (``job_id``, ``attempt``) die mid-write?

        Unlike the stream-indexed draws above, this one is keyed by the
        *identity* of the work, not by draw order — a tuning fleet
        schedules jobs concurrently in nondeterministic order, and the
        crash schedule must not depend on which worker got there first.
        Same (seed, job, attempt) → same outcome, in any process.
        """
        p = self.scenario.worker_crash_p
        if p <= 0.0:
            return False
        crashes = _unit_draw(
            self.seed, "worker_crash", job_id, attempt
        ) < p
        if crashes:
            self._record("worker_crash", now, job_id=job_id, attempt=attempt)
        return crashes

    def artifact_corrupt_keyed(
        self, *, job_id: str, attempt: int, now: float = 0.0
    ) -> bool:
        """Is the artifact written by (``job_id``, ``attempt``) corrupted?

        Keyed like :meth:`worker_crashes` (scheduling-order independent);
        the stream-indexed :meth:`artifact_corrupt` remains for the
        sequential disk-corruption sweep in :func:`corrupt_artifacts`.
        """
        p = self.scenario.artifact_corrupt_p
        if p <= 0.0:
            return False
        corrupt = _unit_draw(
            self.seed, "artifact_keyed", job_id, attempt
        ) < p
        if corrupt:
            self._record(
                "artifact_corrupt", now, job_id=job_id, attempt=attempt
            )
        return corrupt

    # -- window-edge events (recorded once per window by the driver) ----------

    def note_thermal_enter(self, now: float, window: ThermalWindow) -> None:
        self._record(
            "thermal_enter",
            now,
            window_start=window.start_s,
            window_end=window.end_s,
            cpu=window.factors.cpu,
            gpu=window.factors.gpu,
            bandwidth=window.factors.bandwidth,
        )

    def note_thermal_exit(self, now: float, window: ThermalWindow) -> None:
        self._record("thermal_exit", now, window_start=window.start_s)

    def note_memory_pressure_enter(
        self, now: float, window: MemoryPressureWindow
    ) -> None:
        self._record(
            "memory_pressure_enter",
            now,
            window_start=window.start_s,
            window_end=window.end_s,
        )

    def note_memory_pressure_exit(
        self, now: float, window: MemoryPressureWindow
    ) -> None:
        self._record("memory_pressure_exit", now, window_start=window.start_s)

    # -- determinism ----------------------------------------------------------

    def timeline_digest(self) -> str:
        """Stable hex digest of the injected fault timeline."""
        payload = json.dumps(self.events, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()


def corrupt_artifacts(
    directory: Union[str, Path],
    *,
    scenario: FaultScenario,
    seed: int = 0,
    obs=None,
) -> List[Path]:
    """Corrupt plan-artifact JSON files under ``directory`` in place.

    Deterministic: files are visited in sorted order and each consumes
    one draw from the injector's artifact stream.  Corruption truncates
    the file mid-JSON — exactly the torn write a power loss produces —
    so the hardened ``PlanCache`` load path (checksum + decode guard)
    must treat it as a miss.
    """
    directory = Path(directory)
    injector = FaultInjector(scenario, seed=seed, obs=obs)
    victims: List[Path] = []
    for path in sorted(directory.glob("*.json")):
        if injector.artifact_corrupt(path=path.name):
            text = path.read_text()
            # Chaos injection: deliberately tears the file mid-JSON.
            path.write_text(text[: max(1, len(text) // 2)])  # repro-analysis: ignore[REPRO230]
            victims.append(path)
    return victims


__all__ = ["FaultInjector", "corrupt_artifacts"]
