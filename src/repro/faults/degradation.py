"""Graceful degradation: give something up, keep serving.

The manager is the policy brain the serving simulator consults when the
injected faults start hurting:

* **latency drift** — when a tenant's measured batch time exceeds its
  plan's predicted cost by ``drift_threshold`` for ``drift_sustain``
  consecutive batches (a thermal window in effect), the stale
  :class:`~repro.core.plan_cache.PlanCache` entry is invalidated and
  the tenant is re-tuned against the *throttled* device spec — the
  EdgeNN feedback loop (Eqs. 1-4) applied at the serving layer;
* **hybrid-kernel failures** — when retries keep exhausting on a
  tenant, it falls back to the safe non-hybrid plan (GPU-only /
  CPU-only placement, no intra-kernel splits) until the run ends.

Every decision is written to the provenance log as a
:class:`~repro.obs.provenance.DegradationRecord` and mirrored as a
metric, so a report's goodput can be traced to the moments the system
chose to degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ReproError
from ..obs import NOOP_OBS, DegradationRecord, Observability

#: Tenant operating modes, in degradation order.
MODE_NORMAL = "normal"
MODE_NO_HYBRID = "no_hybrid"


@dataclass
class _TenantState:
    drift_streak: int = 0
    retuned: bool = False
    hybrid_exhaustions: int = 0
    mode: str = MODE_NORMAL


@dataclass
class DegradationPolicy:
    """Thresholds for the two degradation triggers."""

    #: observed/predicted ratio above which a batch counts as drifted.
    drift_threshold: float = 1.15
    #: consecutive drifted batches before re-tuning fires.
    drift_sustain: int = 3
    #: exhausted retry loops before the hybrid fallback goes sticky.
    hybrid_failure_threshold: int = 2

    def __post_init__(self) -> None:
        if self.drift_threshold <= 1.0:
            raise ReproError(
                f"drift_threshold must be > 1, got {self.drift_threshold}"
            )
        if self.drift_sustain < 1:
            raise ReproError(
                f"drift_sustain must be >= 1, got {self.drift_sustain}"
            )
        if self.hybrid_failure_threshold < 1:
            raise ReproError(
                f"hybrid_failure_threshold must be >= 1, "
                f"got {self.hybrid_failure_threshold}"
            )


class DegradationManager:
    """Per-tenant degradation state machine."""

    def __init__(
        self,
        policy: Optional[DegradationPolicy] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self.policy = policy or DegradationPolicy()
        self._obs = obs if obs is not None else NOOP_OBS
        self._tenants: Dict[str, _TenantState] = {}
        self.records: list = []

    def _state(self, tenant: str) -> _TenantState:
        return self._tenants.setdefault(tenant, _TenantState())

    def _emit(self, record: DegradationRecord) -> None:
        self.records.append(record)
        obs = self._obs
        if obs.enabled:
            obs.provenance.record_degradation(record)
            obs.tracer.record(
                f"degrade.{record.action}", record.t_s, record.t_s,
                category="fault", tenant=record.tenant,
                trigger=record.trigger,
            )
            obs.metrics.counter(
                "repro_degradations_total",
                "Graceful-degradation decisions",
                labels=("trigger", "action"),
            ).labels(trigger=record.trigger, action=record.action).inc()

    # -- queries --------------------------------------------------------------

    def mode(self, tenant: str) -> str:
        return self._state(tenant).mode

    def retuned(self, tenant: str) -> bool:
        """Has this tenant switched to the throttled-device plan?"""
        return self._state(tenant).retuned

    # -- latency drift → re-tune against the throttled device -----------------

    def observe_latency(
        self,
        tenant: str,
        network: str,
        *,
        now: float,
        observed_s: float,
        predicted_s: float,
    ) -> bool:
        """Feed one batch measurement; True the instant re-tuning fires."""
        state = self._state(tenant)
        if state.retuned or predicted_s <= 0:
            return False
        if observed_s / predicted_s > self.policy.drift_threshold:
            state.drift_streak += 1
        else:
            state.drift_streak = 0
            return False
        if state.drift_streak < self.policy.drift_sustain:
            return False
        state.retuned = True
        self._emit(DegradationRecord(
            network=network,
            tenant=tenant,
            t_s=now,
            trigger="latency_drift",
            action="retune_throttled",
            observed_s=observed_s,
            predicted_s=predicted_s,
            reason=(
                f"observed/predicted {observed_s / predicted_s:.2f}x > "
                f"{self.policy.drift_threshold:g}x for "
                f"{state.drift_streak} consecutive batches"
            ),
        ))
        return True

    def clear_drift(self, tenant: str, network: str, *, now: float) -> None:
        """Throttle window over: return to the un-throttled plan."""
        state = self._state(tenant)
        if state.retuned:
            self._emit(DegradationRecord(
                network=network,
                tenant=tenant,
                t_s=now,
                trigger="latency_drift",
                action="restore_nominal",
                reason="throttle window ended; nominal plan reinstated",
            ))
        state.retuned = False
        state.drift_streak = 0

    # -- repeated hybrid-kernel failure → safe-plan fallback -------------------

    def note_hybrid_exhausted(
        self, tenant: str, network: str, *, now: float
    ) -> bool:
        """Feed one exhausted retry loop; True when the fallback engages."""
        state = self._state(tenant)
        state.hybrid_exhaustions += 1
        if state.mode == MODE_NO_HYBRID:
            return False
        if state.hybrid_exhaustions < self.policy.hybrid_failure_threshold:
            return False
        state.mode = MODE_NO_HYBRID
        self._emit(DegradationRecord(
            network=network,
            tenant=tenant,
            t_s=now,
            trigger="kernel_failures",
            action="fallback_no_hybrid",
            reason=(
                f"{state.hybrid_exhaustions} retry loops exhausted; "
                f"hybrid kernels disabled for this tenant"
            ),
        ))
        return True

    # -- memory pressure → zero-copy demotion ----------------------------------

    def note_memory_demotion(
        self, tenant: str, network: str, *, now: float
    ) -> None:
        """Record one window's ZEROCOPY→REGULAR demotion decision."""
        self._emit(DegradationRecord(
            network=network,
            tenant=tenant,
            t_s=now,
            trigger="memory_pressure",
            action="demote_zero_copy",
            reason="zero-copy pool unavailable; serving from regular memory",
        ))

    def note_slo_alert(
        self,
        tenant: str,
        network: str,
        *,
        objective: str,
        now: float,
        burn: float,
        reason: str = "",
    ) -> None:
        """Record one SLO burn-rate alert firing against this workload.

        Timeline SLO evaluation happens after the run, so there is no
        plan to demote here — the record ties the alert into the same
        degradation stream operators already watch, and the burn
        multiple is preserved as ``observed_s`` for triage.
        """
        self._emit(DegradationRecord(
            network=network,
            tenant=tenant,
            t_s=now,
            trigger="slo_burn_rate",
            action="alert_fired",
            observed_s=burn,
            reason=reason or (
                f"objective {objective} burned its error budget at "
                f"{burn:.2f}x the alert factor"
            ),
        ))

    def note_artifact_discarded(
        self, network: str, path: str, *, now: float = 0.0
    ) -> None:
        """Record a corrupt plan artifact dropped in favour of re-tuning."""
        self._emit(DegradationRecord(
            network=network,
            tenant="",
            t_s=now,
            trigger="artifact_corrupt",
            action="retune_from_scratch",
            reason=f"discarded corrupt plan artifact {path}",
        ))


__all__ = [
    "DegradationManager",
    "DegradationPolicy",
    "MODE_NO_HYBRID",
    "MODE_NORMAL",
]
