"""repro.faults — deterministic fault injection and resilience.

The paper's evaluation assumes a well-behaved device; real edge
deployments are dominated by variability: DVFS thermal throttling,
transient kernel-launch failures, memory pressure that takes the
zero-copy pool away, corrupt plan artifacts on flash, and malformed
request payloads.  This package models all of that *deterministically*
— a :class:`FaultScenario` plus a seed expands to the same fault
timeline in any process — and supplies the resilience mechanisms that
survive it:

* :class:`RetryPolicy` / :class:`CircuitBreaker` — backoff-with-jitter
  retries and a breaker around backend execution;
* :class:`DegradationManager` — latency-drift detection that re-tunes
  against the throttled device, and a safe-plan fallback after
  repeated hybrid-kernel failures;
* :class:`FaultInjector` — the seeded runtime that turns a scenario
  into concrete fault events (and their obs trace/metrics records).

See ``docs/robustness.md`` for the full fault model and
``repro faults list`` for the built-in scenario catalog.
"""

from __future__ import annotations

from .degradation import (
    DegradationManager,
    DegradationPolicy,
    MODE_NO_HYBRID,
    MODE_NORMAL,
)
from .injector import FaultInjector, corrupt_artifacts
from .resilience import BreakerStats, CircuitBreaker, RetryPolicy
from .scenario import (
    BAD_PAYLOADS,
    CORRUPT_ARTIFACTS,
    EDGE_STORM,
    FLAKY_FLEET,
    FLAKY_KERNELS,
    FaultScenario,
    MEMORY_PRESSURE,
    MemoryPressureWindow,
    SCENARIO_CATALOG,
    THERMAL_SOAK,
    ThermalWindow,
    load_scenario,
    scale_to_horizon,
)

__all__ = [
    "BAD_PAYLOADS",
    "CORRUPT_ARTIFACTS",
    "EDGE_STORM",
    "FLAKY_FLEET",
    "FLAKY_KERNELS",
    "MEMORY_PRESSURE",
    "THERMAL_SOAK",
    "BreakerStats",
    "CircuitBreaker",
    "DegradationManager",
    "DegradationPolicy",
    "FaultInjector",
    "FaultScenario",
    "MODE_NO_HYBRID",
    "MODE_NORMAL",
    "MemoryPressureWindow",
    "RetryPolicy",
    "SCENARIO_CATALOG",
    "ThermalWindow",
    "corrupt_artifacts",
    "load_scenario",
    "scale_to_horizon",
]
