"""Bounded request queue + dynamic batching policy for one tenant.

The policy is the classic *max-batch-size / max-wait-time* rule used by
production inference servers (Triton, TF-Serving):

* a batch is **ready** the instant ``max_batch_size`` requests are
  queued, or once the *oldest* queued request has waited ``max_wait_s``
  (whichever comes first);
* ``max_batch_size=1`` degenerates to immediate per-request dispatch
  (the paper's one-shot regime);
* ``max_wait_s=0`` dispatches whatever is queued the moment the device
  is free — batches then form only while the device is busy.

Admission control is a bounded queue: an arrival finding
``max_queue_depth`` requests already waiting is **shed** immediately
(fail fast beats queueing past the latency SLO — the load-shedding
argument).  The queue never reorders requests within a tenant (FIFO).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..errors import ReproError
from .request import Request, RequestStatus

#: Tolerance when comparing virtual-clock instants (timer events fire at
#: exactly the deadline; float round-off must not defer a ready batch).
_EPS = 1e-12


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher and the admission controller."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002
    max_queue_depth: int = 64
    #: per-request latency budget relative to arrival; a request still
    #: queued (or completing) past it is abandoned as TIMED_OUT.
    #: None disables deadlines (the pre-fault behaviour).
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ReproError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ReproError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if self.max_queue_depth < 1:
            raise ReproError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ReproError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )


class TenantQueue:
    """FIFO queue of pending requests for one tenant, with batching."""

    def __init__(self, name: str, policy: Optional[BatchPolicy] = None) -> None:
        self.name = name
        self.policy = policy or BatchPolicy()
        self._pending: Deque[Request] = deque()
        self.offered = 0
        self.shed = 0
        self.timed_out = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        return len(self._pending)

    # -- admission -----------------------------------------------------------

    def offer(self, request: Request) -> bool:
        """Admit ``request`` or shed it; returns True when admitted."""
        self.offered += 1
        if len(self._pending) >= self.policy.max_queue_depth:
            request.status = RequestStatus.SHED
            self.shed += 1
            return False
        if self.policy.deadline_s is not None and request.deadline_s is None:
            request.deadline_s = request.arrival_s + self.policy.deadline_s
        self._pending.append(request)
        return True

    def reject(self, request: Request) -> None:
        """Refuse a malformed payload at the door (counts as offered)."""
        self.offered += 1
        request.status = RequestStatus.REJECTED
        self.rejected += 1

    # -- deadlines -----------------------------------------------------------

    def expire(self, now: float) -> List[Request]:
        """Abandon queued requests whose deadline has passed at ``now``.

        FIFO order plus a uniform per-tenant deadline offset makes
        queued deadlines monotone, so expiry only ever pops from the
        front.  Returned requests are already marked TIMED_OUT with
        ``finish_s = now`` (abandonment instant) for time-in-system
        accounting.
        """
        expired: List[Request] = []
        while self._pending and self._pending[0].expired(now, _EPS):
            request = self._pending.popleft()
            request.status = RequestStatus.TIMED_OUT
            request.finish_s = now
            self.timed_out += 1
            expired.append(request)
        return expired

    # -- batching ------------------------------------------------------------

    @property
    def oldest_arrival_s(self) -> Optional[float]:
        if not self._pending:
            return None
        return self._pending[0].arrival_s

    def wait_deadline_s(self) -> Optional[float]:
        """Instant the oldest pending request's wait budget expires
        (None when the queue is empty)."""
        oldest = self.oldest_arrival_s
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def ready(self, now: float) -> bool:
        """True when a batch should dispatch at virtual instant ``now``."""
        if not self._pending:
            return False
        if len(self._pending) >= self.policy.max_batch_size:
            return True
        return now + _EPS >= self.wait_deadline_s()

    def take_batch(self, now: float) -> List[Request]:
        """Pop up to ``max_batch_size`` requests and mark them running."""
        if not self._pending:
            raise ReproError(f"tenant {self.name!r} has no pending requests")
        batch: List[Request] = []
        while self._pending and len(batch) < self.policy.max_batch_size:
            request = self._pending.popleft()
            request.status = RequestStatus.RUNNING
            request.dispatch_s = now
            batch.append(request)
        for request in batch:
            request.batch_size = len(batch)
        return batch
