"""The unit of work of the serving layer: one inference request.

The paper's evaluation is one-shot — a single inference with a cold
runtime.  A service instead sees a *stream* of these records; everything
the serving metrics report (latency percentiles, shed rate, batch-size
histogram) is an aggregation over them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ReproError


class RequestStatus(enum.Enum):
    PENDING = "pending"      # queued, not yet dispatched
    RUNNING = "running"      # part of an in-flight batch
    SERVED = "served"        # completed successfully, within deadline
    SHED = "shed"            # rejected by admission control (queue full)
    TIMED_OUT = "timed_out"  # missed its deadline (queued or completed late)
    FAILED = "failed"        # lost to an execution fault
    REJECTED = "rejected"    # malformed payload caught by validation


@dataclass
class Request:
    """One inference request travelling through the service."""

    request_id: int
    tenant: str                      # tenant (model) the request targets
    arrival_s: float                 # virtual-clock arrival instant
    status: RequestStatus = RequestStatus.PENDING
    dispatch_s: Optional[float] = field(default=None)   # batch start
    finish_s: Optional[float] = field(default=None)     # completion
    batch_size: int = 0              # size of the batch it rode in
    #: absolute virtual-clock deadline (None: the request never expires).
    deadline_s: Optional[float] = field(default=None)
    #: injected payload corruption (malformed client input).
    corrupt: bool = False

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion (served only)."""
        if self.finish_s is None:
            raise ReproError(
                f"request {self.request_id} has not finished "
                f"(status {self.status.value})"
            )
        return self.finish_s - self.arrival_s

    def expired(self, now: float, eps: float = 0.0) -> bool:
        """Has the deadline passed at virtual instant ``now``?"""
        if self.deadline_s is None:
            return False
        return now > self.deadline_s + eps

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before its batch was dispatched."""
        if self.dispatch_s is None:
            raise ReproError(
                f"request {self.request_id} was never dispatched "
                f"(status {self.status.value})"
            )
        return self.dispatch_s - self.arrival_s
