"""Weighted fair-share scheduling across tenants (models).

Replaces the round-robin interleaving of
:mod:`repro.core.multitenant` at the *request* level: the device runs
one batch at a time (GPU kernels are non-preemptive — the hard lesson
of the `ext_multitenant` experiment, where naive sharing starved the
small tenant ~270x), and whenever it goes idle the scheduler picks which
tenant's ready batch runs next.

The discipline is generalized processor sharing approximated over
*attained service*: each tenant accumulates the device seconds its
batches consumed, and the next grant goes to the ready tenant with the
smallest ``attained / weight``.  A tenant with weight 2 therefore
converges to twice the device share of a weight-1 tenant when both are
backlogged, while an idle tenant's unused share redistributes
automatically (work conservation).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ReproError


class WeightedFairScheduler:
    """Pick the next tenant by smallest weight-normalized attained service."""

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ReproError("scheduler needs at least one tenant")
        for tenant, weight in weights.items():
            if weight <= 0:
                raise ReproError(
                    f"tenant {tenant!r} weight must be positive, got {weight}"
                )
        self._weights: Dict[str, float] = dict(weights)
        self._attained: Dict[str, float] = {t: 0.0 for t in weights}
        self._order: List[str] = list(weights)   # registration = tie-break

    @property
    def tenants(self) -> Sequence[str]:
        return tuple(self._order)

    def weight_of(self, tenant: str) -> float:
        self._check(tenant)
        return self._weights[tenant]

    def attained_s(self, tenant: str) -> float:
        """Device seconds this tenant's batches have consumed so far."""
        self._check(tenant)
        return self._attained[tenant]

    def normalized_attained(self, tenant: str) -> float:
        self._check(tenant)
        return self._attained[tenant] / self._weights[tenant]

    def pick(self, ready: Sequence[str]) -> Optional[str]:
        """The ready tenant owed the most service (None when none ready).

        Deterministic: ties break by tenant registration order.
        """
        best: Optional[str] = None
        best_score = float("inf")
        for tenant in self._order:
            if tenant not in ready:
                continue
            score = self.normalized_attained(tenant)
            if score < best_score:
                best, best_score = tenant, score
        if best is None and ready:
            unknown = [t for t in ready if t not in self._weights]
            if unknown:
                raise ReproError(f"unknown tenants {unknown!r}")
        return best

    def charge(self, tenant: str, service_s: float) -> None:
        """Account ``service_s`` device seconds to ``tenant``."""
        self._check(tenant)
        if service_s < 0:
            raise ReproError(f"negative service time {service_s}")
        self._attained[tenant] += service_s

    def _check(self, tenant: str) -> None:
        if tenant not in self._weights:
            raise ReproError(
                f"unknown tenant {tenant!r}; have {sorted(self._weights)}"
            )
