"""Serving-run metrics: the request-level analogue of InferenceReport.

Where :class:`~repro.core.report.InferenceReport` describes one
inference, :class:`ServingReport` describes a whole run of the service:
latency percentiles across every served request, offered/served/shed
conservation, queue-depth statistics, the batch-size histogram the
dynamic batcher produced, and device utilization over the run.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ReproError


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) over ``values``.

    Nearest-rank always returns an observed sample, so for any data set
    ``percentile(v, a) <= percentile(v, b)`` whenever ``a <= b`` — the
    monotonicity the report's p50/p95/p99 invariant relies on.
    """
    if not values:
        raise ReproError("percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ReproError(f"percentile rank must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of served-request latencies."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencyStats":
        if not latencies:
            return cls(count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0,
                       p99_s=0.0, max_s=0.0)
        return cls(
            count=len(latencies),
            mean_s=sum(latencies) / len(latencies),
            p50_s=percentile(latencies, 0.50),
            p95_s=percentile(latencies, 0.95),
            p99_s=percentile(latencies, 0.99),
            max_s=max(latencies),
        )


@dataclass(frozen=True)
class TenantServingStats:
    """One tenant's (model's) view of the run."""

    name: str
    network: str
    weight: float
    offered: int
    served: int
    shed: int
    latency: LatencyStats
    batch_histogram: Dict[int, int]     # batch size -> dispatch count
    timed_out: int = 0                  # deadline misses (queued or late)
    failed: int = 0                     # lost to execution faults
    rejected: int = 0                   # malformed payloads refused

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def mean_batch_size(self) -> float:
        dispatches = sum(self.batch_histogram.values())
        if dispatches == 0:
            return 0.0
        total = sum(size * n for size, n in self.batch_histogram.items())
        return total / dispatches


@dataclass
class ServingReport:
    """Complete outcome of one simulated serving run."""

    device: str
    duration_s: float          # configured admission horizon
    makespan_s: float          # last completion instant (>= duration under load)
    offered: int
    served: int
    shed: int
    latency: LatencyStats
    batch_histogram: Dict[int, int]
    queue_depth_mean: float    # time-weighted average across the run
    queue_depth_max: int
    cpu_utilization: float     # busy share of the makespan
    gpu_utilization: float
    tenants: Tuple[TenantServingStats, ...]
    seed: int = 0
    #: deadline misses: abandoned in queue plus completions past deadline.
    timed_out: int = 0
    #: completions that missed their deadline (subset of ``timed_out``:
    #: a response was produced, but too late to be useful).
    late: int = 0
    #: requests lost to execution faults (failed batches).
    failed: int = 0
    #: malformed payloads refused by request validation.
    rejected: int = 0
    #: time-in-system distribution of deadline-missed requests
    #: (arrival → abandonment or late completion).
    abandoned_latency: LatencyStats = field(
        default_factory=lambda: LatencyStats.from_latencies([])
    )
    #: shared plan-cache traffic this run caused (one miss per distinct
    #: (network, batch, …) tuned; hits when a batch size recurs).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        accounted = (
            self.served + self.shed + self.timed_out
            + self.failed + self.rejected
        )
        if accounted != self.offered:
            raise ReproError(
                f"request conservation violated: served {self.served} + "
                f"shed {self.shed} + timed_out {self.timed_out} + "
                f"failed {self.failed} + rejected {self.rejected} "
                f"!= offered {self.offered}"
            )
        if self.late > self.timed_out:
            raise ReproError(
                f"late completions {self.late} exceed total deadline "
                f"misses {self.timed_out}"
            )

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def timeout_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.timed_out / self.offered

    @property
    def throughput_rps(self) -> float:
        """Responses produced per second of wall (virtual) time —
        including completions that arrived past their deadline."""
        if self.makespan_s == 0:
            return 0.0
        return (self.served + self.late) / self.makespan_s

    @property
    def goodput_rps(self) -> float:
        """*Useful* responses per second: served within deadline, with a
        valid payload, untouched by execution faults.  Deadline-missed,
        abandoned, failed, and rejected requests are all excluded."""
        if self.makespan_s == 0:
            return 0.0
        return self.served / self.makespan_s

    @property
    def mean_batch_size(self) -> float:
        dispatches = sum(self.batch_histogram.values())
        if dispatches == 0:
            return 0.0
        total = sum(size * n for size, n in self.batch_histogram.items())
        return total / dispatches

    def tenant(self, name: str) -> TenantServingStats:
        for t in self.tenants:
            if t.name == name:
                return t
        raise ReproError(f"no tenant {name!r} in serving report")

    def to_dict(self) -> Dict[str, object]:
        """Flat summary for tabulation / JSON export."""
        return {
            "device": self.device,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "late": self.late,
            "failed": self.failed,
            "rejected": self.rejected,
            "shed_rate": self.shed_rate,
            "timeout_rate": self.timeout_rate,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "abandoned_p99_ms": self.abandoned_latency.p99_s * 1e3,
            "abandoned_count": self.abandoned_latency.count,
            "p50_ms": self.latency.p50_s * 1e3,
            "p95_ms": self.latency.p95_s * 1e3,
            "p99_ms": self.latency.p99_s * 1e3,
            "mean_ms": self.latency.mean_s * 1e3,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
            "mean_batch_size": self.mean_batch_size,
            "cpu_utilization": self.cpu_utilization,
            "gpu_utilization": self.gpu_utilization,
            "batch_histogram": dict(sorted(self.batch_histogram.items())),
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "tenants": [t.name for t in self.tenants],
            "seed": self.seed,
        }

    def digest(self) -> str:
        """Stable content hash of the whole report.

        The CI determinism gate runs the same seeded (scenario, policy)
        twice in fresh processes and compares these digests — any
        nondeterminism anywhere in the serving or fault path shows up
        as a mismatch here.
        """
        payload = dict(self.to_dict())
        payload["extra"] = {k: self.extra[k] for k in sorted(self.extra)}
        payload["per_tenant"] = [
            {
                "name": t.name,
                "offered": t.offered,
                "served": t.served,
                "shed": t.shed,
                "timed_out": t.timed_out,
                "failed": t.failed,
                "rejected": t.rejected,
                "p99_ms": t.latency.p99_s * 1e3,
                "mean_ms": t.latency.mean_s * 1e3,
            }
            for t in self.tenants
        ]
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI's output)."""
        lines = [
            f"serving run on {self.device} "
            f"({self.duration_s:g}s offered, makespan {self.makespan_s:.3f}s)",
            f"requests  : offered {self.offered}, served {self.served}, "
            f"shed {self.shed} ({self.shed_rate:.1%})",
        ]
        if self.timed_out or self.failed or self.rejected:
            lines.append(
                f"lost      : timed out {self.timed_out} "
                f"({self.late} late completions), failed {self.failed}, "
                f"rejected {self.rejected}"
            )
            if self.abandoned_latency.count:
                lines.append(
                    f"abandoned : p99 time-in-system "
                    f"{self.abandoned_latency.p99_s * 1e3:.3f} ms over "
                    f"{self.abandoned_latency.count} deadline misses"
                )
        lines += [
            f"throughput: {self.throughput_rps:.2f} req/s "
            f"(goodput {self.goodput_rps:.2f} req/s)",
            f"latency   : p50 {self.latency.p50_s * 1e3:.3f} ms, "
            f"p95 {self.latency.p95_s * 1e3:.3f} ms, "
            f"p99 {self.latency.p99_s * 1e3:.3f} ms "
            f"(mean {self.latency.mean_s * 1e3:.3f}, "
            f"max {self.latency.max_s * 1e3:.3f})",
            f"queue     : mean depth {self.queue_depth_mean:.2f}, "
            f"max {self.queue_depth_max}",
            f"batches   : mean size {self.mean_batch_size:.2f}, histogram "
            + (" ".join(f"{s}x{n}" for s, n in
                        sorted(self.batch_histogram.items())) or "(none)"),
            f"device    : cpu util {self.cpu_utilization:.1%}, "
            f"gpu util {self.gpu_utilization:.1%}",
            f"plan cache: {self.plan_cache_hits} hits, "
            f"{self.plan_cache_misses} misses",
        ]
        if len(self.tenants) > 1:
            lines.append("tenants:")
            for t in self.tenants:
                lines.append(
                    f"  {t.name:<14} w={t.weight:g} offered={t.offered} "
                    f"served={t.served} shed={t.shed} "
                    f"p99={t.latency.p99_s * 1e3:.3f}ms "
                    f"mean_batch={t.mean_batch_size:.2f}"
                )
        return "\n".join(lines)


def merge_histograms(
    histograms: Sequence[Dict[int, int]]
) -> Dict[int, int]:
    """Sum batch-size histograms across tenants."""
    out: Dict[int, int] = {}
    for hist in histograms:
        for size, n in hist.items():
            out[size] = out.get(size, 0) + n
    return out


def latencies_of(requests) -> List[float]:
    """Latencies of the served requests among ``requests``."""
    from .request import RequestStatus

    return [
        r.latency_s for r in requests if r.status is RequestStatus.SERVED
    ]
