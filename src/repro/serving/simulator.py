"""Virtual-clock inference-serving simulator.

Turns the one-shot EdgeNN engine into a *service*: a discrete-event loop
drives request arrivals (:mod:`repro.workloads.arrivals`) through
per-tenant bounded queues (:mod:`.batcher`), forms dynamic batches, and
executes them one at a time on the simulated device — GPU kernels are
non-preemptive, so the device is a serial batch server; *within* a
batch the CPU and GPU co-run under the shared-bandwidth contention
model exactly as in one-shot mode.

The service time of a batch of size ``b`` comes from the real machinery:
the :class:`~repro.core.engine.EdgeNN` tuner produces a plan *re-tuned
for that batch size* (memoized in the shared
:class:`~repro.core.plan_cache.PlanCache`), and a warm executor
(weights device-resident, the steady state of
:mod:`repro.core.service`) measures it on the
:mod:`repro.sim.timeline` device model.  Dynamic batching therefore
helps exactly as much as the cost model says weight-traffic
amortization is worth — fc-heavy networks batch nearly for free,
conv-heavy ones almost linearly.

Everything is deterministic: same tenants, seeds, and policy produce an
identical :class:`~repro.serving.report.ServingReport`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..compile.backends import AnalyticBackend
from ..core.engine import EdgeNN, EdgeNNConfig
from ..core.plan_cache import default_plan_cache
from ..errors import ReproError
from ..hardware.device import Device
from ..hardware.specs import JETSON_AGX_XAVIER, DeviceSpec
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from ..obs.metrics import DEFAULT_BUCKETS, SIZE_BUCKETS
from ..sim.timeline import COPY, CPU, GPU, Timeline
from ..workloads.arrivals import ArrivalProcess, PoissonArrivals
from .batcher import BatchPolicy, TenantQueue
from .report import (
    LatencyStats,
    ServingReport,
    TenantServingStats,
    merge_histograms,
)
from .request import Request, RequestStatus
from .scheduler import WeightedFairScheduler

#: Serving-level timeline resource: the whole integrated device, which
#: serves one batch at a time (non-preemptive kernels).
DEVICE = "device"

# Event kinds, in processing order at equal virtual instants: arrivals
# join the queue before a same-instant completion triggers dispatch, and
# wait-expiry timers run last (they only re-check readiness).
_ARRIVAL, _COMPLETION, _TIMER = 0, 1, 2


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a model plus its request stream and fair-share weight."""

    network: str
    arrival: ArrivalProcess
    weight: float = 1.0
    name: Optional[str] = None           # defaults to the network name
    policy: Optional[BatchPolicy] = None  # overrides the run's policy

    @property
    def tenant_name(self) -> str:
        return self.name if self.name is not None else self.network


@dataclass(frozen=True)
class ServingConfig:
    """Run-wide serving knobs."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    precision: Precision = Precision.FP32
    #: engine feature flags for tuning (batch_size is set per dispatch).
    engine: Optional[EdgeNNConfig] = None
    #: charge the cold-start premium (parameter staging) to each
    #: tenant's first batch instead of assuming a pre-warmed service.
    cold_start: bool = False
    #: recorded in the report for replay bookkeeping.
    seed: int = 0


@dataclass(frozen=True)
class BatchServiceTime:
    """Simulated cost of one batch of a given size."""

    total_s: float
    cpu_busy_s: float
    gpu_busy_s: float


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch (for the serving trace / debugging)."""

    tenant: str
    size: int
    start_s: float
    end_s: float


class ServiceTimeModel:
    """Warm (and cold) batched service times, memoized per (network, b).

    Each distinct batch size is tuned through the shared plan cache, so
    across sweeps and tenants every (network, device, batch, precision)
    pair tunes exactly once per process.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        precision: Precision = Precision.FP32,
        engine: Optional[EdgeNNConfig] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self._spec = spec
        self._base = engine or EdgeNNConfig()
        self._precision = precision
        self._obs = obs if obs is not None else NOOP_OBS
        self._warm: Dict[Tuple[str, int], BatchServiceTime] = {}
        self._cold: Dict[Tuple[str, int], BatchServiceTime] = {}

    def _engine_for(self, network: str, batch: int) -> EdgeNN:
        config = replace(
            self._base, batch_size=batch, precision=self._precision
        )
        return EdgeNN(network, self._spec, config, obs=self._obs)

    def warm(self, network: str, batch: int) -> BatchServiceTime:
        key = (network, batch)
        if key not in self._warm:
            engine = self._engine_for(network, batch)
            report = AnalyticBackend(warm_weights=True).execute(
                engine.compiled(), obs=self._obs
            )
            self._warm[key] = BatchServiceTime(
                total_s=report.total_s,
                cpu_busy_s=report.cpu_busy_s,
                gpu_busy_s=report.gpu_busy_s,
            )
        return self._warm[key]

    def cold(self, network: str, batch: int) -> BatchServiceTime:
        """First-batch cost: weights still have to reach the GPU."""
        key = (network, batch)
        if key not in self._cold:
            engine = self._engine_for(network, batch)
            report = engine.run()
            self._cold[key] = BatchServiceTime(
                total_s=report.total_s,
                cpu_busy_s=report.cpu_busy_s,
                gpu_busy_s=report.gpu_busy_s,
            )
        return self._cold[key]


class ServingSimulator:
    """Discrete-event loop over one device and one or more tenants."""

    def __init__(
        self,
        device: Union[Device, DeviceSpec, None],
        tenants: Sequence[TenantSpec],
        config: Optional[ServingConfig] = None,
        *,
        service_model: Optional[ServiceTimeModel] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if not tenants:
            raise ReproError("serving needs at least one tenant")
        if device is None:
            device = JETSON_AGX_XAVIER
        self._spec = device.spec if isinstance(device, Device) else device
        self._config = config or ServingConfig()
        self._obs = obs if obs is not None else NOOP_OBS
        self._tenants = tuple(tenants)
        names = [t.tenant_name for t in self._tenants]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate tenant names: {names}")
        self._model = service_model or ServiceTimeModel(
            self._spec, self._config.precision, self._config.engine,
            obs=self._obs,
        )
        #: request/batch records of the last :meth:`run`, kept for the
        #: unified Chrome-trace export (:mod:`repro.obs.export`).
        self.requests: List[Request] = []
        self.batches: List[BatchRecord] = []

    # -- the event loop -------------------------------------------------------

    def run(self) -> ServingReport:
        """Run the simulation; returns the :class:`ServingReport`.

        Plan-cache traffic caused by this run (service-time tuning per
        distinct batch size) is exposed on the report as
        ``plan_cache_hits`` / ``plan_cache_misses``.
        """
        obs = self._obs
        cache = default_plan_cache()
        hits_before, misses_before = cache.hits, cache.misses
        if not obs.enabled:
            report = self._run()
        else:
            with obs.tracer.span(
                "serve", category="serve", device=self._spec.name,
                tenants=",".join(t.tenant_name for t in self._tenants),
            ) as span:
                report = self._run()
                span.set_times(0.0, report.makespan_s)
                span.set_attributes(
                    offered=report.offered, served=report.served,
                    shed=report.shed,
                )
        report.plan_cache_hits = cache.hits - hits_before
        report.plan_cache_misses = cache.misses - misses_before
        return report

    def _run(self) -> ServingReport:
        cfg = self._config
        obs = self._obs
        if obs.enabled:
            requests_total = obs.metrics.counter(
                "repro_serving_requests_total",
                "Requests by tenant and outcome",
                labels=("tenant", "outcome"),
            )
            batches_total = obs.metrics.counter(
                "repro_serving_batches_total",
                "Batches dispatched per tenant", labels=("tenant",),
            )
            batch_size_hist = obs.metrics.histogram(
                "repro_serving_batch_size",
                "Dispatched batch sizes", buckets=SIZE_BUCKETS,
            )
            latency_hist = obs.metrics.histogram(
                "repro_serving_request_latency_seconds",
                "End-to-end served-request latency",
                labels=("tenant",), buckets=DEFAULT_BUCKETS,
            )
            depth_gauge = obs.metrics.gauge(
                "repro_serving_queue_depth",
                "Admitted requests waiting across all tenant queues",
            )
        queues: Dict[str, TenantQueue] = {}
        specs: Dict[str, TenantSpec] = {}
        for spec in self._tenants:
            name = spec.tenant_name
            queues[name] = TenantQueue(name, spec.policy or cfg.policy)
            specs[name] = spec
        scheduler = WeightedFairScheduler(
            {t.tenant_name: t.weight for t in self._tenants}
        )
        timeline = Timeline((DEVICE, CPU, GPU, COPY))

        heap: List[Tuple[float, int, int, str]] = []
        seq = 0

        def push(time_s: float, kind: int, tenant: str) -> None:
            nonlocal seq
            heapq.heappush(heap, (time_s, kind, seq, tenant))
            seq += 1

        for spec in self._tenants:
            for t in spec.arrival.initial_arrivals():
                push(t, _ARRIVAL, spec.tenant_name)

        requests: List[Request] = []
        by_tenant: Dict[str, List[Request]] = {n: [] for n in queues}
        batches: List[BatchRecord] = []
        tenant_hist: Dict[str, Dict[int, int]] = {n: {} for n in queues}
        in_flight: List[Request] = []
        warmed: Dict[str, bool] = {n: not cfg.cold_start for n in queues}
        armed_timers: Dict[str, float] = {}

        device_busy = False
        cpu_busy_total = 0.0
        gpu_busy_total = 0.0
        next_id = 0

        # Time-weighted queue-depth accounting.
        depth = 0
        depth_max = 0
        depth_integral = 0.0
        last_t = 0.0

        def advance(now: float) -> None:
            nonlocal depth_integral, last_t
            if now > last_t:
                depth_integral += depth * (now - last_t)
                last_t = now

        def maybe_dispatch(now: float) -> None:
            nonlocal device_busy, depth, cpu_busy_total, gpu_busy_total
            if device_busy:
                return
            ready = [n for n, q in queues.items() if q.ready(now)]
            chosen = scheduler.pick(ready)
            if chosen is None:
                # Nothing dispatchable yet: arm a wait-expiry timer per
                # tenant still accumulating a batch.
                for name, queue in queues.items():
                    deadline = queue.wait_deadline_s()
                    if deadline is None:
                        continue
                    if armed_timers.get(name) == deadline:
                        continue
                    armed_timers[name] = deadline
                    push(max(deadline, now), _TIMER, name)
                return
            queue = queues[chosen]
            batch = queue.take_batch(now)
            depth -= len(batch)
            size = len(batch)
            mode = "warm" if warmed[chosen] else "cold"
            if warmed[chosen]:
                svc = self._model.warm(specs[chosen].network, size)
            else:
                svc = self._model.cold(specs[chosen].network, size)
                warmed[chosen] = True
            device_busy = True
            scheduler.charge(chosen, svc.total_s)
            cpu_busy_total += svc.cpu_busy_s
            gpu_busy_total += svc.gpu_busy_s
            end = now + svc.total_s
            label = f"{chosen}:batch(n={size})"
            timeline.schedule(DEVICE, svc.total_s, label, not_before=now)
            timeline.schedule(CPU, svc.cpu_busy_s, label, not_before=now,
                              category="kernel")
            timeline.schedule(GPU, svc.gpu_busy_s, label, not_before=now,
                              category="kernel")
            batches.append(
                BatchRecord(tenant=chosen, size=size, start_s=now, end_s=end)
            )
            if obs.enabled:
                obs.tracer.record(
                    label, now, end, category="batch",
                    tenant=chosen, size=size, mode=mode,
                )
                batches_total.labels(tenant=chosen).inc()
                batch_size_hist.observe(size)
                depth_gauge.set(depth)
            tenant_hist[chosen][size] = tenant_hist[chosen].get(size, 0) + 1
            in_flight.extend(batch)
            push(end, _COMPLETION, chosen)

        while heap:
            now, kind, _, tenant = heapq.heappop(heap)
            advance(now)
            if kind == _ARRIVAL:
                request = Request(
                    request_id=next_id, tenant=tenant, arrival_s=now
                )
                next_id += 1
                requests.append(request)
                by_tenant[tenant].append(request)
                if queues[tenant].offer(request):
                    depth += 1
                    depth_max = max(depth_max, depth)
                    if obs.enabled:
                        depth_gauge.set(depth)
                else:
                    # Shed: the client sees an immediate rejection; a
                    # closed-loop client thinks, then retries.
                    request.finish_s = now
                    if obs.enabled:
                        requests_total.labels(
                            tenant=tenant, outcome="shed"
                        ).inc()
                    follow = specs[tenant].arrival.next_after(now)
                    if follow is not None:
                        push(follow, _ARRIVAL, tenant)
                maybe_dispatch(now)
            elif kind == _COMPLETION:
                finished = [r for r in in_flight if r.tenant == tenant]
                in_flight[:] = [r for r in in_flight if r.tenant != tenant]
                for request in finished:
                    request.status = RequestStatus.SERVED
                    request.finish_s = now
                    if obs.enabled:
                        requests_total.labels(
                            tenant=tenant, outcome="served"
                        ).inc()
                        latency_hist.labels(tenant=tenant).observe(
                            request.latency_s
                        )
                    follow = specs[tenant].arrival.next_after(now)
                    if follow is not None:
                        push(follow, _ARRIVAL, tenant)
                device_busy = False
                maybe_dispatch(now)
            else:  # _TIMER
                if armed_timers.get(tenant) is not None:
                    armed_timers.pop(tenant, None)
                maybe_dispatch(now)

        self.requests = requests
        self.batches = batches
        return self._build_report(
            queues, by_tenant, tenant_hist, batches, timeline,
            depth_integral, depth_max, cpu_busy_total, gpu_busy_total,
        )

    # -- report assembly ------------------------------------------------------

    def _horizon_s(self) -> float:
        return max(
            float(getattr(t.arrival, "duration_s", 0.0))
            for t in self._tenants
        )

    def _build_report(
        self, queues, by_tenant, tenant_hist, batches, timeline,
        depth_integral, depth_max, cpu_busy_total, gpu_busy_total,
    ) -> ServingReport:
        horizon = self._horizon_s()
        last_end = max((b.end_s for b in batches), default=0.0)
        makespan = max(horizon, last_end)
        tenant_stats = []
        for spec in self._tenants:
            name = spec.tenant_name
            latencies = [
                r.latency_s for r in by_tenant[name]
                if r.status is RequestStatus.SERVED
            ]
            tenant_stats.append(
                TenantServingStats(
                    name=name,
                    network=spec.network,
                    weight=spec.weight,
                    offered=queues[name].offered,
                    served=len(latencies),
                    shed=queues[name].shed,
                    latency=LatencyStats.from_latencies(latencies),
                    batch_histogram=dict(tenant_hist[name]),
                )
            )
        all_latencies = [
            r.latency_s
            for name in by_tenant
            for r in by_tenant[name]
            if r.status is RequestStatus.SERVED
        ]
        offered = sum(t.offered for t in tenant_stats)
        served = sum(t.served for t in tenant_stats)
        shed = sum(t.shed for t in tenant_stats)
        report = ServingReport(
            device=self._spec.name,
            duration_s=horizon,
            makespan_s=makespan,
            offered=offered,
            served=served,
            shed=shed,
            latency=LatencyStats.from_latencies(all_latencies),
            batch_histogram=merge_histograms(
                [t.batch_histogram for t in tenant_stats]
            ),
            queue_depth_mean=(
                depth_integral / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=depth_max,
            cpu_utilization=(
                min(1.0, cpu_busy_total / makespan) if makespan > 0 else 0.0
            ),
            gpu_utilization=(
                min(1.0, gpu_busy_total / makespan) if makespan > 0 else 0.0
            ),
            tenants=tuple(tenant_stats),
            seed=self._config.seed,
        )
        report.extra["batch_count"] = float(len(batches))
        report.extra["device_busy_s"] = timeline.busy_time(DEVICE)
        self.trace = timeline.trace
        return report


# -- convenience entry points ---------------------------------------------------


def poisson_tenant(
    network: str,
    rate_rps: float,
    duration_s: float,
    *,
    seed: int = 0,
    weight: float = 1.0,
    name: Optional[str] = None,
    policy: Optional[BatchPolicy] = None,
) -> TenantSpec:
    """An open-loop Poisson tenant (the common case)."""
    return TenantSpec(
        network=network,
        arrival=PoissonArrivals(rate_rps, duration_s, seed=seed),
        weight=weight,
        name=name,
        policy=policy,
    )


def simulate(
    tenants: Sequence[TenantSpec],
    device: Union[Device, DeviceSpec, None] = None,
    config: Optional[ServingConfig] = None,
    *,
    obs: Optional[Observability] = None,
) -> ServingReport:
    """Run one serving simulation and return its report."""
    return ServingSimulator(device, tenants, config, obs=obs).run()


def simulate_poisson(
    network: str,
    rate_rps: float,
    duration_s: float,
    device: Union[Device, DeviceSpec, None] = None,
    *,
    seed: int = 0,
    config: Optional[ServingConfig] = None,
    obs: Optional[Observability] = None,
) -> ServingReport:
    """Single-tenant open-loop run (what ``repro serve`` does)."""
    cfg = config or ServingConfig(seed=seed)
    tenant = poisson_tenant(network, rate_rps, duration_s, seed=seed)
    return simulate([tenant], device, cfg, obs=obs)
