"""Virtual-clock inference-serving simulator.

Turns the one-shot EdgeNN engine into a *service*: a discrete-event loop
drives request arrivals (:mod:`repro.workloads.arrivals`) through
per-tenant bounded queues (:mod:`.batcher`), forms dynamic batches, and
executes them one at a time on the simulated device — GPU kernels are
non-preemptive, so the device is a serial batch server; *within* a
batch the CPU and GPU co-run under the shared-bandwidth contention
model exactly as in one-shot mode.

The service time of a batch of size ``b`` comes from the real machinery:
the :class:`~repro.core.engine.EdgeNN` tuner produces a plan *re-tuned
for that batch size* (memoized in the shared
:class:`~repro.core.plan_cache.PlanCache`), and a warm executor
(weights device-resident, the steady state of
:mod:`repro.core.service`) measures it on the
:mod:`repro.sim.timeline` device model.  Dynamic batching therefore
helps exactly as much as the cost model says weight-traffic
amortization is worth — fc-heavy networks batch nearly for free,
conv-heavy ones almost linearly.

A :class:`~repro.faults.FaultScenario` on the config turns the
well-behaved device into a hostile one — thermal-throttle windows,
transient hybrid-kernel failures, memory pressure, malformed payloads —
and ``resilience`` selects how the service responds: deadlines with
timeout abandonment, retry-with-backoff plus a circuit breaker around
execution, zero-copy demotion, and latency-drift-triggered re-tuning
against the throttled device (see ``docs/robustness.md``).

Everything is deterministic: same tenants, seeds, policy, and fault
scenario produce an identical
:class:`~repro.serving.report.ServingReport` (compare digests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compile.backends import AnalyticBackend
from ..compile.pipeline import CompiledPlan
from ..core.engine import EdgeNN, EdgeNNConfig
from ..core.plan_cache import default_plan_cache
from ..errors import ReproError
from ..faults import (
    CircuitBreaker,
    DegradationManager,
    DegradationPolicy,
    FaultInjector,
    FaultScenario,
    MODE_NO_HYBRID,
    RetryPolicy,
)
from ..hardware.device import Device
from ..hardware.specs import JETSON_AGX_XAVIER, DeviceSpec
from ..hardware.throttle import ThrottleFactors, apply_throttle
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from ..obs.metrics import DEFAULT_BUCKETS, SIZE_BUCKETS
from ..obs.timeline import (
    BurnRateRule,
    SloMonitor,
    SloObjective,
    SloReport,
    TimelineArtifact,
    TimelineRecorder,
)
from ..sim.engine import (
    ArrivalSchedule,
    DepthTracker,
    EventEngine,
    EventHeap,
    IndexQueue,
    RequestTable,
)
from ..sim.engine import (
    FAILED as _ST_FAILED,
    SERVED as _ST_SERVED,
    SHED as _ST_SHED,
    TIMED_OUT as _ST_TIMED_OUT,
)
from ..sim.timeline import COPY, CPU, GPU, Timeline
from ..workloads.arrivals import ArrivalProcess, PoissonArrivals
from .batcher import _EPS, BatchPolicy
from .report import (
    LatencyStats,
    ServingReport,
    TenantServingStats,
    merge_histograms,
)
from .request import Request
from .scheduler import WeightedFairScheduler

#: Serving-level timeline resource: the whole integrated device, which
#: serves one batch at a time (non-preemptive kernels).
DEVICE = "device"

# Event kinds, in processing order at equal virtual instants: arrivals
# join the queue before a same-instant completion triggers dispatch, and
# wait-expiry timers run last (they only re-check readiness).
_ARRIVAL, _COMPLETION, _TIMER = 0, 1, 2

#: Service-time variants the fault-aware dispatcher can select.
#: Each maps to engine-config flag flips, so every variant is a
#: first-class tuned plan memoized through the shared plan cache.
_KIND_FLAGS: Dict[str, Dict[str, bool]] = {
    "normal": {},
    "no_hybrid": {"use_hybrid_execution": False, "use_intra_kernel": False},
    "no_zerocopy": {"use_memory_management": False},
    "safe": {
        "use_hybrid_execution": False,
        "use_intra_kernel": False,
        "use_memory_management": False,
    },
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a model plus its request stream and fair-share weight."""

    network: str
    arrival: ArrivalProcess
    weight: float = 1.0
    name: Optional[str] = None           # defaults to the network name
    policy: Optional[BatchPolicy] = None  # overrides the run's policy

    @property
    def tenant_name(self) -> str:
        return self.name if self.name is not None else self.network


@dataclass(frozen=True)
class ServingConfig:
    """Run-wide serving knobs."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    precision: Precision = Precision.FP32
    #: engine feature flags for tuning (batch_size is set per dispatch).
    engine: Optional[EdgeNNConfig] = None
    #: charge the cold-start premium (parameter staging) to each
    #: tenant's first batch instead of assuming a pre-warmed service.
    cold_start: bool = False
    #: recorded in the report for replay bookkeeping.
    seed: int = 0
    #: fault scenario to inject (None: the well-behaved device).
    faults: Optional[FaultScenario] = None
    #: enable the resilience layer (retries, breaker, degradation,
    #: payload validation).  Off shows what a naive service suffers.
    resilience: bool = True
    #: retry schedule around hybrid-kernel launches (None: defaults
    #: seeded from ``seed``).
    retry: Optional[RetryPolicy] = None
    #: degradation thresholds (None: defaults).
    degradation: Optional[DegradationPolicy] = None
    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 0.25
    #: timeline window width in virtual seconds (0: recording off).
    #: When on, the run exposes a digest-stable
    #: :class:`~repro.obs.timeline.TimelineArtifact` on the simulator.
    timeline_window_s: float = 0.0
    #: declarative SLO objectives evaluated over the recorded timeline.
    slos: Tuple[SloObjective, ...] = ()
    #: burn-rate alert rule for ``slos`` (None: single/5-window default).
    burn: Optional[BurnRateRule] = None


@dataclass(frozen=True)
class BatchServiceTime:
    """Simulated cost of one batch of a given size."""

    total_s: float
    cpu_busy_s: float
    gpu_busy_s: float
    #: energy drawn over the batch (fleet-level accounting in
    #: :mod:`repro.cluster`; 0.0 for duck-typed test models).
    energy_j: float = 0.0


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch (for the serving trace / debugging)."""

    tenant: str
    size: int
    start_s: float
    end_s: float


class ServiceTimeModel:
    """Warm (and cold) batched service times, memoized per variant.

    Each distinct (network, batch, kind, throttle, retuned) combination
    is tuned through the shared plan cache, so across sweeps and
    tenants every (network, device, batch, precision, flags) pair tunes
    exactly once per process.  ``kind`` selects degraded plan variants
    (hybrid off, zero-copy off) and ``factors``/``retuned`` the
    thermal-throttle execution mode: ``retuned=False`` runs the *stale*
    nominal plan on the throttled device (what a naive service
    suffers), ``retuned=True`` re-tunes against the throttled spec.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        precision: Precision = Precision.FP32,
        engine: Optional[EdgeNNConfig] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self._spec = spec
        self._base = engine or EdgeNNConfig()
        self._precision = precision
        self._obs = obs if obs is not None else NOOP_OBS
        self._warm: Dict[Tuple, BatchServiceTime] = {}
        self._cold: Dict[Tuple[str, int], BatchServiceTime] = {}

    @property
    def base_config(self) -> EdgeNNConfig:
        return self._base

    @property
    def spec(self) -> DeviceSpec:
        return self._spec

    def _config_for(self, batch: int, kind: str) -> EdgeNNConfig:
        try:
            flags = _KIND_FLAGS[kind]
        except KeyError:
            raise ReproError(
                f"unknown service kind {kind!r}; "
                f"expected one of {sorted(_KIND_FLAGS)}"
            ) from None
        return replace(
            self._base, batch_size=batch, precision=self._precision, **flags
        )

    def _engine_for(self, network: str, batch: int) -> EdgeNN:
        return EdgeNN(
            network, self._spec, self._config_for(batch, "normal"),
            obs=self._obs,
        )

    def plan_key(self, network: str, batch: int, kind: str = "normal"):
        """The nominal-device plan-cache key of one service variant
        (what latency-drift degradation invalidates)."""
        from ..core.plan_cache import PlanKey

        return PlanKey.from_config(
            network, self._spec.name, self._config_for(batch, kind)
        )

    def service(
        self,
        network: str,
        batch: int,
        *,
        kind: str = "normal",
        factors: Optional[ThrottleFactors] = None,
        retuned: bool = False,
    ) -> BatchServiceTime:
        """Warm service time of one batch under one execution mode."""
        key = (network, batch, kind, factors, retuned)
        cached = self._warm.get(key)
        if cached is not None:
            return cached
        config = self._config_for(batch, kind)
        if factors is None or factors.is_noop:
            engine = EdgeNN(network, self._spec, config, obs=self._obs)
            compiled = engine.compiled()
        elif retuned:
            throttled = apply_throttle(self._spec, factors)
            engine = EdgeNN(network, throttled, config, obs=self._obs)
            compiled = engine.compiled()
        else:
            # Stale plan on the throttled device: keep the placement the
            # tuner chose for the *nominal* operating point, but execute
            # it at the throttled rates.
            engine = EdgeNN(network, self._spec, config, obs=self._obs)
            nominal = engine.compiled()
            compiled = CompiledPlan(
                graph=nominal.graph,
                device=Device(apply_throttle(self._spec, factors)),
                artifact=nominal.artifact,
            )
        report = AnalyticBackend(warm_weights=True).execute(
            compiled, obs=self._obs
        )
        svc = BatchServiceTime(
            total_s=report.total_s,
            cpu_busy_s=report.cpu_busy_s,
            gpu_busy_s=report.gpu_busy_s,
            energy_j=report.energy.energy_j,
        )
        self._warm[key] = svc
        return svc

    def warm(self, network: str, batch: int) -> BatchServiceTime:
        return self.service(network, batch)

    def warm_times(
        self, networks: Sequence[str], sizes: Sequence[int]
    ) -> "np.ndarray":
        """Warm total seconds for whole (network, size) vectors at once.

        Built on the batched :func:`repro.core.executor.service_times`
        entry: each distinct pair tunes once (first-occurrence order,
        so plan-cache traffic stays deterministic) and the result comes
        back as one float64 array — the epoch-oriented counterpart of
        per-dispatch :meth:`warm` calls.
        """
        from ..core.executor import service_times

        return service_times(
            lambda network, size: self.warm(network, size).total_s,
            networks,
            sizes,
        )

    def cold(self, network: str, batch: int) -> BatchServiceTime:
        """First-batch cost: weights still have to reach the GPU."""
        key = (network, batch)
        if key not in self._cold:
            engine = self._engine_for(network, batch)
            report = engine.run()
            self._cold[key] = BatchServiceTime(
                total_s=report.total_s,
                cpu_busy_s=report.cpu_busy_s,
                gpu_busy_s=report.gpu_busy_s,
                energy_j=report.energy.energy_j,
            )
        return self._cold[key]


class ServingSimulator:
    """Discrete-event loop over one device and one or more tenants."""

    def __init__(
        self,
        device: Union[Device, DeviceSpec, None],
        tenants: Sequence[TenantSpec],
        config: Optional[ServingConfig] = None,
        *,
        service_model: Optional[ServiceTimeModel] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if not tenants:
            raise ReproError("serving needs at least one tenant")
        if device is None:
            device = JETSON_AGX_XAVIER
        self._spec = device.spec if isinstance(device, Device) else device
        self._config = config or ServingConfig()
        self._obs = obs if obs is not None else NOOP_OBS
        self._tenants = tuple(tenants)
        names = [t.tenant_name for t in self._tenants]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate tenant names: {names}")
        self._model = service_model or ServiceTimeModel(
            self._spec, self._config.precision, self._config.engine,
            obs=self._obs,
        )
        self._names = names
        #: struct-of-arrays request state of the last :meth:`run`;
        #: :attr:`requests` materializes legacy objects lazily from it.
        self._table: Optional[RequestTable] = None
        self._requests: Optional[List[Request]] = None
        #: batch records of the last :meth:`run`, kept for the unified
        #: Chrome-trace export (:mod:`repro.obs.export`).
        self.batches: List[BatchRecord] = []
        #: fault machinery of the last run (None without a scenario).
        self.injector: Optional[FaultInjector] = None
        self.breaker: Optional[CircuitBreaker] = None
        self.degradation: Optional[DegradationManager] = None
        #: windowed telemetry of the last run (None unless
        #: ``config.timeline_window_s`` > 0).
        self.timeline: Optional[TimelineArtifact] = None
        #: recorder calls the last run made, total and by hook
        #: name (feeds the analytic overhead bench).
        self.timeline_ops: int = 0
        self.timeline_op_counts: Dict[str, int] = {}
        #: SLO evaluation of the last run (None unless ``config.slos``).
        self.slo_report: Optional[SloReport] = None

    @property
    def requests(self) -> List[Request]:
        """Request objects of the last :meth:`run`.

        Materialized lazily from the engine's request table — only the
        Chrome-trace export and the CLI walk individual requests, so
        the hot loop never builds them.
        """
        if self._requests is None:
            if self._table is None:
                return []
            self._requests = self._table.materialize(self._names)
        return self._requests

    # -- the event loop -------------------------------------------------------

    def run(self) -> ServingReport:
        """Run the simulation; returns the :class:`ServingReport`.

        Plan-cache traffic caused by this run (service-time tuning per
        distinct batch size) is exposed on the report as
        ``plan_cache_hits`` / ``plan_cache_misses``.
        """
        obs = self._obs
        cache = default_plan_cache()
        hits_before, misses_before = cache.hits, cache.misses
        if not obs.enabled:
            report = self._run()
        else:
            with obs.tracer.span(
                "serve", category="serve", device=self._spec.name,
                tenants=",".join(t.tenant_name for t in self._tenants),
            ) as span:
                report = self._run()
                span.set_times(0.0, report.makespan_s)
                span.set_attributes(
                    offered=report.offered, served=report.served,
                    shed=report.shed,
                )
        report.plan_cache_hits = cache.hits - hits_before
        report.plan_cache_misses = cache.misses - misses_before
        return report

    def _run(self) -> ServingReport:
        cfg = self._config
        obs = self._obs
        if obs.enabled:
            requests_total = obs.metrics.counter(
                "repro_serving_requests_total",
                "Requests by tenant and outcome",
                labels=("tenant", "outcome"),
            )
            batches_total = obs.metrics.counter(
                "repro_serving_batches_total",
                "Batches dispatched per tenant", labels=("tenant",),
            )
            batch_size_hist = obs.metrics.histogram(
                "repro_serving_batch_size",
                "Dispatched batch sizes", buckets=SIZE_BUCKETS,
            )
            latency_hist = obs.metrics.histogram(
                "repro_serving_request_latency_seconds",
                "End-to-end served-request latency",
                labels=("tenant",), buckets=DEFAULT_BUCKETS,
            )
            depth_gauge = obs.metrics.gauge(
                "repro_serving_queue_depth",
                "Admitted requests waiting across all tenant queues",
            )
        # One merged arrival epoch (whole numpy arrays per tenant) and
        # a struct-of-arrays request table sized for it up front.
        schedule = ArrivalSchedule(
            [t.arrival.as_arrays() for t in self._tenants]
        )
        table = RequestTable(len(schedule.times))
        names = self._names
        iqueues: List[IndexQueue] = []
        specs: Dict[str, TenantSpec] = {}
        for spec in self._tenants:
            name = spec.tenant_name
            iqueues.append(
                IndexQueue(name, spec.policy or cfg.policy, table)
            )
            specs[name] = spec
        index_of = {n: k for k, n in enumerate(names)}
        scheduler = WeightedFairScheduler(
            {t.tenant_name: t.weight for t in self._tenants}
        )
        timeline = Timeline((DEVICE, CPU, GPU, COPY))

        # Windowed telemetry recorder (None: every hook is one identity
        # check on the hot path, covered by the obs-overhead guard).
        tl: Optional[TimelineRecorder] = None
        if cfg.timeline_window_s > 0.0:
            tl = TimelineRecorder(
                cfg.timeline_window_s,
                source=f"serve:{self._spec.name}",
                meta={
                    "seed": str(cfg.seed),
                    "tenants": ",".join(sorted(names)),
                },
            )

        # -- fault machinery (None when no scenario: zero-cost checks) --------
        faults = cfg.faults
        injector: Optional[FaultInjector] = None
        breaker: Optional[CircuitBreaker] = None
        degradation: Optional[DegradationManager] = None
        retry = cfg.retry or RetryPolicy(seed=cfg.seed)
        if faults is not None:
            injector = FaultInjector(faults, seed=cfg.seed, obs=obs)
            breaker = CircuitBreaker(
                failure_threshold=cfg.breaker_failure_threshold,
                reset_timeout_s=cfg.breaker_reset_s,
            )
            degradation = DegradationManager(cfg.degradation, obs=obs)
        self.injector = injector
        self.breaker = breaker
        self.degradation = degradation
        # Duck-typed service models (tests) may not expose base_config.
        base_cfg = getattr(self._model, "base_config", None)
        hybrid_base = (
            base_cfg.use_hybrid_execution if base_cfg is not None else True
        )
        memory_base = (
            base_cfg.use_memory_management if base_cfg is not None else True
        )
        noted_thermal: Optional[float] = None   # active window start
        noted_pressure: Optional[float] = None
        demoted_windows: set = set()
        retries = 0
        exhaustions = 0

        heap = EventHeap()
        engine = EventEngine(schedule, heap)

        batches: List[BatchRecord] = []
        tenant_hist: Dict[str, Dict[int, int]] = {n: {} for n in names}
        #: the single batch on the device: (owner, rows, batch_failed).
        in_flight: Optional[Tuple[int, np.ndarray, bool]] = None
        warmed: Dict[str, bool] = {n: not cfg.cold_start for n in names}
        armed_timers: Dict[str, float] = {}
        late_counts: Dict[str, int] = {n: 0 for n in names}
        failed_counts: Dict[str, int] = {n: 0 for n in names}
        dispatch_seq = 0

        device_busy = False
        cpu_busy_total = 0.0
        gpu_busy_total = 0.0

        # Time-weighted queue-depth accounting.
        tracker = DepthTracker()

        #: tenants whose arrival process reacts to completions (closed
        #: loop); open-loop follow-ups are provably no-ops and skipped.
        has_followup = [
            type(t.arrival).next_after is not ArrivalProcess.next_after
            for t in self._tenants
        ]

        def followup(owner: int, now: float) -> None:
            """Closed-loop clients re-arm after any terminal outcome."""
            follow = self._tenants[owner].arrival.next_after(now)
            if follow is not None:
                schedule.push(follow, owner)

        def note_windows(now: float) -> None:
            """Record thermal / memory-pressure window edges once."""
            nonlocal noted_thermal, noted_pressure
            thermal = faults.thermal_at(now)
            start = thermal.start_s if thermal is not None else None
            if start != noted_thermal:
                if noted_thermal is not None:
                    for w in faults.thermal:
                        if w.start_s == noted_thermal:
                            injector.note_thermal_exit(now, w)
                if thermal is not None:
                    injector.note_thermal_enter(now, thermal)
                noted_thermal = start
            pressure = faults.memory_pressure_at(now)
            pstart = pressure.start_s if pressure is not None else None
            if pstart != noted_pressure:
                if noted_pressure is not None:
                    for w in faults.memory_pressure:
                        if w.start_s == noted_pressure:
                            injector.note_memory_pressure_exit(now, w)
                if pressure is not None:
                    injector.note_memory_pressure_enter(now, pressure)
                noted_pressure = pstart

        def expire_queues(now: float) -> None:
            for k, queue in enumerate(iqueues):
                expired = queue.expire(now)
                if not expired:
                    continue
                tracker.remove(expired)
                if tl is not None:
                    tl.record_timed_out(now, expired)
                if obs.enabled:
                    for _ in range(expired):
                        requests_total.labels(
                            tenant=queue.name, outcome="timed_out"
                        ).inc()
                    depth_gauge.set(tracker.depth)
                if has_followup[k]:
                    for _ in range(expired):
                        followup(k, now)

        def batch_service(
            tenant: str, size: int, now: float
        ) -> Tuple[BatchServiceTime, float, bool]:
            """Pick the service variant for one dispatch under faults.

            Returns (service time, extra pre-service delay from retry
            backoff, batch_failed).
            """
            nonlocal retries, exhaustions
            network = specs[tenant].network
            if faults is None:
                return self._model.warm(network, size), 0.0, False
            factors = injector.throttle_at(now)
            pressure = injector.memory_pressure_at(now)
            resilient = cfg.resilience

            # Memory pressure, naive service: zero-copy allocation
            # fails outright — fail fast, batch lost before any work.
            if pressure and memory_base and not resilient:
                return BatchServiceTime(0.0, 0.0, 0.0), 0.0, True

            # Execution-mode selection (degraded plan variants).
            no_hybrid = (
                resilient
                and degradation.mode(tenant) == MODE_NO_HYBRID
            )
            demote = pressure and memory_base and resilient
            if demote:
                window = faults.memory_pressure_at(now)
                wkey = (tenant, window.start_s)
                if wkey not in demoted_windows:
                    demoted_windows.add(wkey)
                    degradation.note_memory_demotion(
                        tenant, network, now=now
                    )
            if no_hybrid and demote:
                kind = "safe"
            elif no_hybrid:
                kind = "no_hybrid"
            elif demote:
                kind = "no_zerocopy"
            else:
                kind = "normal"

            # Thermal throttling: naive service runs the stale nominal
            # plan at throttled rates; the resilient one does too until
            # sustained latency drift triggers re-tuning against the
            # throttled spec (plan-cache entry invalidated).
            retuned = False
            if factors is not None and resilient:
                if degradation.retuned(tenant):
                    retuned = True
                else:
                    stale = self._model.service(
                        network, size, kind=kind, factors=factors,
                    )
                    predicted = self._model.service(
                        network, size, kind=kind
                    )
                    if degradation.observe_latency(
                        tenant, network, now=now,
                        observed_s=stale.total_s,
                        predicted_s=predicted.total_s,
                    ):
                        default_plan_cache().invalidate(
                            self._model.plan_key(network, size, kind)
                        )
                        retuned = True
            elif factors is None and resilient and degradation.retuned(
                tenant
            ):
                degradation.clear_drift(tenant, network, now=now)

            svc = self._model.service(
                network, size, kind=kind, factors=factors, retuned=retuned,
            )

            # Transient hybrid-kernel launch failures.
            hybrid_active = (
                hybrid_base
                and kind in ("normal", "no_zerocopy")
                and faults.kernel_failure_p > 0.0
            )
            if not hybrid_active:
                return svc, 0.0, False
            if not resilient:
                failed = injector.kernel_fails(
                    now, detail=f"{tenant}#{dispatch_seq}"
                )
                # The failure surfaces mid-run: the device time is
                # consumed either way, the responses are lost.
                return svc, 0.0, failed
            if not breaker.allow(now):
                # Circuit open: skip the hybrid launch entirely and run
                # the safe plan until the breaker half-opens.
                fallback = "safe" if kind == "no_zerocopy" else "no_hybrid"
                svc = self._model.service(
                    network, size, kind=fallback,
                    factors=factors, retuned=retuned,
                )
                return svc, 0.0, False
            delay = 0.0
            for attempt in range(retry.max_attempts):
                fails = injector.kernel_fails(
                    now, detail=f"{tenant}#{dispatch_seq}:a{attempt}"
                )
                if not fails:
                    breaker.record_success(now)
                    if attempt > 0 and obs.enabled:
                        obs.metrics.counter(
                            "repro_resilience_retries_total",
                            "Hybrid-kernel launch retries",
                            labels=("tenant",),
                        ).labels(tenant=tenant).inc(attempt)
                    retries += attempt
                    return svc, delay, False
                if attempt < retry.max_attempts - 1:
                    delay += retry.delay(attempt, token=dispatch_seq)
            # All attempts failed: trip the breaker, fall back to the
            # safe non-hybrid plan (responses still produced, slower).
            retries += retry.max_attempts - 1
            exhaustions += 1
            breaker.record_failure(now)
            degradation.note_hybrid_exhausted(tenant, network, now=now)
            fallback = "safe" if kind == "no_zerocopy" else "no_hybrid"
            svc = self._model.service(
                network, size, kind=fallback, factors=factors,
                retuned=retuned,
            )
            return svc, delay, False

        def maybe_dispatch(now: float) -> None:
            nonlocal device_busy, cpu_busy_total, gpu_busy_total
            nonlocal dispatch_seq, in_flight
            while not device_busy:
                expire_queues(now)
                ready = [q.name for q in iqueues if q.ready(now)]
                chosen = scheduler.pick(ready)
                if chosen is None:
                    # Nothing dispatchable yet: arm a wait-expiry timer
                    # per tenant still accumulating a batch.
                    for queue in iqueues:
                        deadline = queue.wait_deadline_s()
                        if deadline is None:
                            continue
                        if armed_timers.get(queue.name) == deadline:
                            continue
                        armed_timers[queue.name] = deadline
                        heap.push(max(deadline, now), _TIMER, queue.name)
                    return
                owner = index_of[chosen]
                queue = iqueues[owner]
                rows = queue.take_batch(now)
                size = len(rows)
                tracker.remove(size)
                dispatch_seq += 1
                mode = "warm" if warmed[chosen] else "cold"
                poisoned = bool(table.corrupt[rows].any())
                if warmed[chosen]:
                    svc, delay, failed = batch_service(chosen, size, now)
                else:
                    svc = self._model.cold(specs[chosen].network, size)
                    delay, failed = 0.0, False
                    warmed[chosen] = True
                if poisoned:
                    # A malformed payload in the batch kills the whole
                    # launch (the naive service admitted it unchecked);
                    # the device time is still consumed.
                    failed = True
                if failed and svc.total_s == 0.0 and delay == 0.0:
                    # Fail-fast path (allocation failure): the batch is
                    # lost before consuming any device time.
                    table.status[rows] = _ST_FAILED
                    table.finish_s[rows] = now
                    failed_counts[chosen] += size
                    if obs.enabled:
                        for _ in range(size):
                            requests_total.labels(
                                tenant=chosen, outcome="failed"
                            ).inc()
                    if has_followup[owner]:
                        for _ in range(size):
                            followup(owner, now)
                    tenant_hist[chosen][size] = (
                        tenant_hist[chosen].get(size, 0) + 1
                    )
                    if tl is not None:
                        tl.record_failed(now, size, from_queue=True)
                    continue
                device_busy = True
                total = delay + svc.total_s
                scheduler.charge(chosen, total)
                cpu_busy_total += svc.cpu_busy_s
                gpu_busy_total += svc.gpu_busy_s
                end = now + total
                label = f"{chosen}:batch(n={size})"
                timeline.schedule(DEVICE, total, label, not_before=now)
                timeline.schedule(
                    CPU, svc.cpu_busy_s, label,
                    not_before=now + delay, category="kernel",
                )
                timeline.schedule(
                    GPU, svc.gpu_busy_s, label,
                    not_before=now + delay, category="kernel",
                )
                batches.append(
                    BatchRecord(
                        tenant=chosen, size=size, start_s=now, end_s=end
                    )
                )
                if tl is not None:
                    tl.record_batch(
                        now, end, size,
                        busy=(
                            ("cpu", svc.cpu_busy_s),
                            ("gpu", svc.gpu_busy_s),
                        ),
                        energy_j=svc.energy_j,
                    )
                if obs.enabled:
                    obs.tracer.record(
                        label, now, end, category="batch",
                        tenant=chosen, size=size, mode=mode,
                    )
                    batches_total.labels(tenant=chosen).inc()
                    batch_size_hist.observe(size)
                    depth_gauge.set(tracker.depth)
                tenant_hist[chosen][size] = (
                    tenant_hist[chosen].get(size, 0) + 1
                )
                in_flight = (owner, rows, failed)
                heap.push(end, _COMPLETION, chosen)
                return

        def on_arrival(now: float, owner: int) -> None:
            """Exact per-arrival path (the legacy scalar semantics)."""
            tracker.advance(now)
            if faults is not None:
                note_windows(now)
            queue = iqueues[owner]
            name = queue.name
            idx = table.append(now, owner)
            if tl is not None:
                tl.record_offered(now)
            if faults is not None and injector.payload_corrupt(
                now, request_id=idx
            ):
                if cfg.resilience:
                    # Request validation catches the malformed
                    # payload at the door: reject, don't queue.
                    queue.reject(idx)
                    table.finish_s[idx] = now
                    if tl is not None:
                        tl.record_rejected(now)
                    if obs.enabled:
                        requests_total.labels(
                            tenant=name, outcome="rejected"
                        ).inc()
                    followup(owner, now)
                    maybe_dispatch(now)
                    return
                table.corrupt[idx] = True
            if queue.offer(idx, now):
                tracker.admit()
                if obs.enabled:
                    depth_gauge.set(tracker.depth)
            else:
                # Shed: the client sees an immediate rejection; a
                # closed-loop client thinks, then retries.
                table.finish_s[idx] = now
                if tl is not None:
                    tl.record_shed(now)
                if obs.enabled:
                    requests_total.labels(
                        tenant=name, outcome="shed"
                    ).inc()
                followup(owner, now)
            maybe_dispatch(now)

        def on_arrivals(times: np.ndarray, owners: np.ndarray) -> None:
            """Bulk admission: a whole busy-device arrival span at once.

            Only reachable when the device is busy, no faults are
            active, per-request metrics are off, and every tenant is
            open loop — conditions under which the scalar path reduces
            to admit-or-shed plus depth accounting, all vectorizable.
            """
            start = table.append_bulk(times, owners)
            if tl is not None:
                tl.record_offered_bulk(times)
            total = len(times)
            if len(iqueues) == 1:
                # Single tenant: the span is one FIFO fill — slice
                # writes only, no index gathers.
                queue = iqueues[0]
                queue.offered += total
                room = queue.policy.max_queue_depth - len(queue)
                take_n = min(total, room) if room > 0 else 0
                if take_n:
                    queue.admit_span(start, take_n, times[:take_n])
                if take_n < total:
                    table.status[start + take_n:start + total] = _ST_SHED
                    table.finish_s[start + take_n:start + total] = (
                        times[take_n:]
                    )
                    queue.shed += total - take_n
                    if tl is not None:
                        tl.record_shed_bulk(times[take_n:])
                tracker.advance_span(times, take_n)
                return
            admitted = np.zeros(total, dtype=np.int64)
            for k, queue in enumerate(iqueues):
                pos = np.nonzero(owners == k)[0]
                npos = len(pos)
                if not npos:
                    continue
                queue.offered += npos
                room = queue.policy.max_queue_depth - len(queue)
                if room < 0:
                    room = 0
                take = pos[:room]
                over = pos[room:]
                if len(take):
                    queue.admit_bulk(start + take, times[take])
                    admitted[take] = 1
                if len(over):
                    shed_rows = start + over
                    table.status[shed_rows] = _ST_SHED
                    table.finish_s[shed_rows] = times[over]
                    queue.shed += len(over)
                    if tl is not None:
                        tl.record_shed_bulk(times[over])
            tracker.advance_bulk(times, admitted)

        def on_event(now: float, kind: int, payload: object) -> None:
            nonlocal device_busy, in_flight
            tracker.advance(now)
            if faults is not None:
                note_windows(now)
            if kind == _COMPLETION:
                owner, rows, batch_failed = in_flight
                in_flight = None
                name = names[owner]
                n = len(rows)
                table.finish_s[rows] = now
                if batch_failed:
                    table.status[rows] = _ST_FAILED
                    failed_counts[name] += n
                    lats: Optional[List[float]] = None
                    late_n = 0
                    if obs.enabled:
                        for _ in range(n):
                            requests_total.labels(
                                tenant=name, outcome="failed"
                            ).inc()
                else:
                    queue = iqueues[owner]
                    if queue.policy.deadline_s is not None:
                        # Completed, but past deadline: the client
                        # already gave up — late, useless responses.
                        late_mask = now > table.deadline_s[rows] + _EPS
                        late_n = int(late_mask.sum())
                    else:
                        late_n = 0
                    if late_n:
                        served_rows = rows[~late_mask]
                        table.status[rows[late_mask]] = _ST_TIMED_OUT
                        queue.timed_out += late_n
                        late_counts[name] += late_n
                    else:
                        served_rows = rows
                    table.status[served_rows] = _ST_SERVED
                    lats = None
                    if tl is not None:
                        lats = (
                            now - table.arrival_s[served_rows]
                        ).tolist()
                    if obs.enabled:
                        late_list = (
                            late_mask.tolist() if late_n else [False] * n
                        )
                        arrivals = table.arrival_s[rows].tolist()
                        for i in range(n):
                            if late_list[i]:
                                requests_total.labels(
                                    tenant=name, outcome="timed_out"
                                ).inc()
                            else:
                                requests_total.labels(
                                    tenant=name, outcome="served"
                                ).inc()
                                latency_hist.labels(tenant=name).observe(
                                    now - arrivals[i]
                                )
                if has_followup[owner]:
                    for _ in range(n):
                        followup(owner, now)
                if tl is not None and n:
                    if batch_failed:
                        tl.record_failed(now, n)
                    else:
                        if lats:
                            tl.record_served(now, lats)
                        if late_n:
                            tl.record_timed_out(now, late_n, late=True)
                device_busy = False
                maybe_dispatch(now)
            else:  # _TIMER
                if armed_timers.get(payload) is not None:
                    armed_timers.pop(payload, None)
                maybe_dispatch(now)

        # The bulk path is only sound when busy-span arrivals are
        # unobservable one-by-one: no fault injection (per-arrival RNG
        # draws), no per-request metrics, and fully open-loop tenants
        # (no completion-driven follow-up arrivals).
        open_loop = all(
            type(t.arrival).next_after is ArrivalProcess.next_after
            for t in self._tenants
        )
        use_bulk = faults is None and not obs.enabled and open_loop
        engine.run(
            on_arrival=on_arrival,
            on_event=on_event,
            bulk_ready=(lambda: device_busy) if use_bulk else None,
            on_arrivals=on_arrivals if use_bulk else None,
        )

        self._table = table
        self._requests = None
        self.batches = batches
        self.timeline = None
        self.timeline_ops = 0
        self.timeline_op_counts = {}
        self.slo_report = None
        if tl is not None:
            self.timeline_op_counts = tl.op_counts
            self.timeline_ops = tl.ops
            horizon = self._horizon_s()
            last_end = max((b.end_s for b in batches), default=0.0)
            self.timeline = tl.finish(
                horizon_s=horizon,
                makespan_s=max(horizon, last_end),
                capacity={"cpu": 1.0, "gpu": 1.0},
            )
            if cfg.slos:
                monitor = SloMonitor(cfg.slos, cfg.burn)
                self.slo_report = monitor.evaluate(self.timeline)
                monitor.record(self.slo_report, obs)
                # SLO firings reach the same degradation stream the
                # fault triggers use (before the report snapshots it).
                monitor.apply(
                    self.slo_report, degradation,
                    network=",".join(
                        sorted({t.network for t in self._tenants})
                    ),
                )
        return self._build_report(
            iqueues, table, tenant_hist, batches, timeline,
            tracker, cpu_busy_total, gpu_busy_total,
            late_counts, failed_counts, retries, exhaustions,
        )

    # -- report assembly ------------------------------------------------------

    def _horizon_s(self) -> float:
        return max(
            float(getattr(t.arrival, "duration_s", 0.0))
            for t in self._tenants
        )

    def _build_report(
        self, queues, table, tenant_hist, batches, timeline,
        tracker, cpu_busy_total, gpu_busy_total,
        late_counts, failed_counts, retries, exhaustions,
    ) -> ServingReport:
        horizon = self._horizon_s()
        last_end = max((b.end_s for b in batches), default=0.0)
        makespan = max(horizon, last_end)
        n = len(table)
        arrival = table.arrival_s[:n]
        finish = table.finish_s[:n]
        status = table.status[:n]
        owner = table.tenant[:n]
        tenant_stats = []
        all_latencies: List[float] = []
        abandoned: List[float] = []
        for k, spec in enumerate(self._tenants):
            name = spec.tenant_name
            mine = owner == k
            served_mask = mine & (status == _ST_SERVED)
            latencies = (
                finish[served_mask] - arrival[served_mask]
            ).tolist()
            all_latencies.extend(latencies)
            gone = mine & (status == _ST_TIMED_OUT) & ~np.isnan(finish)
            abandoned.extend((finish[gone] - arrival[gone]).tolist())
            queue = queues[k]
            tenant_stats.append(
                TenantServingStats(
                    name=name,
                    network=spec.network,
                    weight=spec.weight,
                    offered=queue.offered,
                    served=len(latencies),
                    shed=queue.shed,
                    timed_out=queue.timed_out,
                    failed=failed_counts[name],
                    rejected=queue.rejected,
                    latency=LatencyStats.from_latencies(latencies),
                    batch_histogram=dict(tenant_hist[name]),
                )
            )
        offered = sum(t.offered for t in tenant_stats)
        served = sum(t.served for t in tenant_stats)
        shed = sum(t.shed for t in tenant_stats)
        timed_out = sum(t.timed_out for t in tenant_stats)
        failed = sum(t.failed for t in tenant_stats)
        rejected = sum(t.rejected for t in tenant_stats)
        report = ServingReport(
            device=self._spec.name,
            duration_s=horizon,
            makespan_s=makespan,
            offered=offered,
            served=served,
            shed=shed,
            latency=LatencyStats.from_latencies(all_latencies),
            batch_histogram=merge_histograms(
                [t.batch_histogram for t in tenant_stats]
            ),
            queue_depth_mean=(
                tracker.integral_s / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=tracker.depth_max,
            cpu_utilization=(
                min(1.0, cpu_busy_total / makespan) if makespan > 0 else 0.0
            ),
            gpu_utilization=(
                min(1.0, gpu_busy_total / makespan) if makespan > 0 else 0.0
            ),
            tenants=tuple(tenant_stats),
            seed=self._config.seed,
            timed_out=timed_out,
            late=sum(late_counts.values()),
            failed=failed,
            rejected=rejected,
            abandoned_latency=LatencyStats.from_latencies(abandoned),
        )
        report.extra["batch_count"] = float(len(batches))
        report.extra["device_busy_s"] = timeline.busy_time(DEVICE)
        if self.injector is not None:
            report.extra["fault_events"] = float(len(self.injector.events))
            report.extra["retries"] = float(retries)
            report.extra["hybrid_exhaustions"] = float(exhaustions)
            report.extra["breaker_opens"] = float(
                self.breaker.stats.opens if self.breaker else 0
            )
            report.extra["degradations"] = float(
                len(self.degradation.records) if self.degradation else 0
            )
        self.trace = timeline.trace
        return report


# -- convenience entry points ---------------------------------------------------


def poisson_tenant(
    network: str,
    rate_rps: float,
    duration_s: float,
    *,
    seed: int = 0,
    weight: float = 1.0,
    name: Optional[str] = None,
    policy: Optional[BatchPolicy] = None,
) -> TenantSpec:
    """An open-loop Poisson tenant (the common case)."""
    return TenantSpec(
        network=network,
        arrival=PoissonArrivals(rate_rps, duration_s, seed=seed),
        weight=weight,
        name=name,
        policy=policy,
    )


def simulate(
    tenants: Sequence[TenantSpec],
    device: Union[Device, DeviceSpec, None] = None,
    config: Optional[ServingConfig] = None,
    *,
    obs: Optional[Observability] = None,
) -> ServingReport:
    """Run one serving simulation and return its report."""
    return ServingSimulator(device, tenants, config, obs=obs).run()


def simulate_poisson(
    network: str,
    rate_rps: float,
    duration_s: float,
    device: Union[Device, DeviceSpec, None] = None,
    *,
    seed: int = 0,
    config: Optional[ServingConfig] = None,
    obs: Optional[Observability] = None,
) -> ServingReport:
    """Single-tenant open-loop run (what ``repro serve`` does)."""
    cfg = config or ServingConfig(seed=seed)
    tenant = poisson_tenant(network, rate_rps, duration_s, seed=seed)
    return simulate([tenant], device, cfg, obs=obs)
