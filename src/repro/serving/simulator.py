"""Virtual-clock inference-serving simulator.

Turns the one-shot EdgeNN engine into a *service*: a discrete-event loop
drives request arrivals (:mod:`repro.workloads.arrivals`) through
per-tenant bounded queues (:mod:`.batcher`), forms dynamic batches, and
executes them one at a time on the simulated device — GPU kernels are
non-preemptive, so the device is a serial batch server; *within* a
batch the CPU and GPU co-run under the shared-bandwidth contention
model exactly as in one-shot mode.

The service time of a batch of size ``b`` comes from the real machinery:
the :class:`~repro.core.engine.EdgeNN` tuner produces a plan *re-tuned
for that batch size* (memoized in the shared
:class:`~repro.core.plan_cache.PlanCache`), and a warm executor
(weights device-resident, the steady state of
:mod:`repro.core.service`) measures it on the
:mod:`repro.sim.timeline` device model.  Dynamic batching therefore
helps exactly as much as the cost model says weight-traffic
amortization is worth — fc-heavy networks batch nearly for free,
conv-heavy ones almost linearly.

A :class:`~repro.faults.FaultScenario` on the config turns the
well-behaved device into a hostile one — thermal-throttle windows,
transient hybrid-kernel failures, memory pressure, malformed payloads —
and ``resilience`` selects how the service responds: deadlines with
timeout abandonment, retry-with-backoff plus a circuit breaker around
execution, zero-copy demotion, and latency-drift-triggered re-tuning
against the throttled device (see ``docs/robustness.md``).

Everything is deterministic: same tenants, seeds, policy, and fault
scenario produce an identical
:class:`~repro.serving.report.ServingReport` (compare digests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..compile.backends import AnalyticBackend
from ..compile.pipeline import CompiledPlan
from ..core.engine import EdgeNN, EdgeNNConfig
from ..core.plan_cache import default_plan_cache
from ..errors import ReproError
from ..faults import (
    CircuitBreaker,
    DegradationManager,
    DegradationPolicy,
    FaultInjector,
    FaultScenario,
    MODE_NO_HYBRID,
    RetryPolicy,
)
from ..hardware.device import Device
from ..hardware.specs import JETSON_AGX_XAVIER, DeviceSpec
from ..hardware.throttle import ThrottleFactors, apply_throttle
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from ..obs.metrics import DEFAULT_BUCKETS, SIZE_BUCKETS
from ..obs.timeline import (
    BurnRateRule,
    SloMonitor,
    SloObjective,
    SloReport,
    TimelineArtifact,
    TimelineRecorder,
)
from ..sim.timeline import COPY, CPU, GPU, Timeline
from ..workloads.arrivals import ArrivalProcess, PoissonArrivals
from .batcher import _EPS, BatchPolicy, TenantQueue
from .report import (
    LatencyStats,
    ServingReport,
    TenantServingStats,
    merge_histograms,
)
from .request import Request, RequestStatus
from .scheduler import WeightedFairScheduler

#: Serving-level timeline resource: the whole integrated device, which
#: serves one batch at a time (non-preemptive kernels).
DEVICE = "device"

# Event kinds, in processing order at equal virtual instants: arrivals
# join the queue before a same-instant completion triggers dispatch, and
# wait-expiry timers run last (they only re-check readiness).
_ARRIVAL, _COMPLETION, _TIMER = 0, 1, 2

#: Service-time variants the fault-aware dispatcher can select.
#: Each maps to engine-config flag flips, so every variant is a
#: first-class tuned plan memoized through the shared plan cache.
_KIND_FLAGS: Dict[str, Dict[str, bool]] = {
    "normal": {},
    "no_hybrid": {"use_hybrid_execution": False, "use_intra_kernel": False},
    "no_zerocopy": {"use_memory_management": False},
    "safe": {
        "use_hybrid_execution": False,
        "use_intra_kernel": False,
        "use_memory_management": False,
    },
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a model plus its request stream and fair-share weight."""

    network: str
    arrival: ArrivalProcess
    weight: float = 1.0
    name: Optional[str] = None           # defaults to the network name
    policy: Optional[BatchPolicy] = None  # overrides the run's policy

    @property
    def tenant_name(self) -> str:
        return self.name if self.name is not None else self.network


@dataclass(frozen=True)
class ServingConfig:
    """Run-wide serving knobs."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    precision: Precision = Precision.FP32
    #: engine feature flags for tuning (batch_size is set per dispatch).
    engine: Optional[EdgeNNConfig] = None
    #: charge the cold-start premium (parameter staging) to each
    #: tenant's first batch instead of assuming a pre-warmed service.
    cold_start: bool = False
    #: recorded in the report for replay bookkeeping.
    seed: int = 0
    #: fault scenario to inject (None: the well-behaved device).
    faults: Optional[FaultScenario] = None
    #: enable the resilience layer (retries, breaker, degradation,
    #: payload validation).  Off shows what a naive service suffers.
    resilience: bool = True
    #: retry schedule around hybrid-kernel launches (None: defaults
    #: seeded from ``seed``).
    retry: Optional[RetryPolicy] = None
    #: degradation thresholds (None: defaults).
    degradation: Optional[DegradationPolicy] = None
    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 0.25
    #: timeline window width in virtual seconds (0: recording off).
    #: When on, the run exposes a digest-stable
    #: :class:`~repro.obs.timeline.TimelineArtifact` on the simulator.
    timeline_window_s: float = 0.0
    #: declarative SLO objectives evaluated over the recorded timeline.
    slos: Tuple[SloObjective, ...] = ()
    #: burn-rate alert rule for ``slos`` (None: single/5-window default).
    burn: Optional[BurnRateRule] = None


@dataclass(frozen=True)
class BatchServiceTime:
    """Simulated cost of one batch of a given size."""

    total_s: float
    cpu_busy_s: float
    gpu_busy_s: float
    #: energy drawn over the batch (fleet-level accounting in
    #: :mod:`repro.cluster`; 0.0 for duck-typed test models).
    energy_j: float = 0.0


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch (for the serving trace / debugging)."""

    tenant: str
    size: int
    start_s: float
    end_s: float


class ServiceTimeModel:
    """Warm (and cold) batched service times, memoized per variant.

    Each distinct (network, batch, kind, throttle, retuned) combination
    is tuned through the shared plan cache, so across sweeps and
    tenants every (network, device, batch, precision, flags) pair tunes
    exactly once per process.  ``kind`` selects degraded plan variants
    (hybrid off, zero-copy off) and ``factors``/``retuned`` the
    thermal-throttle execution mode: ``retuned=False`` runs the *stale*
    nominal plan on the throttled device (what a naive service
    suffers), ``retuned=True`` re-tunes against the throttled spec.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        precision: Precision = Precision.FP32,
        engine: Optional[EdgeNNConfig] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self._spec = spec
        self._base = engine or EdgeNNConfig()
        self._precision = precision
        self._obs = obs if obs is not None else NOOP_OBS
        self._warm: Dict[Tuple, BatchServiceTime] = {}
        self._cold: Dict[Tuple[str, int], BatchServiceTime] = {}

    @property
    def base_config(self) -> EdgeNNConfig:
        return self._base

    @property
    def spec(self) -> DeviceSpec:
        return self._spec

    def _config_for(self, batch: int, kind: str) -> EdgeNNConfig:
        try:
            flags = _KIND_FLAGS[kind]
        except KeyError:
            raise ReproError(
                f"unknown service kind {kind!r}; "
                f"expected one of {sorted(_KIND_FLAGS)}"
            ) from None
        return replace(
            self._base, batch_size=batch, precision=self._precision, **flags
        )

    def _engine_for(self, network: str, batch: int) -> EdgeNN:
        return EdgeNN(
            network, self._spec, self._config_for(batch, "normal"),
            obs=self._obs,
        )

    def plan_key(self, network: str, batch: int, kind: str = "normal"):
        """The nominal-device plan-cache key of one service variant
        (what latency-drift degradation invalidates)."""
        from ..core.plan_cache import PlanKey

        return PlanKey.from_config(
            network, self._spec.name, self._config_for(batch, kind)
        )

    def service(
        self,
        network: str,
        batch: int,
        *,
        kind: str = "normal",
        factors: Optional[ThrottleFactors] = None,
        retuned: bool = False,
    ) -> BatchServiceTime:
        """Warm service time of one batch under one execution mode."""
        key = (network, batch, kind, factors, retuned)
        cached = self._warm.get(key)
        if cached is not None:
            return cached
        config = self._config_for(batch, kind)
        if factors is None or factors.is_noop:
            engine = EdgeNN(network, self._spec, config, obs=self._obs)
            compiled = engine.compiled()
        elif retuned:
            throttled = apply_throttle(self._spec, factors)
            engine = EdgeNN(network, throttled, config, obs=self._obs)
            compiled = engine.compiled()
        else:
            # Stale plan on the throttled device: keep the placement the
            # tuner chose for the *nominal* operating point, but execute
            # it at the throttled rates.
            engine = EdgeNN(network, self._spec, config, obs=self._obs)
            nominal = engine.compiled()
            compiled = CompiledPlan(
                graph=nominal.graph,
                device=Device(apply_throttle(self._spec, factors)),
                artifact=nominal.artifact,
            )
        report = AnalyticBackend(warm_weights=True).execute(
            compiled, obs=self._obs
        )
        svc = BatchServiceTime(
            total_s=report.total_s,
            cpu_busy_s=report.cpu_busy_s,
            gpu_busy_s=report.gpu_busy_s,
            energy_j=report.energy.energy_j,
        )
        self._warm[key] = svc
        return svc

    def warm(self, network: str, batch: int) -> BatchServiceTime:
        return self.service(network, batch)

    def cold(self, network: str, batch: int) -> BatchServiceTime:
        """First-batch cost: weights still have to reach the GPU."""
        key = (network, batch)
        if key not in self._cold:
            engine = self._engine_for(network, batch)
            report = engine.run()
            self._cold[key] = BatchServiceTime(
                total_s=report.total_s,
                cpu_busy_s=report.cpu_busy_s,
                gpu_busy_s=report.gpu_busy_s,
                energy_j=report.energy.energy_j,
            )
        return self._cold[key]


class ServingSimulator:
    """Discrete-event loop over one device and one or more tenants."""

    def __init__(
        self,
        device: Union[Device, DeviceSpec, None],
        tenants: Sequence[TenantSpec],
        config: Optional[ServingConfig] = None,
        *,
        service_model: Optional[ServiceTimeModel] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if not tenants:
            raise ReproError("serving needs at least one tenant")
        if device is None:
            device = JETSON_AGX_XAVIER
        self._spec = device.spec if isinstance(device, Device) else device
        self._config = config or ServingConfig()
        self._obs = obs if obs is not None else NOOP_OBS
        self._tenants = tuple(tenants)
        names = [t.tenant_name for t in self._tenants]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate tenant names: {names}")
        self._model = service_model or ServiceTimeModel(
            self._spec, self._config.precision, self._config.engine,
            obs=self._obs,
        )
        #: request/batch records of the last :meth:`run`, kept for the
        #: unified Chrome-trace export (:mod:`repro.obs.export`).
        self.requests: List[Request] = []
        self.batches: List[BatchRecord] = []
        #: fault machinery of the last run (None without a scenario).
        self.injector: Optional[FaultInjector] = None
        self.breaker: Optional[CircuitBreaker] = None
        self.degradation: Optional[DegradationManager] = None
        #: windowed telemetry of the last run (None unless
        #: ``config.timeline_window_s`` > 0).
        self.timeline: Optional[TimelineArtifact] = None
        #: recorder calls the last run made, total and by hook
        #: name (feeds the analytic overhead bench).
        self.timeline_ops: int = 0
        self.timeline_op_counts: Dict[str, int] = {}
        #: SLO evaluation of the last run (None unless ``config.slos``).
        self.slo_report: Optional[SloReport] = None

    # -- the event loop -------------------------------------------------------

    def run(self) -> ServingReport:
        """Run the simulation; returns the :class:`ServingReport`.

        Plan-cache traffic caused by this run (service-time tuning per
        distinct batch size) is exposed on the report as
        ``plan_cache_hits`` / ``plan_cache_misses``.
        """
        obs = self._obs
        cache = default_plan_cache()
        hits_before, misses_before = cache.hits, cache.misses
        if not obs.enabled:
            report = self._run()
        else:
            with obs.tracer.span(
                "serve", category="serve", device=self._spec.name,
                tenants=",".join(t.tenant_name for t in self._tenants),
            ) as span:
                report = self._run()
                span.set_times(0.0, report.makespan_s)
                span.set_attributes(
                    offered=report.offered, served=report.served,
                    shed=report.shed,
                )
        report.plan_cache_hits = cache.hits - hits_before
        report.plan_cache_misses = cache.misses - misses_before
        return report

    def _run(self) -> ServingReport:
        cfg = self._config
        obs = self._obs
        if obs.enabled:
            requests_total = obs.metrics.counter(
                "repro_serving_requests_total",
                "Requests by tenant and outcome",
                labels=("tenant", "outcome"),
            )
            batches_total = obs.metrics.counter(
                "repro_serving_batches_total",
                "Batches dispatched per tenant", labels=("tenant",),
            )
            batch_size_hist = obs.metrics.histogram(
                "repro_serving_batch_size",
                "Dispatched batch sizes", buckets=SIZE_BUCKETS,
            )
            latency_hist = obs.metrics.histogram(
                "repro_serving_request_latency_seconds",
                "End-to-end served-request latency",
                labels=("tenant",), buckets=DEFAULT_BUCKETS,
            )
            depth_gauge = obs.metrics.gauge(
                "repro_serving_queue_depth",
                "Admitted requests waiting across all tenant queues",
            )
        queues: Dict[str, TenantQueue] = {}
        specs: Dict[str, TenantSpec] = {}
        for spec in self._tenants:
            name = spec.tenant_name
            queues[name] = TenantQueue(name, spec.policy or cfg.policy)
            specs[name] = spec
        scheduler = WeightedFairScheduler(
            {t.tenant_name: t.weight for t in self._tenants}
        )
        timeline = Timeline((DEVICE, CPU, GPU, COPY))

        # Windowed telemetry recorder (None: every hook is one identity
        # check on the hot path, covered by the obs-overhead guard).
        tl: Optional[TimelineRecorder] = None
        if cfg.timeline_window_s > 0.0:
            tl = TimelineRecorder(
                cfg.timeline_window_s,
                source=f"serve:{self._spec.name}",
                meta={
                    "seed": str(cfg.seed),
                    "tenants": ",".join(sorted(queues)),
                },
            )

        # -- fault machinery (None when no scenario: zero-cost checks) --------
        faults = cfg.faults
        injector: Optional[FaultInjector] = None
        breaker: Optional[CircuitBreaker] = None
        degradation: Optional[DegradationManager] = None
        retry = cfg.retry or RetryPolicy(seed=cfg.seed)
        if faults is not None:
            injector = FaultInjector(faults, seed=cfg.seed, obs=obs)
            breaker = CircuitBreaker(
                failure_threshold=cfg.breaker_failure_threshold,
                reset_timeout_s=cfg.breaker_reset_s,
            )
            degradation = DegradationManager(cfg.degradation, obs=obs)
        self.injector = injector
        self.breaker = breaker
        self.degradation = degradation
        # Duck-typed service models (tests) may not expose base_config.
        base_cfg = getattr(self._model, "base_config", None)
        hybrid_base = (
            base_cfg.use_hybrid_execution if base_cfg is not None else True
        )
        memory_base = (
            base_cfg.use_memory_management if base_cfg is not None else True
        )
        noted_thermal: Optional[float] = None   # active window start
        noted_pressure: Optional[float] = None
        demoted_windows: set = set()
        retries = 0
        exhaustions = 0

        heap: List[Tuple[float, int, int, str]] = []
        seq = 0

        def push(time_s: float, kind: int, tenant: str) -> None:
            nonlocal seq
            heapq.heappush(heap, (time_s, kind, seq, tenant))
            seq += 1

        for spec in self._tenants:
            for t in spec.arrival.initial_arrivals():
                push(t, _ARRIVAL, spec.tenant_name)

        requests: List[Request] = []
        by_tenant: Dict[str, List[Request]] = {n: [] for n in queues}
        batches: List[BatchRecord] = []
        tenant_hist: Dict[str, Dict[int, int]] = {n: {} for n in queues}
        in_flight: List[Request] = []
        inflight_failed: Dict[str, bool] = {}
        warmed: Dict[str, bool] = {n: not cfg.cold_start for n in queues}
        armed_timers: Dict[str, float] = {}
        late_counts: Dict[str, int] = {n: 0 for n in queues}
        failed_counts: Dict[str, int] = {n: 0 for n in queues}
        dispatch_seq = 0

        device_busy = False
        cpu_busy_total = 0.0
        gpu_busy_total = 0.0
        next_id = 0

        # Time-weighted queue-depth accounting.
        depth = 0
        depth_max = 0
        depth_integral = 0.0
        last_t = 0.0

        def advance(now: float) -> None:
            nonlocal depth_integral, last_t
            if now > last_t:
                depth_integral += depth * (now - last_t)
                last_t = now

        def followup(tenant: str, now: float) -> None:
            """Closed-loop clients re-arm after any terminal outcome."""
            follow = specs[tenant].arrival.next_after(now)
            if follow is not None:
                push(follow, _ARRIVAL, tenant)

        def note_windows(now: float) -> None:
            """Record thermal / memory-pressure window edges once."""
            nonlocal noted_thermal, noted_pressure
            thermal = faults.thermal_at(now)
            start = thermal.start_s if thermal is not None else None
            if start != noted_thermal:
                if noted_thermal is not None:
                    for w in faults.thermal:
                        if w.start_s == noted_thermal:
                            injector.note_thermal_exit(now, w)
                if thermal is not None:
                    injector.note_thermal_enter(now, thermal)
                noted_thermal = start
            pressure = faults.memory_pressure_at(now)
            pstart = pressure.start_s if pressure is not None else None
            if pstart != noted_pressure:
                if noted_pressure is not None:
                    for w in faults.memory_pressure:
                        if w.start_s == noted_pressure:
                            injector.note_memory_pressure_exit(now, w)
                if pressure is not None:
                    injector.note_memory_pressure_enter(now, pressure)
                noted_pressure = pstart

        def expire_queues(now: float) -> None:
            nonlocal depth
            for name, queue in queues.items():
                expired = queue.expire(now)
                if not expired:
                    continue
                depth -= len(expired)
                if tl is not None:
                    tl.record_timed_out(now, len(expired))
                for _request in expired:
                    if obs.enabled:
                        requests_total.labels(
                            tenant=name, outcome="timed_out"
                        ).inc()
                    followup(name, now)
                if obs.enabled:
                    depth_gauge.set(depth)

        def batch_service(
            tenant: str, size: int, now: float
        ) -> Tuple[BatchServiceTime, float, bool]:
            """Pick the service variant for one dispatch under faults.

            Returns (service time, extra pre-service delay from retry
            backoff, batch_failed).
            """
            nonlocal retries, exhaustions
            network = specs[tenant].network
            if faults is None:
                return self._model.warm(network, size), 0.0, False
            factors = injector.throttle_at(now)
            pressure = injector.memory_pressure_at(now)
            resilient = cfg.resilience

            # Memory pressure, naive service: zero-copy allocation
            # fails outright — fail fast, batch lost before any work.
            if pressure and memory_base and not resilient:
                return BatchServiceTime(0.0, 0.0, 0.0), 0.0, True

            # Execution-mode selection (degraded plan variants).
            no_hybrid = (
                resilient
                and degradation.mode(tenant) == MODE_NO_HYBRID
            )
            demote = pressure and memory_base and resilient
            if demote:
                window = faults.memory_pressure_at(now)
                wkey = (tenant, window.start_s)
                if wkey not in demoted_windows:
                    demoted_windows.add(wkey)
                    degradation.note_memory_demotion(
                        tenant, network, now=now
                    )
            if no_hybrid and demote:
                kind = "safe"
            elif no_hybrid:
                kind = "no_hybrid"
            elif demote:
                kind = "no_zerocopy"
            else:
                kind = "normal"

            # Thermal throttling: naive service runs the stale nominal
            # plan at throttled rates; the resilient one does too until
            # sustained latency drift triggers re-tuning against the
            # throttled spec (plan-cache entry invalidated).
            retuned = False
            if factors is not None and resilient:
                if degradation.retuned(tenant):
                    retuned = True
                else:
                    stale = self._model.service(
                        network, size, kind=kind, factors=factors,
                    )
                    predicted = self._model.service(
                        network, size, kind=kind
                    )
                    if degradation.observe_latency(
                        tenant, network, now=now,
                        observed_s=stale.total_s,
                        predicted_s=predicted.total_s,
                    ):
                        default_plan_cache().invalidate(
                            self._model.plan_key(network, size, kind)
                        )
                        retuned = True
            elif factors is None and resilient and degradation.retuned(
                tenant
            ):
                degradation.clear_drift(tenant, network, now=now)

            svc = self._model.service(
                network, size, kind=kind, factors=factors, retuned=retuned,
            )

            # Transient hybrid-kernel launch failures.
            hybrid_active = (
                hybrid_base
                and kind in ("normal", "no_zerocopy")
                and faults.kernel_failure_p > 0.0
            )
            if not hybrid_active:
                return svc, 0.0, False
            if not resilient:
                failed = injector.kernel_fails(
                    now, detail=f"{tenant}#{dispatch_seq}"
                )
                # The failure surfaces mid-run: the device time is
                # consumed either way, the responses are lost.
                return svc, 0.0, failed
            if not breaker.allow(now):
                # Circuit open: skip the hybrid launch entirely and run
                # the safe plan until the breaker half-opens.
                fallback = "safe" if kind == "no_zerocopy" else "no_hybrid"
                svc = self._model.service(
                    network, size, kind=fallback,
                    factors=factors, retuned=retuned,
                )
                return svc, 0.0, False
            delay = 0.0
            for attempt in range(retry.max_attempts):
                fails = injector.kernel_fails(
                    now, detail=f"{tenant}#{dispatch_seq}:a{attempt}"
                )
                if not fails:
                    breaker.record_success(now)
                    if attempt > 0 and obs.enabled:
                        obs.metrics.counter(
                            "repro_resilience_retries_total",
                            "Hybrid-kernel launch retries",
                            labels=("tenant",),
                        ).labels(tenant=tenant).inc(attempt)
                    retries += attempt
                    return svc, delay, False
                if attempt < retry.max_attempts - 1:
                    delay += retry.delay(attempt, token=dispatch_seq)
            # All attempts failed: trip the breaker, fall back to the
            # safe non-hybrid plan (responses still produced, slower).
            retries += retry.max_attempts - 1
            exhaustions += 1
            breaker.record_failure(now)
            degradation.note_hybrid_exhausted(tenant, network, now=now)
            fallback = "safe" if kind == "no_zerocopy" else "no_hybrid"
            svc = self._model.service(
                network, size, kind=fallback, factors=factors,
                retuned=retuned,
            )
            return svc, delay, False

        def maybe_dispatch(now: float) -> None:
            nonlocal device_busy, depth, cpu_busy_total, gpu_busy_total
            nonlocal dispatch_seq
            while not device_busy:
                expire_queues(now)
                ready = [n for n, q in queues.items() if q.ready(now)]
                chosen = scheduler.pick(ready)
                if chosen is None:
                    # Nothing dispatchable yet: arm a wait-expiry timer
                    # per tenant still accumulating a batch.
                    for name, queue in queues.items():
                        deadline = queue.wait_deadline_s()
                        if deadline is None:
                            continue
                        if armed_timers.get(name) == deadline:
                            continue
                        armed_timers[name] = deadline
                        push(max(deadline, now), _TIMER, name)
                    return
                queue = queues[chosen]
                batch = queue.take_batch(now)
                depth -= len(batch)
                size = len(batch)
                dispatch_seq += 1
                mode = "warm" if warmed[chosen] else "cold"
                poisoned = any(r.corrupt for r in batch)
                if warmed[chosen]:
                    svc, delay, failed = batch_service(chosen, size, now)
                else:
                    svc = self._model.cold(specs[chosen].network, size)
                    delay, failed = 0.0, False
                    warmed[chosen] = True
                if poisoned:
                    # A malformed payload in the batch kills the whole
                    # launch (the naive service admitted it unchecked);
                    # the device time is still consumed.
                    failed = True
                if failed and svc.total_s == 0.0 and delay == 0.0:
                    # Fail-fast path (allocation failure): the batch is
                    # lost before consuming any device time.
                    for request in batch:
                        request.status = RequestStatus.FAILED
                        request.finish_s = now
                        failed_counts[chosen] += 1
                        if obs.enabled:
                            requests_total.labels(
                                tenant=chosen, outcome="failed"
                            ).inc()
                        followup(chosen, now)
                    tenant_hist[chosen][size] = (
                        tenant_hist[chosen].get(size, 0) + 1
                    )
                    if tl is not None:
                        tl.record_failed(now, size, from_queue=True)
                    continue
                device_busy = True
                total = delay + svc.total_s
                scheduler.charge(chosen, total)
                cpu_busy_total += svc.cpu_busy_s
                gpu_busy_total += svc.gpu_busy_s
                end = now + total
                label = f"{chosen}:batch(n={size})"
                timeline.schedule(DEVICE, total, label, not_before=now)
                timeline.schedule(
                    CPU, svc.cpu_busy_s, label,
                    not_before=now + delay, category="kernel",
                )
                timeline.schedule(
                    GPU, svc.gpu_busy_s, label,
                    not_before=now + delay, category="kernel",
                )
                batches.append(
                    BatchRecord(
                        tenant=chosen, size=size, start_s=now, end_s=end
                    )
                )
                if tl is not None:
                    tl.record_batch(
                        now, end, size,
                        busy=(
                            ("cpu", svc.cpu_busy_s),
                            ("gpu", svc.gpu_busy_s),
                        ),
                        energy_j=svc.energy_j,
                    )
                if obs.enabled:
                    obs.tracer.record(
                        label, now, end, category="batch",
                        tenant=chosen, size=size, mode=mode,
                    )
                    batches_total.labels(tenant=chosen).inc()
                    batch_size_hist.observe(size)
                    depth_gauge.set(depth)
                tenant_hist[chosen][size] = (
                    tenant_hist[chosen].get(size, 0) + 1
                )
                in_flight.extend(batch)
                inflight_failed[chosen] = failed
                push(end, _COMPLETION, chosen)
                return

        while heap:
            now, kind, _, tenant = heapq.heappop(heap)
            advance(now)
            if faults is not None:
                note_windows(now)
            if kind == _ARRIVAL:
                request = Request(
                    request_id=next_id, tenant=tenant, arrival_s=now
                )
                next_id += 1
                requests.append(request)
                by_tenant[tenant].append(request)
                if tl is not None:
                    tl.record_offered(now)
                if faults is not None and injector.payload_corrupt(
                    now, request_id=request.request_id
                ):
                    if cfg.resilience:
                        # Request validation catches the malformed
                        # payload at the door: reject, don't queue.
                        queues[tenant].reject(request)
                        request.finish_s = now
                        if tl is not None:
                            tl.record_rejected(now)
                        if obs.enabled:
                            requests_total.labels(
                                tenant=tenant, outcome="rejected"
                            ).inc()
                        followup(tenant, now)
                        maybe_dispatch(now)
                        continue
                    request.corrupt = True
                if queues[tenant].offer(request):
                    depth += 1
                    depth_max = max(depth_max, depth)
                    if obs.enabled:
                        depth_gauge.set(depth)
                else:
                    # Shed: the client sees an immediate rejection; a
                    # closed-loop client thinks, then retries.
                    request.finish_s = now
                    if tl is not None:
                        tl.record_shed(now)
                    if obs.enabled:
                        requests_total.labels(
                            tenant=tenant, outcome="shed"
                        ).inc()
                    followup(tenant, now)
                maybe_dispatch(now)
            elif kind == _COMPLETION:
                finished = [r for r in in_flight if r.tenant == tenant]
                in_flight[:] = [r for r in in_flight if r.tenant != tenant]
                batch_failed = inflight_failed.pop(tenant, False)
                for request in finished:
                    request.finish_s = now
                    if batch_failed:
                        request.status = RequestStatus.FAILED
                        failed_counts[tenant] += 1
                        outcome = "failed"
                    elif request.expired(now, _EPS):
                        # Completed, but past its deadline: the client
                        # already gave up — a late, useless response.
                        request.status = RequestStatus.TIMED_OUT
                        queues[tenant].timed_out += 1
                        late_counts[tenant] += 1
                        outcome = "timed_out"
                    else:
                        request.status = RequestStatus.SERVED
                        outcome = "served"
                    if obs.enabled:
                        requests_total.labels(
                            tenant=tenant, outcome=outcome
                        ).inc()
                        if outcome == "served":
                            latency_hist.labels(tenant=tenant).observe(
                                request.latency_s
                            )
                    followup(tenant, now)
                if tl is not None and finished:
                    if batch_failed:
                        tl.record_failed(now, len(finished))
                    else:
                        lats = [
                            r.latency_s for r in finished
                            if r.status is RequestStatus.SERVED
                        ]
                        if lats:
                            tl.record_served(now, lats)
                        late_n = len(finished) - len(lats)
                        if late_n:
                            tl.record_timed_out(now, late_n, late=True)
                device_busy = False
                maybe_dispatch(now)
            else:  # _TIMER
                if armed_timers.get(tenant) is not None:
                    armed_timers.pop(tenant, None)
                maybe_dispatch(now)

        self.requests = requests
        self.batches = batches
        self.timeline = None
        self.timeline_ops = 0
        self.timeline_op_counts = {}
        self.slo_report = None
        if tl is not None:
            self.timeline_op_counts = tl.op_counts
            self.timeline_ops = tl.ops
            horizon = self._horizon_s()
            last_end = max((b.end_s for b in batches), default=0.0)
            self.timeline = tl.finish(
                horizon_s=horizon,
                makespan_s=max(horizon, last_end),
                capacity={"cpu": 1.0, "gpu": 1.0},
            )
            if cfg.slos:
                monitor = SloMonitor(cfg.slos, cfg.burn)
                self.slo_report = monitor.evaluate(self.timeline)
                monitor.record(self.slo_report, obs)
                # SLO firings reach the same degradation stream the
                # fault triggers use (before the report snapshots it).
                monitor.apply(
                    self.slo_report, degradation,
                    network=",".join(
                        sorted({t.network for t in self._tenants})
                    ),
                )
        return self._build_report(
            queues, by_tenant, tenant_hist, batches, timeline,
            depth_integral, depth_max, cpu_busy_total, gpu_busy_total,
            late_counts, failed_counts, retries, exhaustions,
        )

    # -- report assembly ------------------------------------------------------

    def _horizon_s(self) -> float:
        return max(
            float(getattr(t.arrival, "duration_s", 0.0))
            for t in self._tenants
        )

    def _build_report(
        self, queues, by_tenant, tenant_hist, batches, timeline,
        depth_integral, depth_max, cpu_busy_total, gpu_busy_total,
        late_counts, failed_counts, retries, exhaustions,
    ) -> ServingReport:
        horizon = self._horizon_s()
        last_end = max((b.end_s for b in batches), default=0.0)
        makespan = max(horizon, last_end)
        tenant_stats = []
        for spec in self._tenants:
            name = spec.tenant_name
            latencies = [
                r.latency_s for r in by_tenant[name]
                if r.status is RequestStatus.SERVED
            ]
            tenant_stats.append(
                TenantServingStats(
                    name=name,
                    network=spec.network,
                    weight=spec.weight,
                    offered=queues[name].offered,
                    served=len(latencies),
                    shed=queues[name].shed,
                    timed_out=queues[name].timed_out,
                    failed=failed_counts[name],
                    rejected=queues[name].rejected,
                    latency=LatencyStats.from_latencies(latencies),
                    batch_histogram=dict(tenant_hist[name]),
                )
            )
        all_latencies = [
            r.latency_s
            for name in by_tenant
            for r in by_tenant[name]
            if r.status is RequestStatus.SERVED
        ]
        abandoned = [
            r.finish_s - r.arrival_s
            for name in by_tenant
            for r in by_tenant[name]
            if r.status is RequestStatus.TIMED_OUT and r.finish_s is not None
        ]
        offered = sum(t.offered for t in tenant_stats)
        served = sum(t.served for t in tenant_stats)
        shed = sum(t.shed for t in tenant_stats)
        timed_out = sum(t.timed_out for t in tenant_stats)
        failed = sum(t.failed for t in tenant_stats)
        rejected = sum(t.rejected for t in tenant_stats)
        report = ServingReport(
            device=self._spec.name,
            duration_s=horizon,
            makespan_s=makespan,
            offered=offered,
            served=served,
            shed=shed,
            latency=LatencyStats.from_latencies(all_latencies),
            batch_histogram=merge_histograms(
                [t.batch_histogram for t in tenant_stats]
            ),
            queue_depth_mean=(
                depth_integral / makespan if makespan > 0 else 0.0
            ),
            queue_depth_max=depth_max,
            cpu_utilization=(
                min(1.0, cpu_busy_total / makespan) if makespan > 0 else 0.0
            ),
            gpu_utilization=(
                min(1.0, gpu_busy_total / makespan) if makespan > 0 else 0.0
            ),
            tenants=tuple(tenant_stats),
            seed=self._config.seed,
            timed_out=timed_out,
            late=sum(late_counts.values()),
            failed=failed,
            rejected=rejected,
            abandoned_latency=LatencyStats.from_latencies(abandoned),
        )
        report.extra["batch_count"] = float(len(batches))
        report.extra["device_busy_s"] = timeline.busy_time(DEVICE)
        if self.injector is not None:
            report.extra["fault_events"] = float(len(self.injector.events))
            report.extra["retries"] = float(retries)
            report.extra["hybrid_exhaustions"] = float(exhaustions)
            report.extra["breaker_opens"] = float(
                self.breaker.stats.opens if self.breaker else 0
            )
            report.extra["degradations"] = float(
                len(self.degradation.records) if self.degradation else 0
            )
        self.trace = timeline.trace
        return report


# -- convenience entry points ---------------------------------------------------


def poisson_tenant(
    network: str,
    rate_rps: float,
    duration_s: float,
    *,
    seed: int = 0,
    weight: float = 1.0,
    name: Optional[str] = None,
    policy: Optional[BatchPolicy] = None,
) -> TenantSpec:
    """An open-loop Poisson tenant (the common case)."""
    return TenantSpec(
        network=network,
        arrival=PoissonArrivals(rate_rps, duration_s, seed=seed),
        weight=weight,
        name=name,
        policy=policy,
    )


def simulate(
    tenants: Sequence[TenantSpec],
    device: Union[Device, DeviceSpec, None] = None,
    config: Optional[ServingConfig] = None,
    *,
    obs: Optional[Observability] = None,
) -> ServingReport:
    """Run one serving simulation and return its report."""
    return ServingSimulator(device, tenants, config, obs=obs).run()


def simulate_poisson(
    network: str,
    rate_rps: float,
    duration_s: float,
    device: Union[Device, DeviceSpec, None] = None,
    *,
    seed: int = 0,
    config: Optional[ServingConfig] = None,
    obs: Optional[Observability] = None,
) -> ServingReport:
    """Single-tenant open-loop run (what ``repro serve`` does)."""
    cfg = config or ServingConfig(seed=seed)
    tenant = poisson_tenant(network, rate_rps, duration_s, seed=seed)
    return simulate([tenant], device, cfg, obs=obs)
