"""Request-level inference serving on top of the EdgeNN engine.

The paper evaluates one-shot inference; this package turns the engine
into a simulated *service*: arrival generators feed bounded per-tenant
queues, a dynamic batcher forms batches (max-batch-size / max-wait-time
policy, plans re-tuned per batch size through the shared plan cache),
admission control sheds load past the queue bound, and a weighted
fair-share scheduler multiplexes tenants on the non-preemptive device.
See docs/serving.md for the architecture.
"""

from .batcher import BatchPolicy, TenantQueue
from .report import (
    LatencyStats,
    ServingReport,
    TenantServingStats,
    percentile,
)
from .request import Request, RequestStatus
from .scheduler import WeightedFairScheduler
from .simulator import (
    BatchServiceTime,
    ServiceTimeModel,
    ServingConfig,
    ServingSimulator,
    TenantSpec,
    poisson_tenant,
    simulate,
    simulate_poisson,
)

__all__ = [
    "BatchPolicy",
    "BatchServiceTime",
    "LatencyStats",
    "Request",
    "RequestStatus",
    "ServiceTimeModel",
    "ServingConfig",
    "ServingReport",
    "ServingSimulator",
    "TenantQueue",
    "TenantServingStats",
    "TenantSpec",
    "WeightedFairScheduler",
    "percentile",
    "poisson_tenant",
    "simulate",
    "simulate_poisson",
]
