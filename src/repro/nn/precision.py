"""Reduced-precision inference modeling (FP16 / INT8 extension).

The paper evaluates FP32 kernels; production edge inference commonly
quantizes.  This module models precision's *performance* effects — smaller
buffers (less DRAM traffic, cheaper copies) and higher arithmetic
throughput (vector units process 2-4x more narrow elements per cycle) —
without touching the NumPy numerics (values stay float32; accuracy impact
of quantization is out of scope for a timing simulator).

Applied by the executor: every buffer shrinks by ``bytes_per_element/4``
and every kernel's attained compute rate scales by the processor-specific
throughput factor.
"""

from __future__ import annotations

import enum
from dataclasses import replace

from ..errors import ReproError
from ..hardware.roofline import KernelWork
from ..hardware.specs import ProcessorKind


class Precision(enum.Enum):
    """Inference datatype."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"

    @property
    def bytes_per_element(self) -> int:
        return {"fp32": 4, "fp16": 2, "int8": 1}[self.value]

    @property
    def byte_ratio(self) -> float:
        """Buffer-size multiplier relative to FP32."""
        return self.bytes_per_element / 4.0

    def compute_speedup(self, proc: ProcessorKind) -> float:
        """Throughput multiplier over FP32 on one processor.

        [fit] Volta has native FP16 at 2x rate and DP4A-style INT8 at
        ~4x (naive kernels capture most of it — the data path narrows
        regardless of tiling quality); NEON likewise doubles lanes per
        halving, with INT8 slightly less efficient than ideal.
        """
        table = {
            Precision.FP32: {ProcessorKind.CPU: 1.0, ProcessorKind.GPU: 1.0},
            Precision.FP16: {ProcessorKind.CPU: 1.8, ProcessorKind.GPU: 2.0},
            Precision.INT8: {ProcessorKind.CPU: 3.0, ProcessorKind.GPU: 4.0},
        }
        return table[self][proc]


def scale_work(work: KernelWork, precision: Precision) -> KernelWork:
    """The same kernel's work at a narrower datatype: byte terms shrink,
    logical FLOP count and output-element count stay."""
    if not isinstance(precision, Precision):
        raise ReproError(f"not a Precision: {precision!r}")
    if precision is Precision.FP32:
        return work
    ratio = precision.byte_ratio
    return replace(
        work,
        act_in_bytes=work.act_in_bytes * ratio,
        weight_bytes=work.weight_bytes * ratio,
        out_bytes=work.out_bytes * ratio,
    )
