"""Normalization layers: local response normalization and batch norm."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


class LRN(Layer):
    """AlexNet-style local response normalization across channels."""

    kernel_class = "norm"
    partitionable = True

    def __init__(
        self,
        name: str,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 2.0,
    ) -> None:
        super().__init__(name)
        if size <= 0:
            raise ShapeError(f"{name}: LRN size must be positive")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_chw(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one (C,H,W) input, got {in_shapes}")
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        # square + windowed sum + pow + divide per element.
        return float(tensor.numel(out_shape) * (self.size + 4))

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        c = x.shape[0]
        squared = x * x
        half = self.size // 2
        denom = np.empty_like(x)
        for ch in range(c):
            lo, hi = max(0, ch - half), min(c, ch + half + 1)
            denom[ch] = squared[lo:hi].sum(axis=0)
        denom = (self.k + (self.alpha / self.size) * denom) ** self.beta
        return (x / denom).astype(np.float32)


class BatchNorm2D(Layer):
    """Inference-mode batch normalization over channels of (C, H, W)."""

    kernel_class = "norm"
    partitionable = True

    def __init__(self, name: str, eps: float = 1e-5) -> None:
        super().__init__(name)
        self.eps = eps

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_chw(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one (C,H,W) input, got {in_shapes}")
        return in_shapes[0]

    def param_shapes(self, in_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        c = in_shapes[0][0]
        return {"gamma": (c,), "beta": (c,), "mean": (c,), "var": (c,)}

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return 2.0 * tensor.numel(out_shape)  # fused scale + shift

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        scale = params["gamma"] / np.sqrt(params["var"] + self.eps)
        shift = params["beta"] - params["mean"] * scale
        return (x * scale[:, None, None] + shift[:, None, None]).astype(np.float32)
