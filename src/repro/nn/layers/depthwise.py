"""Depthwise convolution (MobileNet-style separable convolutions).

Not used by the paper's six benchmarks, but the defining layer of the
most common *edge* architectures; added so users can push
MobileNet-class models through EdgeNN.  A depthwise conv filters each
input channel independently: O(C·k²·H'·W') MACs instead of a standard
conv's O(C·O·k²·H'·W') — extremely low arithmetic intensity, i.e. a
memory-bound kernel on both processors.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


class DepthwiseConv2D(Layer):
    """Per-channel 2-D convolution over ``(C, H, W)`` feature maps."""

    kernel_class = "conv"
    partitionable = True  # split by channels

    def __init__(
        self,
        name: str,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__(name)
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ShapeError(f"{name}: bad depthwise-conv hyper-parameters")
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_chw(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one (C,H,W) input, got {in_shapes}")
        c, h, w = in_shapes[0]
        out_h, out_w = tensor.conv_output_hw(
            (h, w), self.kernel_size, self.stride, self.padding
        )
        return (c, out_h, out_w)

    def param_shapes(self, in_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        c = in_shapes[0][0]
        k = self.kernel_size
        return {"weight": (c, k, k), "bias": (c,)}

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        c, out_h, out_w = out_shape
        macs = c * out_h * out_w * self.kernel_size * self.kernel_size
        return 2.0 * macs + c * out_h * out_w

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        weight, bias = params["weight"], params["bias"]
        c = x.shape[0]
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h, out_w = tensor.conv_output_hw(x.shape[1:], k, s, p)
        if p:
            x = np.pad(x, ((0, 0), (p, p), (p, p)))
        out = np.zeros((c, out_h, out_w), dtype=np.float32)
        for ki in range(k):
            for kj in range(k):
                window = x[:, ki : ki + s * out_h : s, kj : kj + s * out_w : s]
                out += window * weight[:, ki, kj][:, None, None]
        return (out + bias[:, None, None]).astype(np.float32)
