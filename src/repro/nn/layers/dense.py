"""Fully connected layer."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


class Dense(Layer):
    """Fully connected layer over a flat vector.

    At batch size 1 this is a GEMV: memory bound on its weight matrix, which
    is why the paper finds CPU help so profitable on fc layers (Table I).
    """

    kernel_class = "dense"
    partitionable = True  # split by output features

    def __init__(self, name: str, out_features: int) -> None:
        super().__init__(name)
        if out_features <= 0:
            raise ShapeError(f"{name}: out_features must be positive")
        self.out_features = out_features

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_vector(in_shapes[0]):
            raise ShapeError(
                f"{self.name}: expects one flat (N,) input, got {in_shapes}; "
                "insert a Flatten layer first"
            )
        return (self.out_features,)

    def param_shapes(self, in_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        (n,) = in_shapes[0]
        return {"weight": (self.out_features, n), "bias": (self.out_features,)}

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        (n,) = in_shapes[0]
        return 2.0 * n * self.out_features + self.out_features

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return (params["weight"] @ x + params["bias"]).astype(np.float32)
