"""Structural layers: flatten, concat, dropout.

Flatten and Dropout are no-ops at inference time (metadata-only reshape /
identity); they stay in the graph so layer counts and DAG structure match
the paper's networks, but they schedule no kernel.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


class Flatten(Layer):
    """(C, H, W) → (C*H*W,) — a view change, free at runtime."""

    kernel_class = "shape"
    partitionable = False

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1:
            raise ShapeError(f"{self.name}: expects one input, got {len(in_shapes)}")
        return (tensor.numel(in_shapes[0]),)

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return 0.0

    @property
    def is_noop(self) -> bool:
        return True

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return x.reshape(-1)


class Dropout(Layer):
    """Identity at inference (kept for structural parity with the paper)."""

    kernel_class = "shape"
    partitionable = False

    def __init__(self, name: str, rate: float = 0.5) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ShapeError(f"{name}: dropout rate out of [0, 1)")
        self.rate = rate

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1:
            raise ShapeError(f"{self.name}: expects one input, got {len(in_shapes)}")
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return 0.0

    @property
    def is_noop(self) -> bool:
        return True

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return x


class Concat(Layer):
    """Channel concatenation of (C_i, H, W) inputs (SqueezeNet's fire join)."""

    kernel_class = "shape"
    partitionable = False  # DAG join point

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) < 2:
            raise ShapeError(f"{self.name}: concat needs >= 2 inputs")
        if not all(tensor.is_chw(s) for s in in_shapes):
            raise ShapeError(f"{self.name}: all inputs must be (C,H,W)")
        hw = {s[1:] for s in in_shapes}
        if len(hw) != 1:
            raise ShapeError(f"{self.name}: spatial dims differ: {in_shapes}")
        h, w = next(iter(hw))
        return (sum(s[0] for s in in_shapes), h, w)

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return 0.0  # memcpy-like; cost is in its bytes

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        return np.concatenate(inputs, axis=0).astype(np.float32)
