"""Pooling layers: max, average, and global average."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


class _Pool2D(Layer):
    """Shared plumbing for windowed pooling."""

    kernel_class = "pool"
    partitionable = True  # channel-wise split is trivially parallel

    def __init__(
        self, name: str, kernel_size: int, stride: int | None = None, padding: int = 0
    ) -> None:
        super().__init__(name)
        if kernel_size <= 0 or padding < 0:
            raise ShapeError(f"{name}: bad pooling hyper-parameters")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride <= 0:
            raise ShapeError(f"{name}: stride must be positive")
        self.padding = padding

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_chw(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one (C,H,W) input, got {in_shapes}")
        c, h, w = in_shapes[0]
        out_h, out_w = tensor.conv_output_hw(
            (h, w), self.kernel_size, self.stride, self.padding
        )
        return (c, out_h, out_w)

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        # One compare/add per window element per output.
        return float(tensor.numel(out_shape) * self.kernel_size * self.kernel_size)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """Stack of the k*k shifted views: shape (k*k, C, out_h, out_w)."""
        c, h, w = x.shape
        out_h, out_w = tensor.conv_output_hw(
            (h, w), self.kernel_size, self.stride, self.padding
        )
        if self.padding:
            fill = -np.inf if isinstance(self, MaxPool2D) else 0.0
            x = np.pad(
                x,
                ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
                constant_values=fill,
            )
        k, s = self.kernel_size, self.stride
        views = [
            x[:, ki : ki + s * out_h : s, kj : kj + s * out_w : s]
            for ki in range(k)
            for kj in range(k)
        ]
        return np.stack(views)


class MaxPool2D(_Pool2D):
    """Max pooling."""

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return self._windows(x).max(axis=0).astype(np.float32)


class AvgPool2D(_Pool2D):
    """Average pooling (count includes padding, like Caffe's default)."""

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return self._windows(x).mean(axis=0).astype(np.float32)


class GlobalAvgPool(Layer):
    """Global average pooling: (C, H, W) → (C,)."""

    kernel_class = "pool"
    partitionable = False  # tiny reduction; never worth splitting

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_chw(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one (C,H,W) input, got {in_shapes}")
        return (in_shapes[0][0],)

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return float(tensor.numel(in_shapes[0]))

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return x.mean(axis=(1, 2)).astype(np.float32)
