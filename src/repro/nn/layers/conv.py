"""2-D convolution."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``(C, H, W)`` into ``(C*k*k, out_h*out_w)`` patches."""
    c, h, w = x.shape
    out_h, out_w = tensor.conv_output_hw((h, w), kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        for kj in range(kernel):
            cols[:, ki, kj] = x[
                :,
                ki : ki + stride * out_h : stride,
                kj : kj + stride * out_w : stride,
            ]
    return cols.reshape(c * kernel * kernel, out_h * out_w)


class Conv2D(Layer):
    """Standard convolution over ``(C, H, W)`` feature maps.

    FLOPs count multiply-accumulates as 2 ops plus the bias add, the
    convention used by the networks the paper evaluates.
    """

    kernel_class = "conv"
    partitionable = True  # split by output channels (paper §IV-D)

    def __init__(
        self,
        name: str,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__(name)
        if out_channels <= 0 or kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ShapeError(f"{name}: bad conv hyper-parameters")
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_chw(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one (C,H,W) input, got {in_shapes}")
        c, h, w = in_shapes[0]
        out_h, out_w = tensor.conv_output_hw(
            (h, w), self.kernel_size, self.stride, self.padding
        )
        return (self.out_channels, out_h, out_w)

    def param_shapes(self, in_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        c = in_shapes[0][0]
        k = self.kernel_size
        return {
            "weight": (self.out_channels, c, k, k),
            "bias": (self.out_channels,),
        }

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        c = in_shapes[0][0]
        o, out_h, out_w = out_shape
        macs = o * out_h * out_w * c * self.kernel_size * self.kernel_size
        return 2.0 * macs + o * out_h * out_w  # MACs + bias add

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        weight, bias = params["weight"], params["bias"]
        o, c, k, _ = weight.shape
        out_h, out_w = tensor.conv_output_hw(
            x.shape[1:], self.kernel_size, self.stride, self.padding
        )
        cols = im2col(x, k, self.stride, self.padding)
        out = weight.reshape(o, c * k * k) @ cols + bias[:, None]
        return out.reshape(o, out_h, out_w).astype(np.float32)
