"""Elementwise activations and the output softmax."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ...errors import ShapeError
from .. import tensor
from ..layer import Layer, Shape


class ReLU(Layer):
    """Rectified linear unit (shape preserving)."""

    kernel_class = "activation"
    partitionable = True

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1:
            raise ShapeError(f"{self.name}: expects one input, got {len(in_shapes)}")
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return float(tensor.numel(out_shape))

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        return np.maximum(x, 0.0).astype(np.float32)


class Add(Layer):
    """Elementwise addition of two equal-shape inputs (residual join)."""

    kernel_class = "activation"
    partitionable = False  # DAG join point: executed after branch sync

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 2 or in_shapes[0] != in_shapes[1]:
            raise ShapeError(f"{self.name}: expects two equal shapes, got {in_shapes}")
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        return float(tensor.numel(out_shape))

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        a, b = inputs
        return (a + b).astype(np.float32)


class Softmax(Layer):
    """Numerically stable softmax over a flat vector."""

    kernel_class = "softmax"
    partitionable = False

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if len(in_shapes) != 1 or not tensor.is_vector(in_shapes[0]):
            raise ShapeError(f"{self.name}: expects one flat input, got {in_shapes}")
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        # exp + subtract-max + normalize, ~5 ops/element.
        return 5.0 * tensor.numel(out_shape)

    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        shifted = x - x.max()
        e = np.exp(shifted)
        return (e / e.sum()).astype(np.float32)
