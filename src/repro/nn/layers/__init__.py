"""Concrete layer implementations."""

from .activation import Add, ReLU, Softmax
from .conv import Conv2D, im2col
from .dense import Dense
from .depthwise import DepthwiseConv2D
from .norm import LRN, BatchNorm2D
from .pool import AvgPool2D, GlobalAvgPool, MaxPool2D
from .shape_ops import Concat, Dropout, Flatten

__all__ = [
    "Add",
    "AvgPool2D",
    "BatchNorm2D",
    "Concat",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "LRN",
    "MaxPool2D",
    "ReLU",
    "Softmax",
    "im2col",
]
