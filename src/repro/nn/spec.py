"""Config-driven network definition.

Lets users define networks from plain dictionaries (or JSON files) instead
of Python code — convenient for sweeping architectures through the
simulator from configuration:

    spec = {
        "name": "tiny-cnn",
        "input": [3, 32, 32],
        "layers": [
            {"type": "conv", "name": "c1", "out_channels": 16,
             "kernel_size": 3, "padding": 1},
            {"type": "relu", "name": "r1"},
            {"type": "maxpool", "name": "p1", "kernel_size": 2},
            {"type": "flatten", "name": "f"},
            {"type": "dense", "name": "fc", "out_features": 10},
            {"type": "softmax", "name": "s"},
        ],
    }
    net = network_from_spec(spec)

Fork/join structure uses explicit ``inputs`` lists, exactly like
``NetworkGraph.add``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Tuple, Type, Union

from ..errors import GraphError
from .graph import NetworkGraph
from .layer import Layer
from .layers.depthwise import DepthwiseConv2D
from .layers import (
    LRN,
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Softmax,
)

#: type tag -> (layer class, accepted hyper-parameter keys)
_LAYER_TYPES: Mapping[str, Tuple[Type[Layer], Tuple[str, ...]]] = {
    "conv": (Conv2D, ("out_channels", "kernel_size", "stride", "padding")),
    "dense": (Dense, ("out_features",)),
    "depthwise": (DepthwiseConv2D, ("kernel_size", "stride", "padding")),
    "maxpool": (MaxPool2D, ("kernel_size", "stride", "padding")),
    "avgpool": (AvgPool2D, ("kernel_size", "stride", "padding")),
    "globalavgpool": (GlobalAvgPool, ()),
    "relu": (ReLU, ()),
    "add": (Add, ()),
    "softmax": (Softmax, ()),
    "lrn": (LRN, ("size", "alpha", "beta", "k")),
    "batchnorm": (BatchNorm2D, ("eps",)),
    "dropout": (Dropout, ("rate",)),
    "flatten": (Flatten, ()),
    "concat": (Concat, ()),
}


def layer_from_spec(spec: Mapping[str, Any]) -> Layer:
    """Instantiate one layer from its dictionary description."""
    try:
        type_tag = spec["type"]
        name = spec["name"]
    except KeyError as exc:
        raise GraphError(f"layer spec needs 'type' and 'name': {spec}") from exc
    try:
        cls, allowed = _LAYER_TYPES[type_tag]
    except KeyError as exc:
        raise GraphError(
            f"unknown layer type {type_tag!r}; "
            f"available: {sorted(_LAYER_TYPES)}"
        ) from exc
    extras = set(spec) - {"type", "name", "inputs"} - set(allowed)
    if extras:
        raise GraphError(
            f"layer {name!r} ({type_tag}): unexpected keys {sorted(extras)}"
        )
    kwargs = {k: spec[k] for k in allowed if k in spec}
    return cls(name, **kwargs)


def network_from_spec(spec: Mapping[str, Any]) -> NetworkGraph:
    """Build a validated :class:`NetworkGraph` from a dictionary spec."""
    try:
        name = spec["name"]
        input_shape = spec["input"]
        layer_specs = spec["layers"]
    except KeyError as exc:
        raise GraphError(
            "network spec needs 'name', 'input', and 'layers'"
        ) from exc
    if not layer_specs:
        raise GraphError(f"network {name!r} has no layers")
    net = NetworkGraph(name, tuple(input_shape))
    for layer_spec in layer_specs:
        layer = layer_from_spec(layer_spec)
        inputs = layer_spec.get("inputs")
        net.add(layer, inputs=inputs)
    net.output_name  # validates single-sink
    return net


def network_from_json(path: Union[str, pathlib.Path]) -> NetworkGraph:
    """Load a network spec from a JSON file."""
    with open(path) as f:
        return network_from_spec(json.load(f))


def network_to_spec(net: NetworkGraph) -> Dict[str, Any]:
    """Serialize a graph back into the spec format (round-trips
    ``network_from_spec``)."""
    from .graph import INPUT

    reverse = {cls: tag for tag, (cls, _) in _LAYER_TYPES.items()}
    order = net.topo_order()
    layers: List[Dict[str, Any]] = []
    for i, layer_name in enumerate(order):
        node = net.node(layer_name)
        cls = type(node.layer)
        if cls not in reverse:
            raise GraphError(f"layer class {cls.__name__} has no spec tag")
        tag = reverse[cls]
        entry: Dict[str, Any] = {"type": tag, "name": layer_name}
        _, allowed = _LAYER_TYPES[tag]
        for key in allowed:
            if hasattr(node.layer, key):
                entry[key] = getattr(node.layer, key)
        implicit = (INPUT,) if i == 0 else (order[i - 1],)
        if node.input_names != implicit:
            entry["inputs"] = list(node.input_names)
        layers.append(entry)
    return {"name": net.name, "input": list(net.input_shape), "layers": layers}
