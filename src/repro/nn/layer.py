"""Layer base class.

A layer knows three things:

1. **Shape semantics** — output shape from input shapes
   (:meth:`infer_shape`) and parameter shapes (:meth:`param_shapes`).
2. **Cost semantics** — the :class:`~repro.hardware.roofline.KernelWork`
   it generates (:meth:`work`), used by the simulator and EdgeNN's tuner.
3. **Numerics** — a reference NumPy forward pass (:meth:`forward`),
   independent of the timing model, used for functional tests and the
   ``infer`` API.

Layers are shape-agnostic objects; the :class:`~repro.nn.graph.NetworkGraph`
resolves and caches concrete shapes when layers are added.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..hardware.roofline import KernelWork
from . import tensor

Shape = Tuple[int, ...]


class Layer(abc.ABC):
    """Abstract network layer."""

    #: Roofline kernel class (see calibration.KERNEL_CLASSES).
    kernel_class: str = "activation"

    #: Whether EdgeNN may split this layer between CPU and GPU
    #: (intra-kernel co-running along the output-channel dimension).
    partitionable: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("layer name cannot be empty")
        self.name = name

    # -- shape semantics -----------------------------------------------------

    @abc.abstractmethod
    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        """Output shape given input shapes; raises ShapeError on mismatch."""

    def param_shapes(self, in_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        """Parameter name → shape (empty for parameter-free layers)."""
        return {}

    def param_bytes(self, in_shapes: Sequence[Shape]) -> int:
        """Total parameter bytes of this layer."""
        return sum(tensor.nbytes(s) for s in self.param_shapes(in_shapes).values())

    # -- cost semantics ------------------------------------------------------

    @abc.abstractmethod
    def flops(self, in_shapes: Sequence[Shape], out_shape: Shape) -> float:
        """Floating point operations of one forward pass."""

    def work(self, in_shapes: Sequence[Shape], out_shape: Shape) -> KernelWork:
        """Roofline work descriptor of this layer."""
        return KernelWork(
            kernel_class=self.kernel_class,
            flops=self.flops(in_shapes, out_shape),
            act_in_bytes=float(sum(tensor.nbytes(s) for s in in_shapes)),
            weight_bytes=float(self.param_bytes(in_shapes)),
            out_bytes=float(tensor.nbytes(out_shape)),
            out_elements=float(tensor.numel(out_shape)),
        )

    @property
    def is_noop(self) -> bool:
        """True for layers that cost nothing at inference (dropout, flatten):
        they appear in the DAG for structural parity with the paper's layer
        counts but schedule no kernel."""
        return False

    # -- numerics -------------------------------------------------------------

    @abc.abstractmethod
    def forward(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Reference NumPy forward pass."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
