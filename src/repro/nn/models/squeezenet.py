"""SqueezeNet v1.0 (paper benchmark 5).

AlexNet-level accuracy with 50x fewer parameters.  Its fire modules give
the DAG the non-chain structure of the paper's Figure 5: a squeeze layer
forking into parallel expand-1x1 and expand-3x3 chains that reconverge at a
channel concat — the inter-kernel co-running opportunity (§IV-D, §V-F).
More than 60 layers in total, matching the paper.
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import (
    Concat,
    Conv2D,
    Dropout,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Softmax,
)


def add_fire_module(
    net: NetworkGraph,
    index: int,
    squeeze: int,
    expand1x1: int,
    expand3x3: int,
) -> str:
    """Append fire module ``fire{index}`` after the last layer; returns the
    name of its concat output layer."""
    prefix = f"fire{index}"
    net.add(Conv2D(f"{prefix}/squeeze", out_channels=squeeze, kernel_size=1))
    fork = net.add(ReLU(f"{prefix}/squeeze_relu"))
    net.add(Conv2D(f"{prefix}/expand1x1", out_channels=expand1x1, kernel_size=1),
            inputs=[fork])
    left = net.add(ReLU(f"{prefix}/expand1x1_relu"))
    net.add(Conv2D(f"{prefix}/expand3x3", out_channels=expand3x3, kernel_size=3,
                   padding=1), inputs=[fork])
    right = net.add(ReLU(f"{prefix}/expand3x3_relu"))
    return net.add(Concat(f"{prefix}/concat"), inputs=[left, right])


#: (squeeze, expand1x1, expand3x3) per fire module 2..9 of SqueezeNet v1.0.
FIRE_PLAN = (
    (16, 64, 64),
    (16, 64, 64),
    (32, 128, 128),
    (32, 128, 128),
    (48, 192, 192),
    (48, 192, 192),
    (64, 256, 256),
    (64, 256, 256),
)


def build_squeezenet(classes: int = 1000) -> NetworkGraph:
    """Build SqueezeNet v1.0 for (3, 224, 224) inputs."""
    net = NetworkGraph("squeezenet", (3, 224, 224))
    net.add(Conv2D("conv1", out_channels=96, kernel_size=7, stride=2))
    net.add(ReLU("relu1"))
    net.add(MaxPool2D("pool1", kernel_size=3, stride=2))
    for i, (s, e1, e3) in enumerate(FIRE_PLAN, start=2):
        add_fire_module(net, i, s, e1, e3)
        if i in (4, 8):  # v1.0 pools after fire4 and fire8
            net.add(MaxPool2D(f"pool{i}", kernel_size=3, stride=2))
    net.add(Dropout("drop9"))
    net.add(Conv2D("conv10", out_channels=classes, kernel_size=1))
    net.add(ReLU("relu10"))
    net.add(GlobalAvgPool("gap"))
    net.add(Softmax("softmax"))
    return net
