"""Builders for the six paper benchmark networks (Section V-A) plus
extension models (MobileNetV1)."""

from typing import Callable, Dict, List

from ..graph import NetworkGraph
from .alexnet import build_alexnet
from .fcnn import build_fcnn
from .lenet import build_lenet
from .mobilenet import build_mobilenet_v1
from .resnet import build_resnet18
from .squeezenet import build_squeezenet
from .vgg import build_vgg16

#: The paper's benchmark suite, in the order its figures use.
BENCHMARK_BUILDERS: Dict[str, Callable[[], NetworkGraph]] = {
    "fcnn": build_fcnn,
    "lenet": build_lenet,
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "squeezenet": build_squeezenet,
    "resnet18": build_resnet18,
}

#: All buildable networks: the paper suite plus extensions.
MODEL_BUILDERS: Dict[str, Callable[[], NetworkGraph]] = {
    **BENCHMARK_BUILDERS,
    "mobilenet-v1": build_mobilenet_v1,
}


def benchmark_names() -> List[str]:
    """The paper's benchmark network names, in paper order (extensions
    such as mobilenet-v1 are buildable via :func:`build` but excluded
    from the reproduced experiments)."""
    return list(BENCHMARK_BUILDERS)


def build(name: str) -> NetworkGraph:
    """Build any registered network by name."""
    try:
        return MODEL_BUILDERS[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown network {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from exc


__all__ = [
    "BENCHMARK_BUILDERS",
    "MODEL_BUILDERS",
    "benchmark_names",
    "build",
    "build_alexnet",
    "build_fcnn",
    "build_lenet",
    "build_mobilenet_v1",
    "build_resnet18",
    "build_squeezenet",
    "build_vgg16",
]
