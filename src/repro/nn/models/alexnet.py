"""AlexNet (paper benchmark 3).

25 layers counting activations/pool/norm/dropout, matching the paper's
"AlexNet has 25 layers".  All its convolutions have large input/output
scales — the regime where the paper measures zero benefit from CPU help on
conv layers but 48-58% improvement on the fc layers (Table I, Figure 11).
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import (
    LRN,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Softmax,
)


def build_alexnet(classes: int = 1000) -> NetworkGraph:
    """Build AlexNet for (3, 227, 227) inputs (single-GPU variant)."""
    net = NetworkGraph("alexnet", (3, 227, 227))
    net.add(Conv2D("conv1", out_channels=96, kernel_size=11, stride=4))
    net.add(ReLU("relu1"))
    net.add(LRN("norm1"))
    net.add(MaxPool2D("pool1", kernel_size=3, stride=2))
    net.add(Conv2D("conv2", out_channels=256, kernel_size=5, padding=2))
    net.add(ReLU("relu2"))
    net.add(LRN("norm2"))
    net.add(MaxPool2D("pool2", kernel_size=3, stride=2))
    net.add(Conv2D("conv3", out_channels=384, kernel_size=3, padding=1))
    net.add(ReLU("relu3"))
    net.add(Conv2D("conv4", out_channels=384, kernel_size=3, padding=1))
    net.add(ReLU("relu4"))
    net.add(Conv2D("conv5", out_channels=256, kernel_size=3, padding=1))
    net.add(ReLU("relu5"))
    net.add(MaxPool2D("pool5", kernel_size=3, stride=2))
    net.add(Flatten("flatten"))
    net.add(Dropout("drop6"))
    net.add(Dense("fc6", 4096))
    net.add(ReLU("relu6"))
    net.add(Dropout("drop7"))
    net.add(Dense("fc7", 4096))
    net.add(ReLU("relu7"))
    net.add(Dense("fc8", classes))
    net.add(Softmax("softmax"))
    return net
