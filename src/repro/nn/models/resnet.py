"""ResNet-18 (paper benchmark 6).

Residual basic blocks: the main path (conv-bn-relu-conv-bn) runs in
parallel with an identity or 1x1-conv shortcut, reconverging at an
elementwise add — the second source of non-chain DAG structure the paper's
inter-kernel co-running exploits (§V-F names SqueezeNet and ResNet as the
two benchmarks with independent parts).
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import (
    Add,
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Softmax,
)


def add_basic_block(
    net: NetworkGraph,
    name: str,
    fork: str,
    out_channels: int,
    stride: int = 1,
) -> str:
    """Append one residual basic block reading from layer ``fork``.

    Returns the name of the block's final ReLU.  A projection shortcut
    (1x1 conv + bn) is inserted when the shape changes, otherwise the
    shortcut is the identity edge straight into the add.
    """
    net.add(Conv2D(f"{name}/conv1", out_channels, kernel_size=3,
                   stride=stride, padding=1), inputs=[fork])
    net.add(BatchNorm2D(f"{name}/bn1"))
    net.add(ReLU(f"{name}/relu1"))
    net.add(Conv2D(f"{name}/conv2", out_channels, kernel_size=3, padding=1))
    main = net.add(BatchNorm2D(f"{name}/bn2"))
    in_shape = net.node(fork).out_shape
    needs_projection = stride != 1 or in_shape[0] != out_channels
    if needs_projection:
        net.add(Conv2D(f"{name}/down_conv", out_channels, kernel_size=1,
                       stride=stride), inputs=[fork])
        shortcut = net.add(BatchNorm2D(f"{name}/down_bn"))
    else:
        shortcut = fork
    net.add(Add(f"{name}/add"), inputs=[main, shortcut])
    return net.add(ReLU(f"{name}/relu2"))


#: (channels, first-block stride) of the four ResNet-18 stages.
STAGE_PLAN = ((64, 1), (128, 2), (256, 2), (512, 2))


def build_resnet18(classes: int = 1000) -> NetworkGraph:
    """Build ResNet-18 for (3, 224, 224) inputs."""
    net = NetworkGraph("resnet18", (3, 224, 224))
    net.add(Conv2D("conv1", out_channels=64, kernel_size=7, stride=2, padding=3))
    net.add(BatchNorm2D("bn1"))
    net.add(ReLU("relu1"))
    cursor = net.add(MaxPool2D("pool1", kernel_size=3, stride=2, padding=1))
    for stage, (channels, stride) in enumerate(STAGE_PLAN, start=1):
        for block in (1, 2):
            cursor = add_basic_block(
                net,
                f"layer{stage}.{block}",
                cursor,
                channels,
                stride=stride if block == 1 else 1,
            )
    net.add(GlobalAvgPool("gap"), inputs=[cursor])
    net.add(Dense("fc", classes))
    net.add(Softmax("softmax"))
    return net
