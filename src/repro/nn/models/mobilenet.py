"""MobileNetV1 (extension — not in the paper's benchmark suite).

The canonical mobile/edge CNN: 13 depthwise-separable blocks
(depthwise 3x3 + pointwise 1x1, each followed by batch-norm and ReLU).
Added to demonstrate EdgeNN on the architecture family real edge
deployments actually ship, and to exercise the depthwise layer's
extremely-low-arithmetic-intensity regime.
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import BatchNorm2D, Conv2D, Dense, GlobalAvgPool, ReLU, Softmax
from ..layers.depthwise import DepthwiseConv2D

#: (pointwise output channels, depthwise stride) for the 13 blocks.
MOBILENET_PLAN = (
    (64, 1),
    (128, 2), (128, 1),
    (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
)


def _conv_bn_relu(net: NetworkGraph, name: str, layer) -> None:
    net.add(layer)
    net.add(BatchNorm2D(f"{name}/bn"))
    net.add(ReLU(f"{name}/relu"))


def build_mobilenet_v1(classes: int = 1000, width_multiplier: float = 1.0) -> NetworkGraph:
    """Build MobileNetV1 for (3, 224, 224) inputs.

    ``width_multiplier`` scales every channel count (the paper's alpha),
    letting users sweep model capacity through the simulator.
    """
    if not 0.0 < width_multiplier <= 1.0:
        raise ValueError("width_multiplier must be in (0, 1]")

    def width(channels: int) -> int:
        return max(8, int(channels * width_multiplier))

    net = NetworkGraph("mobilenet-v1", (3, 224, 224))
    _conv_bn_relu(
        net, "conv1",
        Conv2D("conv1", out_channels=width(32), kernel_size=3, stride=2,
               padding=1),
    )
    for i, (channels, stride) in enumerate(MOBILENET_PLAN, start=1):
        dw = f"block{i}/dw"
        _conv_bn_relu(
            net, dw,
            DepthwiseConv2D(dw, kernel_size=3, stride=stride, padding=1),
        )
        pw = f"block{i}/pw"
        _conv_bn_relu(
            net, pw,
            Conv2D(pw, out_channels=width(channels), kernel_size=1),
        )
    net.add(GlobalAvgPool("gap"))
    net.add(Dense("fc", classes))
    net.add(Softmax("softmax"))
    return net
