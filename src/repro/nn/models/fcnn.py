"""Fully connected neural network (paper benchmark 1).

"A FCNN consists of at least three layers: an input layer, at least one
hidden layer, and an output layer.  The FCNN in this work has three hidden
layers."  We use MNIST-sized inputs (784) with 4096-wide hidden layers so
the fc workload is substantial enough to exercise the memory system, the
regime the paper's fc observations (Table I) are about.
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import Dense, ReLU, Softmax


def build_fcnn(
    input_features: int = 784,
    hidden: int = 4096,
    num_hidden: int = 3,
    classes: int = 10,
) -> NetworkGraph:
    """Build the FCNN benchmark network."""
    net = NetworkGraph("fcnn", (input_features,))
    for i in range(1, num_hidden + 1):
        net.add(Dense(f"fc{i}", hidden))
        net.add(ReLU(f"relu{i}"))
    net.add(Dense(f"fc{num_hidden + 1}", classes))
    net.add(Softmax("softmax"))
    return net
