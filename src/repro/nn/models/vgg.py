"""VGG-16 (paper benchmark 4).

16 weight layers (13 conv + 3 fc); with activations/pools/dropout the graph
has ~40 layers, matching the paper's "VGG has 40 layers".  It is by far the
most compute-intensive benchmark — the one network where the paper finds
cloud discrete-GPU inference beats EdgeNN (Figure 12).
"""

from __future__ import annotations

from typing import Sequence

from ..graph import NetworkGraph
from ..layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Softmax

#: Channel plan of VGG-16: conv widths, "M" = 2x2 max pool.
VGG16_PLAN: Sequence[object] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)


def build_vgg16(classes: int = 1000) -> NetworkGraph:
    """Build VGG-16 for (3, 224, 224) inputs."""
    net = NetworkGraph("vgg16", (3, 224, 224))
    conv_idx, pool_idx = 0, 0
    for item in VGG16_PLAN:
        if item == "M":
            pool_idx += 1
            net.add(MaxPool2D(f"pool{pool_idx}", kernel_size=2))
        else:
            conv_idx += 1
            net.add(Conv2D(f"conv{conv_idx}", out_channels=int(item),
                           kernel_size=3, padding=1))
            net.add(ReLU(f"relu{conv_idx}"))
    net.add(Flatten("flatten"))
    net.add(Dense("fc14", 4096))
    net.add(ReLU("relu_fc14"))
    net.add(Dropout("drop14"))
    net.add(Dense("fc15", 4096))
    net.add(ReLU("relu_fc15"))
    net.add(Dropout("drop15"))
    net.add(Dense("fc16", classes))
    net.add(Softmax("softmax"))
    return net
