"""LeNet-5 (paper benchmark 2).

The classical 7-layer CNN: two conv+pool stages and three fully connected
layers, on 28x28 single-channel inputs.  Its convolutions are tiny — the
regime where the paper finds CPU help profitable even for conv layers
(Table I: LeNet conv improvement 4.95-36.25%).
"""

from __future__ import annotations

from ..graph import NetworkGraph
from ..layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax


def build_lenet(classes: int = 10) -> NetworkGraph:
    """Build LeNet-5 for (1, 28, 28) inputs."""
    net = NetworkGraph("lenet", (1, 28, 28))
    net.add(Conv2D("conv1", out_channels=6, kernel_size=5, padding=2))
    net.add(ReLU("relu1"))
    net.add(MaxPool2D("pool1", kernel_size=2))
    net.add(Conv2D("conv2", out_channels=16, kernel_size=5))
    net.add(ReLU("relu2"))
    net.add(MaxPool2D("pool2", kernel_size=2))
    net.add(Flatten("flatten"))
    net.add(Dense("fc3", 120))
    net.add(ReLU("relu3"))
    net.add(Dense("fc4", 84))
    net.add(ReLU("relu4"))
    net.add(Dense("fc5", classes))
    net.add(Softmax("softmax"))
    return net
