"""Network DAG.

The paper's tuner "divides the network into layers and builds a directed
acyclic graph (DAG) whose nodes represent layers and edges represent the
execution sequences of layers" (§IV-A).  :class:`NetworkGraph` is that DAG,
plus:

* shape inference and validation at construction time,
* per-layer :class:`~repro.hardware.roofline.KernelWork` accounting,
* a reference NumPy forward pass,
* **segmentation** into chain parts and branch (non-chain) parts — the
  structure EdgeNN's scheduler reasons about (Figure 5): chains are
  candidates for intra-kernel CPU/GPU splits, parallel branches for
  inter-kernel assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import units
from ..errors import GraphError, ReproError, ShapeError
from ..hardware.roofline import KernelWork
from . import tensor, weights
from .layer import Layer, Shape

#: Name of the pseudo-node feeding the first layer.
INPUT = "input"


@dataclass
class Node:
    """One layer instance bound into a graph, with resolved shapes."""

    layer: Layer
    input_names: Tuple[str, ...]
    in_shapes: Tuple[Shape, ...]
    out_shape: Shape
    successors: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def in_degree(self) -> int:
        return len(self.input_names)

    @property
    def out_degree(self) -> int:
        return len(self.successors)


@dataclass(frozen=True)
class ChainSegment:
    """A maximal single-path run of layers: must execute in sequence, so the
    only co-running opportunity is intra-kernel partitioning of each layer."""

    layers: Tuple[str, ...]


@dataclass(frozen=True)
class BranchSegment:
    """Parallel independent chains between a fork and its join layer.

    ``branches`` may contain an empty tuple — an identity shortcut
    (ResNet).  ``join`` is the layer where the branches reconverge
    (``concat`` / ``add``); it executes after all branches synchronize.
    """

    branches: Tuple[Tuple[str, ...], ...]
    join: str


Segment = ChainSegment | BranchSegment


class NetworkGraph:
    """A validated layer DAG for one neural network."""

    def __init__(self, name: str, input_shape: Sequence[int]) -> None:
        if not name:
            raise GraphError("network name cannot be empty")
        self.name = name
        self.input_shape: Shape = tensor.validate_shape(input_shape)
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []       # insertion order == topological
        self._last_added: Optional[str] = None

    # -- construction ----------------------------------------------------------

    def add(self, layer: Layer, inputs: Optional[Iterable[str]] = None) -> str:
        """Add a layer.

        ``inputs`` defaults to the previously added layer (or the network
        input for the first layer) so linear networks read naturally.
        Returns the layer name.
        """
        name = layer.name
        if name == INPUT:
            raise GraphError(f"layer may not be named {INPUT!r}")
        if name in self._nodes:
            raise GraphError(f"duplicate layer name {name!r}")
        if inputs is None:
            inputs = (self._last_added if self._last_added is not None else INPUT,)
        input_names = tuple(inputs)
        if not input_names:
            raise GraphError(f"layer {name!r} has no inputs")
        in_shapes: List[Shape] = []
        for src in input_names:
            if src == INPUT:
                in_shapes.append(self.input_shape)
            elif src in self._nodes:
                in_shapes.append(self._nodes[src].out_shape)
            else:
                raise GraphError(
                    f"layer {name!r} depends on unknown layer {src!r} "
                    "(layers must be added in topological order)"
                )
        out_shape = layer.infer_shape(in_shapes)
        tensor.validate_shape(out_shape)
        node = Node(
            layer=layer,
            input_names=input_names,
            in_shapes=tuple(in_shapes),
            out_shape=out_shape,
        )
        self._nodes[name] = node
        for src in input_names:
            if src != INPUT:
                self._nodes[src].successors.append(name)
        self._order.append(name)
        self._last_added = name
        return name

    # -- structure --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise GraphError(f"unknown layer {name!r}") from exc

    def topo_order(self) -> List[str]:
        """Layer names in a valid execution order."""
        return list(self._order)

    @property
    def output_name(self) -> str:
        """The unique sink layer."""
        sinks = [n for n in self._order if self._nodes[n].out_degree == 0]
        if len(sinks) != 1:
            raise GraphError(
                f"network {self.name!r} must have exactly one output, "
                f"found {sinks}"
            )
        return sinks[0]

    @property
    def output_shape(self) -> Shape:
        return self.node(self.output_name).out_shape

    def work(self, name: str) -> KernelWork:
        """Kernel work of one layer."""
        node = self.node(name)
        return node.layer.work(node.in_shapes, node.out_shape)

    def out_bytes(self, name: str) -> int:
        """Output bytes of one layer (the paper's ``v_o``)."""
        return tensor.nbytes(self.node(name).out_shape)

    def total_param_bytes(self) -> int:
        """Total parameter bytes of the network."""
        return sum(
            self._nodes[n].layer.param_bytes(self._nodes[n].in_shapes)
            for n in self._order
        )

    def total_flops(self) -> float:
        """Total forward-pass FLOPs."""
        return sum(self.work(n).flops for n in self._order)

    def layers_of_class(self, kernel_class: str) -> List[str]:
        """Layer names whose roofline class matches (e.g. 'conv', 'dense')."""
        return [
            n for n in self._order
            if self._nodes[n].layer.kernel_class == kernel_class
        ]

    # -- segmentation -------------------------------------------------------------

    def segments(self) -> List[Segment]:
        """Partition the DAG into chain and branch segments (Figure 5).

        Supports fork-join regions whose branches are simple chains (fire
        modules, residual blocks).  Nested forks raise :class:`GraphError`.
        """
        first = self._first_layer()
        segments: List[Segment] = []
        chain: List[str] = []
        cur: Optional[str] = first
        while cur is not None:
            node = self._nodes[cur]
            chain.append(cur)
            if node.out_degree == 0:
                break
            if node.out_degree == 1:
                cur = node.successors[0]
                continue
            # Fork: flush the chain (including the fork layer) and walk
            # each branch to the common join.
            segments.append(ChainSegment(tuple(chain)))
            chain = []
            branches, join = self._walk_branches(cur)
            segments.append(BranchSegment(branches=branches, join=join))
            cur = join
        if chain:
            segments.append(ChainSegment(tuple(chain)))
        covered = sum(
            len(s.layers) if isinstance(s, ChainSegment)
            else sum(len(b) for b in s.branches)
            for s in segments
        )
        if covered != len(self._nodes):
            raise GraphError(
                f"segmentation covered {covered} of {len(self._nodes)} layers; "
                "the DAG has structure beyond chain/fork-join"
            )
        return segments

    def _first_layer(self) -> str:
        roots = [n for n in self._order if self._nodes[n].input_names == (INPUT,)]
        if len(roots) != 1:
            raise GraphError(
                f"network {self.name!r} must have exactly one entry layer, "
                f"found {roots}"
            )
        return roots[0]

    def _walk_branches(
        self, fork: str
    ) -> Tuple[Tuple[Tuple[str, ...], ...], str]:
        branches: List[Tuple[str, ...]] = []
        join: Optional[str] = None
        for succ in self._nodes[fork].successors:
            branch: List[str] = []
            cur = succ
            while self._nodes[cur].in_degree == 1:
                node = self._nodes[cur]
                if node.out_degree != 1:
                    raise GraphError(
                        f"branch from {fork!r} has nested fork or dead end "
                        f"at {cur!r}"
                    )
                branch.append(cur)
                cur = node.successors[0]
            if join is None:
                join = cur
            elif join != cur:
                raise GraphError(
                    f"branches from {fork!r} reconverge at different layers "
                    f"({join!r} vs {cur!r})"
                )
            branches.append(tuple(branch))
        assert join is not None
        return tuple(branches), join

    def verify_dataflow(self) -> List[str]:
        """Statically re-verify the DAG's dataflow invariants.

        Construction already validates incrementally; this re-walks the
        finished graph — the check the static analyzer runs over every
        catalog model without executing anything.  Returns a list of
        problem descriptions (empty when the graph is sound): every
        layer's inputs must be produced by a predecessor (or the network
        input), recorded input shapes must match the producer's output
        shape, and the recorded output shape must equal what the layer
        infers from those inputs today.
        """
        problems: List[str] = []
        seen: set = {INPUT}
        for name in self._order:
            node = self._nodes[name]
            for src, shape in zip(node.input_names, node.in_shapes):
                if src not in seen:
                    problems.append(
                        f"layer {name!r} consumes {src!r} before it is "
                        f"produced (or from outside the graph)"
                    )
                    continue
                produced = (
                    self.input_shape if src == INPUT
                    else self._nodes[src].out_shape
                )
                if shape != produced:
                    problems.append(
                        f"layer {name!r} records input shape {shape} from "
                        f"{src!r}, which produces {produced}"
                    )
            try:
                inferred = node.layer.infer_shape(list(node.in_shapes))
            except ReproError as exc:
                problems.append(f"layer {name!r} fails shape inference: {exc}")
            else:
                if tuple(inferred) != node.out_shape:
                    problems.append(
                        f"layer {name!r} declares output {node.out_shape} "
                        f"but infers {tuple(inferred)}"
                    )
            seen.add(name)
        try:
            self.output_name
        except GraphError as exc:
            problems.append(str(exc))
        return problems

    # -- numerics -------------------------------------------------------------------

    def materialize_params(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Deterministic parameters for every layer."""
        return {
            name: weights.materialize(
                self.name, name, node.layer.param_shapes(node.in_shapes)
            )
            for name, node in self._nodes.items()
        }

    def forward(
        self,
        x: np.ndarray,
        params: Optional[Dict[str, Dict[str, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Reference forward pass; validates the input shape."""
        if tuple(x.shape) != self.input_shape:
            raise ShapeError(
                f"input shape {x.shape} != network input {self.input_shape}"
            )
        if params is None:
            params = self.materialize_params()
        values: Dict[str, np.ndarray] = {INPUT: x.astype(np.float32)}
        for name in self._order:
            node = self._nodes[name]
            inputs = [values[src] for src in node.input_names]
            out = node.layer.forward(inputs, params.get(name, {}))
            if tuple(out.shape) != node.out_shape:
                raise ShapeError(
                    f"layer {name!r} produced {out.shape}, "
                    f"declared {node.out_shape}"
                )
            values[name] = out
        return values[self.output_name]

    def summary(self) -> str:
        """Human-readable per-layer table."""
        lines = [f"{self.name} (input {self.input_shape})"]
        for name in self._order:
            node = self._nodes[name]
            work = self.work(name)
            lines.append(
                f"  {name:<16} {type(node.layer).__name__:<12} "
                f"out={node.out_shape!s:<18} "
                f"flops={work.flops / units.MEGA:9.2f}M "
                f"params={work.weight_bytes / units.MB:8.3f}MB"
            )
        return "\n".join(lines)
