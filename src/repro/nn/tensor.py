"""Tensor shape descriptors.

Inference runs at batch size 1 (the paper's setting), so shapes omit the
batch dimension: feature maps are ``(C, H, W)`` and vectors are ``(N,)``.
All activations and parameters are float32 (4 bytes/element).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import ShapeError

#: Bytes per element (float32 everywhere).
DTYPE_BYTES = 4


def validate_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    """Normalize and validate a shape tuple."""
    shape = tuple(int(d) for d in shape)
    if not shape:
        raise ShapeError("empty shape")
    if any(d <= 0 for d in shape):
        raise ShapeError(f"non-positive dimension in shape {shape}")
    return shape


def numel(shape: Sequence[int]) -> int:
    """Number of elements of a shape."""
    return math.prod(validate_shape(shape))


def nbytes(shape: Sequence[int]) -> int:
    """Size in bytes of a float32 tensor of this shape."""
    return numel(shape) * DTYPE_BYTES


def is_chw(shape: Sequence[int]) -> bool:
    """True for a 3-D (channels, height, width) feature-map shape."""
    return len(shape) == 3


def is_vector(shape: Sequence[int]) -> bool:
    """True for a 1-D shape."""
    return len(shape) == 1


def conv_output_hw(
    in_hw: Tuple[int, int], kernel: int, stride: int, padding: int
) -> Tuple[int, int]:
    """Spatial output size of a conv/pool window (floor semantics)."""
    h, w = in_hw
    if kernel <= 0 or stride <= 0 or padding < 0:
        raise ShapeError(
            f"bad window: kernel={kernel} stride={stride} padding={padding}"
        )
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"window (k={kernel}, s={stride}, p={padding}) does not fit "
            f"input {in_hw}"
        )
    return out_h, out_w
