"""Neural network substrate: tensors, layers, graphs, and the six paper
benchmark networks."""

from .graph import INPUT, BranchSegment, ChainSegment, NetworkGraph, Node, Segment
from .layer import Layer
from . import layers, models, spec, tensor, weights

__all__ = [
    "INPUT",
    "BranchSegment",
    "ChainSegment",
    "Layer",
    "NetworkGraph",
    "Node",
    "Segment",
    "layers",
    "models",
    "spec",
    "tensor",
    "weights",
]
