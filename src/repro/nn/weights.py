"""Deterministic parameter materialization.

The paper's benchmarks initialize weights host-side and measure inference
latency; values do not matter for timing, but our functional forward passes
need real arrays.  Parameters are generated lazily per layer from a stable
seed derived from ``(network_name, layer_name, param_name)`` so results are
reproducible across processes without storing checkpoints.
"""

from __future__ import annotations

import zlib
from typing import Dict, Mapping, Tuple

import numpy as np


def _seed_for(*parts: str) -> int:
    """Stable 32-bit seed from string parts (crc32, platform independent)."""
    return zlib.crc32("/".join(parts).encode("utf-8")) & 0xFFFFFFFF


def init_param(shape: Tuple[int, ...], *seed_parts: str, scale: float | None = None) -> np.ndarray:
    """He-style initialization with a deterministic per-parameter seed."""
    rng = np.random.default_rng(_seed_for(*seed_parts))
    if scale is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
        scale = float(np.sqrt(2.0 / max(1, fan_in)))
    return rng.normal(0.0, scale, size=shape).astype(np.float32)


def materialize(
    network_name: str,
    layer_name: str,
    param_shapes: Mapping[str, Tuple[int, ...]],
) -> Dict[str, np.ndarray]:
    """Create all parameters of one layer.

    Bias-like parameters (1-D named ``bias``/``beta``/``mean``) start at
    zero; variance-like (``var``) at one; the rest use He init.
    """
    params: Dict[str, np.ndarray] = {}
    for pname, shape in param_shapes.items():
        if pname in ("bias", "beta", "mean"):
            params[pname] = np.zeros(shape, dtype=np.float32)
        elif pname == "var":
            params[pname] = np.ones(shape, dtype=np.float32)
        elif pname == "gamma":
            params[pname] = np.ones(shape, dtype=np.float32)
        else:
            params[pname] = init_param(shape, network_name, layer_name, pname)
    return params
