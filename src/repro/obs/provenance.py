"""Decision provenance: *why* the tuner and memory manager chose what they chose.

EdgeNN's two headline mechanisms are decision procedures:

* the semantic-aware memory manager picks zero-copy (MANAGED) or regular
  allocation per buffer from its data-processing semantics (§IV-B);
* the adaptive tuner picks GPU / CPU / SPLIT per layer by comparing the
  candidate completion times of the paper's Eq. 1-4 (§IV-D), then
  corrects the choice from measured feedback.

A run with observability enabled records every one of those choices here
together with the *candidates it compared* — the estimated cost of the
road not taken — so a report's final numbers can be traced back to the
individual placement decisions that produced them.

The log is append-only and queryable after the run::

    log.placements(buffer="conv1.weights")
    log.partitions(layer="fc6", stage="seed")
    print(log.summary())
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PlacementCandidate:
    """One allocation mechanism considered for a buffer."""

    kind: str            # "managed" | "regular"
    est_cost_s: float    # estimated steady cost of this mechanism
    note: str = ""       # what the estimate models


@dataclass(frozen=True)
class MemoryPlacementRecord:
    """One semantic memory-placement decision (paper §IV-B)."""

    network: str
    buffer: str
    role: str                     # BufferRole value
    policy: str                   # MemoryPolicy value
    chosen: str                   # AllocKind value
    nbytes: float
    stage: str                    # "profile:cpu" | "seed" | "round3" | ...
    candidates: Tuple[PlacementCandidate, ...] = ()
    reason: str = ""


@dataclass(frozen=True)
class PartitionCandidate:
    """One placement considered for a layer, with its predicted time."""

    label: str           # "gpu" | "cpu" | "split"
    cpu_fraction: float
    predicted_s: float


@dataclass(frozen=True)
class PartitionRecord:
    """One intra-kernel partitioning decision (paper Eq. 1-4, §IV-D)."""

    network: str
    layer: str
    stage: str                    # "seed" | "round<N>"
    chosen: str                   # "gpu" | "cpu" | "split"
    cpu_fraction: float
    t_cpu_s: float                # profiled whole-layer CPU time
    t_gpu_s: float                # profiled whole-layer GPU time
    out_bytes: float              # v_o of Eq. 2
    copy_rate: float              # s of Eq. 2
    candidates: Tuple[PartitionCandidate, ...] = ()
    measured_s: Optional[float] = None   # feedback rounds: observed time
    reason: str = ""


@dataclass(frozen=True)
class DegradationRecord:
    """One graceful-degradation decision made under injected faults.

    Emitted by the resilience layer (:mod:`repro.faults`) when it gives
    something up to keep serving: re-tuning against a throttled device,
    abandoning the hybrid plan after repeated kernel failures, demoting
    zero-copy buffers under memory pressure, or discarding a corrupt
    plan artifact.
    """

    network: str
    tenant: str                   # serving tenant, or "" outside serving
    t_s: float                    # virtual instant of the decision
    trigger: str                  # "latency_drift" | "kernel_failures" |
                                  # "memory_pressure" | "artifact_corrupt"
    action: str                   # "retune_throttled" | "fallback_no_hybrid" |
                                  # "demote_zero_copy" | "retune_from_scratch"
    observed_s: Optional[float] = None   # measured cost that tripped it
    predicted_s: Optional[float] = None  # the plan's predicted cost
    reason: str = ""


@dataclass(frozen=True)
class AlertRecord:
    """One SLO burn-rate alert transition (fired or resolved).

    Emitted by :class:`repro.obs.timeline.SloMonitor` when an
    objective's error-budget burn crosses the multi-window alert rule
    in either direction — the observability-level analogue of
    :class:`DegradationRecord` (which records what the serving layer
    *did* about it).
    """

    objective: str                # e.g. "goodput_ratio>=0.99"
    metric: str                   # the timeline metric burned against
    t_s: float                    # virtual instant of the transition
    event: str                    # "fired" | "resolved"
    burn: float                   # burn multiple at the transition
    source: str = ""              # run/timeline source label
    reason: str = ""


@dataclass(frozen=True)
class ScalingRecord:
    """One autoscaling decision made for a fleet model pool.

    Emitted by the cluster autoscaler (:mod:`repro.cluster.autoscaler`)
    whenever a replica is added to or retired from a pool, together with
    the observed signals that triggered it — the fleet-level analogue of
    :class:`DegradationRecord`.
    """

    pool: str                     # model pool name (the network served)
    t_s: float                    # virtual instant of the decision
    action: str                   # "scale_up" | "scale_down"
    replica: str                  # replica added or retired
    device: str                   # the replica's device spec name
    replicas_after: int           # active replicas in the pool afterwards
    queue_depth_mean: float       # signal: mean depth across the pool
    miss_rate: float              # signal: deadline-miss + shed rate
    reason: str = ""


class NullProvenance:
    """Disabled log: recording is a no-op, queries are empty."""

    enabled = False

    def record_placement(self, record: MemoryPlacementRecord) -> None:
        pass

    def record_partition(self, record: PartitionRecord) -> None:
        pass

    def record_degradation(self, record: DegradationRecord) -> None:
        pass

    def record_scaling(self, record: ScalingRecord) -> None:
        pass

    def record_alert(self, record: AlertRecord) -> None:
        pass

    def placements(self, **filters: Any) -> List[MemoryPlacementRecord]:
        return []

    def partitions(self, **filters: Any) -> List[PartitionRecord]:
        return []

    def degradations(self, **filters: Any) -> List[DegradationRecord]:
        return []

    def scalings(self, **filters: Any) -> List[ScalingRecord]:
        return []

    def alerts(self, **filters: Any) -> List[AlertRecord]:
        return []

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(
            {
                "placements": [],
                "partitions": [],
                "degradations": [],
                "scalings": [],
                "alerts": [],
            }
        )

    def summary(self) -> str:
        return "(provenance disabled)"


#: Process-wide disabled log (the default everywhere).
NULL_PROVENANCE = NullProvenance()


@dataclass
class ProvenanceLog:
    """Append-only record of every placement / partition decision."""

    enabled: bool = field(default=True, init=False)
    _placements: List[MemoryPlacementRecord] = field(default_factory=list)
    _partitions: List[PartitionRecord] = field(default_factory=list)
    _degradations: List[DegradationRecord] = field(default_factory=list)
    _scalings: List[ScalingRecord] = field(default_factory=list)
    _alerts: List[AlertRecord] = field(default_factory=list)

    # -- recording -------------------------------------------------------------

    def record_placement(self, record: MemoryPlacementRecord) -> None:
        self._placements.append(record)

    def record_partition(self, record: PartitionRecord) -> None:
        self._partitions.append(record)

    def record_degradation(self, record: DegradationRecord) -> None:
        self._degradations.append(record)

    def record_scaling(self, record: ScalingRecord) -> None:
        self._scalings.append(record)

    def record_alert(self, record: AlertRecord) -> None:
        self._alerts.append(record)

    # -- queries ---------------------------------------------------------------

    @staticmethod
    def _match(record: Any, filters: Dict[str, Any]) -> bool:
        return all(getattr(record, k) == v for k, v in filters.items())

    def placements(self, *, buffer: Optional[str] = None,
                   stage: Optional[str] = None,
                   network: Optional[str] = None,
                   chosen: Optional[str] = None) -> List[MemoryPlacementRecord]:
        filters = {k: v for k, v in (
            ("buffer", buffer), ("stage", stage),
            ("network", network), ("chosen", chosen),
        ) if v is not None}
        return [r for r in self._placements if self._match(r, filters)]

    def partitions(self, *, layer: Optional[str] = None,
                   stage: Optional[str] = None,
                   network: Optional[str] = None,
                   chosen: Optional[str] = None) -> List[PartitionRecord]:
        filters = {k: v for k, v in (
            ("layer", layer), ("stage", stage),
            ("network", network), ("chosen", chosen),
        ) if v is not None}
        return [r for r in self._partitions if self._match(r, filters)]

    def degradations(self, *, network: Optional[str] = None,
                     tenant: Optional[str] = None,
                     trigger: Optional[str] = None,
                     action: Optional[str] = None) -> List[DegradationRecord]:
        filters = {k: v for k, v in (
            ("network", network), ("tenant", tenant),
            ("trigger", trigger), ("action", action),
        ) if v is not None}
        return [r for r in self._degradations if self._match(r, filters)]

    def scalings(self, *, pool: Optional[str] = None,
                 action: Optional[str] = None) -> List[ScalingRecord]:
        filters = {k: v for k, v in (
            ("pool", pool), ("action", action),
        ) if v is not None}
        return [r for r in self._scalings if self._match(r, filters)]

    def alerts(self, *, objective: Optional[str] = None,
               event: Optional[str] = None,
               source: Optional[str] = None) -> List[AlertRecord]:
        filters = {k: v for k, v in (
            ("objective", objective), ("event", event),
            ("source", source),
        ) if v is not None}
        return [r for r in self._alerts if self._match(r, filters)]

    def final_placements(self, network: str) -> Dict[str, MemoryPlacementRecord]:
        """Last recorded decision per buffer — the plan actually executed."""
        out: Dict[str, MemoryPlacementRecord] = {}
        for r in self._placements:
            if r.network == network:
                out[r.buffer] = r
        return out

    def __len__(self) -> int:
        return (
            len(self._placements)
            + len(self._partitions)
            + len(self._degradations)
            + len(self._scalings)
            + len(self._alerts)
        )

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "placements": [asdict(r) for r in self._placements],
            "partitions": [asdict(r) for r in self._partitions],
            "degradations": [asdict(r) for r in self._degradations],
            "scalings": [asdict(r) for r in self._scalings],
            "alerts": [asdict(r) for r in self._alerts],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Human-readable digest of what was decided and why."""
        lines: List[str] = []
        networks = sorted({r.network for r in self._placements}
                          | {r.network for r in self._partitions})
        for net in networks:
            finals = self.final_placements(net)
            managed = sum(1 for r in finals.values() if r.chosen == "managed")
            lines.append(
                f"{net}: {managed}/{len(finals)} buffers zero-copy "
                f"(final plan)"
            )
            parts = self.partitions(network=net)
            splits = [r for r in parts if r.chosen == "split"]
            if parts:
                lines.append(
                    f"  partition decisions: {len(parts)} recorded, "
                    f"{len(splits)} chose a CPU/GPU split"
                )
            for r in splits[-4:]:
                lines.append(
                    f"    {r.layer} [{r.stage}]: p_cpu={r.cpu_fraction:.3f} "
                    f"(t_cpu={r.t_cpu_s * 1e3:.3f}ms, "
                    f"t_gpu={r.t_gpu_s * 1e3:.3f}ms)"
                )
            degradations = self.degradations(network=net)
            for r in degradations:
                lines.append(
                    f"  degraded at t={r.t_s:.3f}s: {r.action} "
                    f"(trigger={r.trigger})"
                )
        for r in self._scalings:
            lines.append(
                f"{r.pool}: {r.action} at t={r.t_s:.3f}s -> "
                f"{r.replicas_after} replicas ({r.replica} on {r.device}; "
                f"depth={r.queue_depth_mean:.2f}, miss={r.miss_rate:.1%})"
            )
        for r in self._alerts:
            lines.append(
                f"SLO {r.objective}: {r.event} at t={r.t_s:.3f}s "
                f"(burn {r.burn:.2f}x)"
            )
        return "\n".join(lines) if lines else "(no decisions recorded)"
