"""repro.obs — unified tracing, metrics, and decision provenance.

One :class:`Observability` object bundles the three instruments the rest
of the library threads through its hot paths:

* :class:`~repro.obs.spans.SpanTracer` — hierarchical spans on the
  virtual clock (request → batch → plan lookup/tune → layer → memcpy);
* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters,
  gauges, and histograms with Prometheus-text and JSON exporters;
* :class:`~repro.obs.provenance.ProvenanceLog` — every memory-placement
  and partition decision with the candidate costs that were compared.

The default everywhere is :data:`NOOP_OBS`, whose three members are
shared no-op singletons — instrumented code paths cost one attribute
check when observability is off, so benchmark numbers are unaffected.

Typical use::

    from repro.obs import Observability

    obs = Observability.on()
    engine = EdgeNN("alexnet", obs=obs)
    engine.run()
    print(obs.tracer.render())
    print(obs.provenance.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .provenance import (
    AlertRecord,
    DegradationRecord,
    MemoryPlacementRecord,
    NullProvenance,
    NULL_PROVENANCE,
    PartitionCandidate,
    PartitionRecord,
    PlacementCandidate,
    ProvenanceLog,
    ScalingRecord,
)
from .spans import NoopTracer, NOOP_TRACER, Span, SpanTracer
from .timeline import (
    BurnRateRule,
    DiffTolerances,
    SloAlert,
    SloMonitor,
    SloObjective,
    SloReport,
    TimelineArtifact,
    TimelineDiff,
    TimelineRecorder,
    diff_timelines,
    sparkline,
)

__all__ = [
    "Observability", "NOOP_OBS",
    "Span", "SpanTracer", "NoopTracer", "NOOP_TRACER",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NullRegistry", "NULL_REGISTRY",
    "ProvenanceLog", "NullProvenance", "NULL_PROVENANCE",
    "MemoryPlacementRecord", "PlacementCandidate",
    "PartitionRecord", "PartitionCandidate", "DegradationRecord",
    "ScalingRecord", "AlertRecord",
    "TimelineRecorder", "TimelineArtifact", "TimelineDiff",
    "DiffTolerances", "diff_timelines", "sparkline",
    "SloObjective", "SloMonitor", "SloAlert", "SloReport",
    "BurnRateRule",
]


@dataclass
class Observability:
    """The bundle of instruments one observed run shares."""

    tracer: Union[SpanTracer, NoopTracer] = field(default_factory=SpanTracer)
    metrics: Union[MetricsRegistry, NullRegistry] = field(
        default_factory=MetricsRegistry
    )
    provenance: Union[ProvenanceLog, NullProvenance] = field(
        default_factory=ProvenanceLog
    )

    @property
    def enabled(self) -> bool:
        """True when at least the tracer records (hot paths gate on this)."""
        return self.tracer.enabled

    @classmethod
    def on(cls) -> "Observability":
        """A fresh, fully enabled bundle."""
        return cls()

    @classmethod
    def off(cls) -> "Observability":
        """The shared disabled bundle (identical to the default)."""
        return NOOP_OBS


#: Process-wide disabled bundle: the default obs everywhere.
NOOP_OBS = Observability(
    tracer=NOOP_TRACER, metrics=NULL_REGISTRY, provenance=NULL_PROVENANCE,
)
