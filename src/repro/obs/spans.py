"""Hierarchical span tracer on the simulator's virtual clock.

Every simulated run — a one-shot inference, a tuning cycle, or a whole
serving simulation — can be narrated as a tree of *spans*: named
intervals carrying attributes, nested by who-called-whom
(request → batch → plan lookup/tune → per-layer execute → memcpy).

Two things make this tracer different from a wall-clock tracer:

* **Virtual time.**  The simulator computes start/end instants itself
  (the discrete-event timeline), so spans take *explicit* virtual
  timestamps via :meth:`Span.set_times` or :meth:`SpanTracer.record`.
  A span whose times were never set inherits the envelope of its
  children on exit — the natural semantics for "this phase covers
  whatever was scheduled inside it".
* **Zero cost when off.**  The default tracer everywhere is
  :data:`NOOP_TRACER`: its ``span()`` returns one shared no-op context
  manager and every mutator is a ``pass``, so instrumented code paths
  add only an attribute access + call when observability is disabled.
  Benchmark numbers must not move (see
  ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One named interval of virtual time, with attributes and children."""

    __slots__ = (
        "span_id", "parent_id", "name", "category",
        "start_s", "end_s", "attrs", "children", "_tracer",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_s = start_s
        self.end_s = end_s
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List[Span] = []
        self._tracer: Optional["SpanTracer"] = None

    # -- mutation --------------------------------------------------------------

    def set_times(self, start_s: float, end_s: float) -> "Span":
        self.start_s = start_s
        self.end_s = end_s
        return self

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def set_attributes(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    # -- derived ---------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        if self.start_s is None or self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def envelope(self) -> tuple:
        """(start, end) covering this span and all descendants."""
        starts = [self.start_s] if self.start_s is not None else []
        ends = [self.end_s] if self.end_s is not None else []
        for child in self.children:
            s, e = child.envelope()
            if s is not None:
                starts.append(s)
            if e is not None:
                ends.append(e)
        return (min(starts) if starts else None,
                max(ends) if ends else None)

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._tracer is not None:
            self._tracer._close(self)
        return None

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.category!r}, "
                f"[{self.start_s}, {self.end_s}], {len(self.children)} children)")


class _NoopSpan:
    """Shared do-nothing span: every mutator returns itself."""

    __slots__ = ()

    def set_times(self, start_s: float, end_s: float) -> "_NoopSpan":
        return self

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def set_attributes(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: all operations are no-ops.

    ``enabled`` is False so hot paths can skip even argument building::

        if obs.enabled:
            obs.tracer.record(...)
    """

    enabled = False

    def span(self, name: str, category: str = "span", **attrs: Any):
        return _NOOP_SPAN

    def record(self, name: str, start_s: float, end_s: float,
               category: str = "span", **attrs: Any):
        return _NOOP_SPAN

    def event(self, name: str, t_s: float, **attrs: Any):
        return _NOOP_SPAN

    @property
    def roots(self) -> List[Span]:
        return []

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []

    def to_json(self, *, indent: int = 2) -> str:
        return "[]"

    def render(self, *, max_depth: Optional[int] = None) -> str:
        return "(tracing disabled)"


#: Process-wide disabled tracer (the default everywhere).
NOOP_TRACER = NoopTracer()


class SpanTracer:
    """Records a forest of nested spans for one observed run."""

    enabled = True

    def __init__(self) -> None:
        self._roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording -------------------------------------------------------------

    def _new_span(self, name: str, category: str,
                  start_s: Optional[float], end_s: Optional[float],
                  attrs: Dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name, category=category,
            start_s=start_s, end_s=end_s, attrs=attrs,
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self._roots.append(span)
        return span

    def span(self, name: str, category: str = "span", **attrs: Any) -> Span:
        """Open a nested span (context manager).

        Times may be set inside the ``with`` block; unset times default
        to the envelope of the span's children on exit.
        """
        span = self._new_span(name, category, None, None, attrs)
        span._tracer = self
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()       # tolerate missed exits of inner spans
        if self._stack:
            self._stack.pop()
        if span.start_s is None or span.end_s is None:
            start, end = span.envelope()
            span.start_s = start if start is not None else 0.0
            span.end_s = end if end is not None else span.start_s

    def record(self, name: str, start_s: float, end_s: float,
               category: str = "span", **attrs: Any) -> Span:
        """Append a completed leaf span under the currently open span."""
        return self._new_span(name, category, start_s, end_s, attrs)

    def event(self, name: str, t_s: float, **attrs: Any) -> Span:
        """A zero-duration marker (arrival, shed, timer...)."""
        return self._new_span(name, "instant", t_s, t_s, attrs)

    # -- queries ---------------------------------------------------------------

    @property
    def roots(self) -> List[Span]:
        return list(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first walk over every recorded span."""
        stack = list(reversed(self._roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        """Every span whose name equals ``name`` or starts with ``name:``."""
        prefix = name + ":"
        return [
            s for s in self.iter_spans()
            if s.name == name or s.name.startswith(prefix)
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_spans())

    # -- export ----------------------------------------------------------------

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps([r.to_dict() for r in self._roots], indent=indent)

    def render(self, *, max_depth: Optional[int] = None) -> str:
        """ASCII tree of the span forest (for CLI output / debugging)."""
        lines: List[str] = []

        def fmt(span: Span, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            start = 0.0 if span.start_s is None else span.start_s
            dur = span.duration_s
            attrs = ""
            if span.attrs:
                inner = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items())
                )
                attrs = f"  [{inner}]"
            lines.append(
                f"{'  ' * depth}{span.name} "
                f"({start * 1e3:.3f}ms +{dur * 1e3:.3f}ms){attrs}"
            )
            for child in span.children:
                fmt(child, depth + 1)

        for root in self._roots:
            fmt(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"
