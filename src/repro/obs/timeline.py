"""Windowed time-series telemetry on the shared virtual clock.

End-of-run aggregates (ServingReport / ClusterReport) cannot tell a run
that degrades steadily from one that loses a whole thermal window — the
numbers are identical.  This module makes the *time axis* a first-class
observability surface:

* :class:`TimelineRecorder` — append-only event buffers the simulators
  feed from their event loops.  Every ``record_*`` hook is an O(1)
  list append (no window arithmetic, no per-request objects on the hot
  path; arrival streams known up front go in via one
  :meth:`~TimelineRecorder.record_offered_bulk` numpy call).  All
  binning happens once, vectorized, in
  :meth:`TimelineRecorder.finish` — including the queue-depth curve,
  which is *derived* from admit/leave events instead of being recorded
  per event, so telemetry adds zero depth hooks to the loops.
* a deterministic fixed-bucket latency sketch per window (bisect into a
  shared bound ladder + overflow count and exact max), from which the
  per-window p50/p95/p99 series and SLO exceedance fractions derive.
* :class:`TimelineArtifact` — the versioned, sha256-digested JSON
  serialization, with the same cross-process bit-identity contract as
  :class:`~repro.cluster.report.ClusterReport`: same run config, same
  digest, in any process.
* :class:`SloMonitor` — declarative objectives (``goodput_ratio >=
  0.99``, ``p99_ms <= 250``) evaluated with SRE-style multi-window
  burn-rate rules; firings/resolutions become provenance
  :class:`~repro.obs.provenance.AlertRecord` s and can drive the
  serving layer's :class:`~repro.faults.DegradationManager`.
* :func:`diff_timelines` — direction-aware behavioral comparison of two
  artifacts (the ``repro timeline diff`` regression gate).

Everything here consumes the *virtual* clock only — lint rule REPRO110
bans wall-clock reads in this file.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pathlib
from bisect import bisect_left
from array import array
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ReproError
from ..units import MEGA
from .provenance import AlertRecord

#: Artifact schema identity (bump on shape changes).
TIMELINE_SCHEMA = "repro.obs.timeline"
TIMELINE_SCHEMA_VERSION = 1

#: Latency sketch bound ladder, in seconds (500 µs .. 60 s, log-ish).
#: Matches :data:`repro.obs.metrics.DEFAULT_BUCKETS` plus a tail for
#: overload runs; observations past the last bound land in the overflow
#: bucket, whose quantile is reported as the window's exact maximum.
SKETCH_BOUNDS_S: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Count series accumulated per window (artifact ``series`` keys).
_COUNT_KEYS = (
    "offered", "served", "shed", "timed_out", "late", "failed",
    "rejected", "batches",
)


def _bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    overflow: int,
    max_value: float,
    q: float,
) -> float:
    """Deterministic nearest-rank quantile over one window's sketch.

    Returns the upper bound of the bucket holding the q-th observation;
    overflow observations report the window's exact maximum (so the
    sketch never understates the tail past its last bound).
    """
    total = int(sum(counts)) + overflow
    if total == 0:
        return 0.0
    # nearest-rank with integer math: ceil(q * total) without float
    # fuzz, at a fixed micro resolution (quantiles are micro-exact).
    micro = int(MEGA)
    rank = max(1, -(-int(q * total * micro) // micro))
    rank = min(rank, total)
    running = 0
    for bound, n in zip(bounds, counts):
        running += int(n)
        if running >= rank:
            return min(bound, max_value) if max_value > 0 else bound
    return max_value


def _widx(times: np.ndarray, window_s: float, n: int) -> np.ndarray:
    """Window index per timestamp — ``floor(t / w)``, so an event
    exactly on an edge opens the next window; clamped into [0, n)."""
    # int64 truncation == floor for t >= 0 (callers validate that),
    # and is ~10x faster than np.floor_divide's C fmod loop.
    idx = (times / window_s).astype(np.int64)
    return np.minimum(idx, n - 1)


def _counted(
    simple: "array", pairs: Sequence[Tuple[float, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge the unit-count fast-path buffer (a typed ``array('d')``,
    viewed zero-copy) with the (t, n) slow path into parallel
    (times, counts) arrays."""
    t = np.frombuffer(simple, dtype=np.float64)
    k = np.ones(t.shape[0], dtype=np.float64)
    if pairs:
        pt, pk = zip(*pairs)
        t = np.concatenate([t, np.asarray(pt, dtype=np.float64)])
        k = np.concatenate([k, np.asarray(pk, dtype=np.float64)])
    return t, k


class TimelineRecorder:
    """Append-only telemetry buffers + one vectorized windowing pass.

    Every ``record_*`` hook is an O(1) list append — no window
    arithmetic, no per-request objects, nothing but tuple construction
    on the simulators' hot paths.  Binning, the latency sketch, busy /
    energy span spreading, and the queue-depth curve are all computed
    once in :meth:`finish` with numpy.  Queue depth is *derived* there
    from admit/leave events (offered/shed/rejected in, batch dispatch /
    queue abandonment out), so the loops carry no dedicated depth hook.

    ``ops`` counts every hook invocation (derived from the buffer
    lengths, so the hooks pay nothing for it) — the analytic overhead
    guard in ``bench_obs_overhead.py`` charges each op at a measured
    per-append rate plus the one-shot measured :meth:`finish` cost.
    """

    __slots__ = (
        "window_s", "source", "meta", "_bounds", "_nb",
        "_offered_bulk", "_offered_t", "_offered_tn",
        "_shed_bulk", "_shed_t", "_shed_tn",
        "_rejected_t", "_rejected_tn",
        "_failed", "_timeouts",
        "_served_t", "_served_n", "_lat",
        "_batches",
    )

    def __init__(
        self,
        window_s: float = 1.0,
        *,
        source: str = "",
        meta: Optional[Mapping[str, str]] = None,
        bounds_s: Sequence[float] = SKETCH_BOUNDS_S,
    ) -> None:
        if window_s <= 0.0:
            raise ReproError(
                f"timeline window width must be > 0, got {window_s}"
            )
        ordered = tuple(bounds_s)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ReproError(
                f"sketch bounds must be strictly increasing: {bounds_s}"
            )
        self.window_s = float(window_s)
        self.source = source
        self.meta: Dict[str, str] = dict(meta or {})
        self._bounds = ordered
        self._nb = len(ordered)
        # Unit-count events split into a typed-buffer fast path (zero-
        # copy ``np.frombuffer`` at finish) and a rare (t, n) slow path.
        self._offered_bulk: List[np.ndarray] = []
        self._offered_t = array("d")
        self._offered_tn: List[Tuple[float, int]] = []
        self._shed_bulk: List[np.ndarray] = []
        self._shed_t = array("d")
        self._shed_tn: List[Tuple[float, int]] = []
        self._rejected_t = array("d")
        self._rejected_tn: List[Tuple[float, int]] = []
        #: (t, n, from_queue) — from_queue=True means the requests left
        #: the queue at t (fail-fast), so they count as depth leaves.
        self._failed: List[Tuple[float, int, bool]] = []
        #: (t, n, late) — late=True marks completed-but-late responses
        #: (already out of the queue); late=False is queue abandonment.
        self._timeouts: List[Tuple[float, int, bool]] = []
        self._served_t = array("d")
        self._served_n = array("q")
        #: one latency chunk per record_served() call — flattened at
        #: finish(); a ~50ns list append beats array.extend() ~10x on
        #: the hot path.
        self._lat: List[Tuple[float, ...]] = []
        #: (start_s, end_s, size, energy_j, busy) per dispatched batch;
        #: ``busy`` stays the caller's ((device_class, busy_s), ...)
        #: tuple — it is unpacked per device class at finish(), not on
        #: the hot path.
        self._batches: List[
            Tuple[float, float, int, float, Tuple]
        ] = []

    @property
    def op_counts(self) -> Dict[str, int]:
        """Public hook invocations so far by hook name, derived from
        the buffer lengths (every hook appends to exactly one buffer).
        Feeds the per-op analytic charging in the overhead guard."""
        return {
            "offered": len(self._offered_t) + len(self._offered_tn)
            + len(self._offered_bulk),
            "shed": len(self._shed_t) + len(self._shed_tn)
            + len(self._shed_bulk),
            "rejected": len(self._rejected_t) + len(self._rejected_tn),
            "failed": len(self._failed),
            "timed_out": len(self._timeouts),
            "served": len(self._served_t),
            "batch": len(self._batches),
        }

    @property
    def ops(self) -> int:
        """Total public hook invocations so far."""
        return sum(self.op_counts.values())

    # -- recording hooks (one append per event-loop site) -----------------

    def record_offered(self, t: float, n: int = 1) -> None:
        if n == 1:
            self._offered_t.append(t)
        else:
            self._offered_tn.append((t, n))

    def record_offered_bulk(self, times_s: Sequence[float]) -> None:
        """Record a whole arrival stream in one call (the cluster loop
        knows every arrival time up front as a numpy array)."""
        arr = np.asarray(times_s, dtype=np.float64)
        if arr.size:
            self._offered_bulk.append(arr)

    def record_shed(self, t: float, n: int = 1) -> None:
        if n == 1:
            self._shed_t.append(t)
        else:
            self._shed_tn.append((t, n))

    def record_shed_bulk(self, times_s: Sequence[float]) -> None:
        """Record one shed request per timestamp in a single call (the
        engine's bulk-admission path sheds whole index spans at once)."""
        arr = np.asarray(times_s, dtype=np.float64)
        if arr.size:
            self._shed_bulk.append(arr)

    def record_rejected(self, t: float, n: int = 1) -> None:
        if n == 1:
            self._rejected_t.append(t)
        else:
            self._rejected_tn.append((t, n))

    def record_failed(
        self, t: float, n: int = 1, *, from_queue: bool = False
    ) -> None:
        """Failed requests; ``from_queue=True`` marks requests failed
        straight out of the queue (fail-fast) rather than after a
        dispatched batch — they count as queue leaves at ``t``."""
        self._failed.append((t, n, from_queue))

    def record_timed_out(
        self, t: float, n: int = 1, *, late: bool = False
    ) -> None:
        """Deadline misses; ``late=True`` marks completed-but-late
        responses (a subset of ``timed_out``, mirroring the reports);
        ``late=False`` is queue abandonment (a depth leave at ``t``)."""
        self._timeouts.append((t, n, late))

    def record_served(
        self, t: float, latencies_s: Sequence[float]
    ) -> None:
        """Bulk-record one completion's served latencies (seconds)."""
        self._lat.append(tuple(latencies_s))
        self._served_t.append(t)
        self._served_n.append(len(latencies_s))

    def record_batch(
        self,
        start_s: float,
        end_s: float,
        size: int,
        *,
        busy: Tuple = (),
        energy_j: float = 0.0,
    ) -> None:
        """One dispatched batch.  ``busy`` is ``((device_class,
        busy_seconds), ...)``; busy time and energy are spread over
        [start, end) proportionally to window overlap at finish()."""
        self._batches.append((start_s, end_s, size, energy_j, busy))

    # -- finalization -----------------------------------------------------

    def _spread(
        self,
        lane: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        values: np.ndarray,
        n: int,
    ) -> None:
        """Add ``values`` into ``lane`` spread over [start, end)
        proportionally to window overlap.  Spans inside one window (the
        overwhelmingly common case) go through one bincount; straddlers
        take a Python loop."""
        w = self.window_s
        sw = _widx(starts, w, n)
        ew = (ends / w).astype(np.int64)
        on_edge = ends == ew * w
        ew = np.clip(np.where(on_edge, ew - 1, ew), 0, n - 1)
        single = ew <= sw
        if np.any(single):
            lane += np.bincount(
                sw[single], weights=values[single], minlength=n
            )
        for i in np.nonzero(~single)[0]:
            start, end, value = starts[i], ends[i], values[i]
            duration = end - start
            for idx in range(int(sw[i]), int(ew[i]) + 1):
                lo, hi = idx * w, (idx + 1) * w
                overlap = min(end, hi) - max(start, lo)
                if overlap <= 0.0:
                    continue
                frac = overlap / duration if duration > 0.0 else 1.0
                lane[idx] += value * frac

    def finish(
        self,
        *,
        horizon_s: float,
        makespan_s: float,
        capacity: Optional[Mapping[str, float]] = None,
    ) -> "TimelineArtifact":
        """Bin every buffered event and materialize the dense artifact.

        ``capacity`` maps device classes to concurrent-unit counts (one
        integrated device: ``{"cpu": 1, "gpu": 1}``; a fleet: replicas
        per base device) and normalizes busy seconds into utilization.
        Reads the buffers without consuming them, so it can be called
        (and timed) repeatedly.
        """
        w = self.window_s
        nb = self._nb

        off_t, off_n = _counted(self._offered_t, self._offered_tn)
        if self._offered_bulk:
            bulk = np.concatenate(self._offered_bulk)
            off_t = np.concatenate([bulk, off_t])
            off_n = np.concatenate(
                [np.ones(bulk.shape[0], dtype=np.float64), off_n]
            )
        shed_t, shed_n = _counted(self._shed_t, self._shed_tn)
        if self._shed_bulk:
            sbulk = np.concatenate(self._shed_bulk)
            shed_t = np.concatenate([sbulk, shed_t])
            shed_n = np.concatenate(
                [np.ones(sbulk.shape[0], dtype=np.float64), shed_n]
            )
        rej_t, rej_n = _counted(self._rejected_t, self._rejected_tn)
        if self._failed:
            f_t_l, f_n_l, f_q_l = zip(*self._failed)
            f_t = np.asarray(f_t_l, dtype=np.float64)
            f_n = np.asarray(f_n_l, dtype=np.float64)
            f_q = np.asarray(f_q_l, dtype=bool)
        else:
            f_t = np.empty(0)
            f_n = np.empty(0)
            f_q = np.empty(0, dtype=bool)
        if self._timeouts:
            to_t_l, to_n_l, to_late_l = zip(*self._timeouts)
            to_t = np.asarray(to_t_l, dtype=np.float64)
            to_n = np.asarray(to_n_l, dtype=np.float64)
            to_late = np.asarray(to_late_l, dtype=bool)
        else:
            to_t = np.empty(0)
            to_n = np.empty(0)
            to_late = np.empty(0, dtype=bool)
        s_t = np.frombuffer(self._served_t, dtype=np.float64)
        s_n = np.frombuffer(self._served_n, dtype=np.int64)
        busy_spans: Dict[str, List[Tuple[float, float, float]]] = {}
        if self._batches:
            b_st_l, b_en_l, b_sz_l, b_ej_l, b_busy_l = zip(*self._batches)
            b_st = np.asarray(b_st_l, dtype=np.float64)
            b_en = np.asarray(b_en_l, dtype=np.float64)
            b_sz = np.asarray(b_sz_l, dtype=np.float64)
            b_ej = np.asarray(b_ej_l, dtype=np.float64)
            for start, end, spans in zip(b_st_l, b_en_l, b_busy_l):
                for name, busy_s in spans:
                    busy_spans.setdefault(name, []).append(
                        (start, end, busy_s)
                    )
        else:
            b_st = np.empty(0)
            b_en = np.empty(0)
            b_sz = np.empty(0)
            b_ej = np.empty(0)

        # One fused pass over every timestamped stream: validate the
        # time range, bin once, and bincount all count series together
        # (numpy's fixed per-call dispatch cost dominates at telemetry
        # volumes, so fewer/larger array ops is the whole game here).
        streams = (off_t, shed_t, rej_t, f_t, to_t, s_t, b_st)
        lengths = [arr.size for arr in streams]
        all_t = np.concatenate(streams)
        t_max = 0.0
        if all_t.size:
            lo = float(all_t.min())
            if lo < 0.0:
                raise ReproError(
                    f"timeline event at t={lo} precedes the virtual "
                    f"clock origin; timestamps must be >= 0"
                )
            t_max = float(all_t.max())

        span = max(makespan_s, horizon_s)
        n = max(
            int(span / w) + (1 if span % w else 0),
            int(t_max / w) + 1,
            1,
        )

        widx_all = _widx(all_t, w, n)
        all_w = np.concatenate(
            [off_n, shed_n, rej_n, f_n, to_n, s_n,
             np.ones(b_st.size, dtype=np.float64)]
        )
        sid = np.repeat(np.arange(len(streams)), lengths)
        fused = np.bincount(
            sid * n + widx_all, weights=all_w,
            minlength=len(streams) * n,
        ).reshape(len(streams), n).astype(np.int64)
        offered, shed, rejected, failed, timed_out, served, batches = fused
        offsets = np.cumsum([0] + lengths)
        to_widx = widx_all[offsets[4]:offsets[5]]
        s_widx = widx_all[offsets[5]:offsets[6]]
        b_widx = widx_all[offsets[6]:offsets[7]]
        late = np.zeros(n, dtype=np.int64)
        if to_t.size:
            late = np.bincount(
                to_widx[to_late], weights=to_n[to_late], minlength=n
            ).astype(np.int64)

        series: Dict[str, List[float]] = {}
        series["offered"] = offered.tolist()
        series["served"] = served.tolist()
        series["shed"] = shed.tolist()
        series["timed_out"] = timed_out.tolist()
        series["late"] = late.tolist()
        series["failed"] = failed.tolist()
        series["rejected"] = rejected.tolist()

        # Batch series, binned at dispatch time.
        series["batches"] = batches.tolist()
        size_sum = np.zeros(n)
        size_max = np.zeros(n)
        if b_st.size:
            size_sum = np.bincount(b_widx, weights=b_sz, minlength=n)
            np.maximum.at(size_max, b_widx, b_sz)
        series["batch_size_mean"] = [
            float(s / c) if c else 0.0
            for s, c in zip(size_sum, batches)
        ]
        series["batch_size_max"] = np.rint(size_max).astype(
            np.int64
        ).tolist()

        # Queue depth, derived from admit/leave deltas: arrivals enter
        # (minus shed/rejected, which never admit), dispatched batches,
        # queue abandons, and fail-fast failures leave.
        delta_t = np.concatenate([
            off_t, shed_t, rej_t, f_t[f_q], to_t[~to_late], b_st,
        ])
        delta_v = np.concatenate([
            off_n, -shed_n, -rej_n, -f_n[f_q], -to_n[~to_late], -b_sz,
        ])
        depth_mean = np.zeros(n)
        depth_max = np.zeros(n)
        if delta_t.size:
            uniq, inv = np.unique(delta_t, return_inverse=True)
            net = np.bincount(inv, weights=delta_v)
            # Clamp: simulators that only record a subset of the event
            # kinds (or tests feeding partial streams) must not push
            # the derived curve negative.
            depth_lvl = np.maximum(np.cumsum(net), 0.0)
            knots = np.append(uniq, max(float(span), float(uniq[-1])))
            integral = np.concatenate(
                [[0.0], np.cumsum(depth_lvl * np.diff(knots))]
            )
            edges = np.arange(n + 1, dtype=np.float64) * w
            at_edges = np.interp(edges, knots, integral)
            depth_mean = np.diff(at_edges) / w
            np.maximum.at(depth_max, _widx(knots[:-1], w, n), depth_lvl)
            ew = (knots[1:] / w).astype(np.int64)
            on_edge = knots[1:] == ew * w
            ew = np.clip(np.where(on_edge, ew - 1, ew), 0, n - 1)
            sw = _widx(knots[:-1], w, n)
            for i in np.nonzero(ew > sw)[0]:
                seg = depth_max[sw[i]:ew[i] + 1]
                np.maximum(seg, depth_lvl[i], out=seg)
        series["queue_depth_mean"] = depth_mean.tolist()
        series["queue_depth_max"] = np.rint(depth_max).astype(
            np.int64
        ).tolist()

        # Latency sketch: one flat histogram over (window, bucket).
        lat = np.fromiter(
            itertools.chain.from_iterable(self._lat), dtype=np.float64
        )
        lat_counts_2d = np.zeros((n, nb + 1), dtype=np.int64)
        lat_sum = np.zeros(n)
        lat_max = np.zeros(n)
        if lat.size:
            lw = np.repeat(s_widx, s_n)
            bidx = np.searchsorted(
                np.asarray(self._bounds), lat, side="left"
            )
            bidx = np.minimum(bidx, nb)
            lat_counts_2d = np.bincount(
                lw * (nb + 1) + bidx, minlength=n * (nb + 1)
            ).reshape(n, nb + 1)
            lat_sum = np.bincount(lw, weights=lat, minlength=n)
            np.maximum.at(lat_max, lw, lat)
        series["latency_mean_ms"] = [
            float(s / c * 1e3) if c else 0.0
            for s, c in zip(lat_sum, served)
        ]
        series["latency_max_ms"] = [
            float(v * 1e3) if c else 0.0
            for v, c in zip(lat_max, served)
        ]
        for key, q in (
            ("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99),
        ):
            series[key] = [
                float(_bucket_quantile(
                    self._bounds, lat_counts_2d[i, :nb],
                    int(lat_counts_2d[i, nb]), float(lat_max[i]), q,
                ) * 1e3) if served[i] else 0.0
                for i in range(n)
            ]

        # Energy and per-class busy seconds, spread over span overlap.
        energy = np.zeros(n)
        if b_st.size:
            self._spread(energy, b_st, b_en, b_ej, n)
        series["energy_j"] = energy.tolist()
        caps = dict(capacity or {})
        utilization: Dict[str, List[float]] = {}
        lanes: Dict[str, np.ndarray] = {
            name: np.zeros(n) for name in caps
        }
        for name in sorted(busy_spans):
            cols = list(zip(*busy_spans[name]))
            lane = lanes.get(name)
            if lane is None:
                lane = lanes[name] = np.zeros(n)
            self._spread(
                lane,
                np.asarray(cols[0], dtype=np.float64),
                np.asarray(cols[1], dtype=np.float64),
                np.asarray(cols[2], dtype=np.float64),
                n,
            )
        for name in sorted(lanes):
            cap = max(caps.get(name, 1.0), 1e-12)
            utilization[name] = [
                float(min(1.0, v / (w * cap))) for v in lanes[name]
            ]

        series["goodput_rps"] = [float(v / w) for v in served]
        series["throughput_rps"] = [
            float((s + lt) / w) for s, lt in zip(served, late)
        ]
        return TimelineArtifact(
            source=self.source,
            window_s=w,
            windows=n,
            horizon_s=horizon_s,
            makespan_s=makespan_s,
            meta=dict(self.meta),
            capacity={k: float(v) for k, v in sorted(caps.items())},
            series=series,
            utilization=utilization,
            latency_bounds_ms=[b * 1e3 for b in self._bounds],
            latency_counts=lat_counts_2d.tolist(),
        )


# -- the serialized artifact --------------------------------------------------


@dataclass
class TimelineArtifact:
    """Versioned, digest-stable windowed telemetry of one run."""

    source: str
    window_s: float
    windows: int
    horizon_s: float
    makespan_s: float
    meta: Dict[str, str] = field(default_factory=dict)
    capacity: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)
    utilization: Dict[str, List[float]] = field(default_factory=dict)
    latency_bounds_ms: List[float] = field(default_factory=list)
    latency_counts: List[List[int]] = field(default_factory=list)
    schema: str = TIMELINE_SCHEMA
    version: int = TIMELINE_SCHEMA_VERSION

    # -- derived metrics --------------------------------------------------

    def times_s(self) -> List[float]:
        """Window start instants."""
        return [i * self.window_s for i in range(self.windows)]

    def outcomes(self) -> List[int]:
        """Terminal outcomes per window (the goodput_ratio denominator)."""
        keys = ("served", "shed", "timed_out", "failed", "rejected")
        rows = [self.series[k] for k in keys]
        return [int(sum(vals)) for vals in zip(*rows)]

    def metric(self, name: str) -> List[float]:
        """One per-window metric series by name (stored or derived).

        Derived names: ``goodput_ratio``, ``shed_rate``, ``miss_rate``,
        ``error_rate`` (over terminal outcomes; traffic-free windows
        report the healthy value), and ``util:<device-class>``.
        """
        if name in self.series:
            return list(self.series[name])
        if name.startswith("util:"):
            lane = self.utilization.get(name[len("util:"):])
            if lane is None:
                raise ReproError(
                    f"unknown utilization class {name!r}; have "
                    f"{sorted('util:' + k for k in self.utilization)}"
                )
            return list(lane)
        outcomes = self.outcomes()
        if name == "goodput_ratio":
            served = self.series["served"]
            return [
                s / o if o else 1.0 for s, o in zip(served, outcomes)
            ]
        rates = {
            "shed_rate": "shed",
            "miss_rate": "timed_out",
        }
        if name in rates:
            top = self.series[rates[name]]
            return [v / o if o else 0.0 for v, o in zip(top, outcomes)]
        if name == "error_rate":
            failed = self.series["failed"]
            rejected = self.series["rejected"]
            return [
                (f + r) / o if o else 0.0
                for f, r, o in zip(failed, rejected, outcomes)
            ]
        known = sorted(
            list(self.series)
            + ["goodput_ratio", "shed_rate", "miss_rate", "error_rate"]
            + ["util:" + k for k in self.utilization]
        )
        raise ReproError(f"unknown timeline metric {name!r}; have {known}")

    def total(self, key: str) -> float:
        return float(sum(self.series[key]))

    def exceedance(self, threshold_ms: float) -> List[float]:
        """Per-window fraction of served requests slower than the
        threshold (from the sketch; the burn substrate for p* SLOs)."""
        bounds = self.latency_bounds_ms
        cut = bisect_left(bounds, threshold_ms)
        out: List[float] = []
        for row in self.latency_counts:
            total = sum(row)
            if not total:
                out.append(0.0)
                continue
            # buckets with upper bound <= threshold hold fast requests;
            # the boundary bucket counts as fast iff its bound matches.
            if cut < len(bounds) and bounds[cut] == threshold_ms:
                fast = sum(row[: cut + 1])
            else:
                fast = sum(row[:cut])
            out.append((total - fast) / total)
        return out

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "version": self.version,
            "source": self.source,
            "window_s": self.window_s,
            "windows": self.windows,
            "horizon_s": self.horizon_s,
            "makespan_s": self.makespan_s,
            "meta": dict(sorted(self.meta.items())),
            "capacity": dict(sorted(self.capacity.items())),
            "series": {k: list(v) for k, v in sorted(self.series.items())},
            "utilization": {
                k: list(v) for k, v in sorted(self.utilization.items())
            },
            "latency_bounds_ms": list(self.latency_bounds_ms),
            "latency_counts": [list(r) for r in self.latency_counts],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """sha256 over the sorted-keys JSON — bit-identical across
        processes for the same run configuration."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def save(self, path) -> pathlib.Path:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json(indent=1) + "\n")
        return target

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "TimelineArtifact":
        schema = doc.get("schema")
        if schema != TIMELINE_SCHEMA:
            raise ReproError(
                f"not a timeline artifact: schema {schema!r} "
                f"(expected {TIMELINE_SCHEMA!r})"
            )
        version = doc.get("version")
        if version != TIMELINE_SCHEMA_VERSION:
            raise ReproError(
                f"unsupported timeline artifact version {version!r} "
                f"(this build reads version {TIMELINE_SCHEMA_VERSION})"
            )
        try:
            return cls(
                source=str(doc["source"]),
                window_s=float(doc["window_s"]),          # type: ignore[arg-type]
                windows=int(doc["windows"]),              # type: ignore[arg-type]
                horizon_s=float(doc["horizon_s"]),        # type: ignore[arg-type]
                makespan_s=float(doc["makespan_s"]),      # type: ignore[arg-type]
                meta=dict(doc.get("meta", {})),           # type: ignore[arg-type]
                capacity=dict(doc.get("capacity", {})),   # type: ignore[arg-type]
                series=dict(doc["series"]),               # type: ignore[arg-type]
                utilization=dict(doc.get("utilization", {})),  # type: ignore[arg-type]
                latency_bounds_ms=list(doc["latency_bounds_ms"]),  # type: ignore[arg-type]
                latency_counts=[list(r) for r in doc["latency_counts"]],  # type: ignore[union-attr]
            )
        except KeyError as exc:
            raise ReproError(
                f"timeline artifact is missing field {exc}"
            ) from exc

    @classmethod
    def load(cls, path) -> "TimelineArtifact":
        source = pathlib.Path(path)
        try:
            doc = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"cannot read timeline artifact {source}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ReproError(
                f"timeline artifact {source} is not a JSON object"
            )
        return cls.from_dict(doc)

    # -- rendering --------------------------------------------------------

    def describe(
        self,
        metrics: Optional[Sequence[str]] = None,
        *,
        width: int = 64,
    ) -> str:
        """ASCII sparkline dashboard of the run."""
        names = list(metrics) if metrics else [
            "goodput_rps", "throughput_rps", "shed_rate", "miss_rate",
            "queue_depth_mean", "batch_size_mean", "p99_ms", "energy_j",
        ] + [f"util:{k}" for k in sorted(self.utilization)]
        served = self.total("served")
        offered = self.total("offered")
        lines = [
            f"timeline: {self.source or 'run'} — {self.windows} windows × "
            f"{self.window_s:g} s (makespan {self.makespan_s:.2f} s)",
            f"  offered {offered:.0f}, served {served:.0f}, shed "
            f"{self.total('shed'):.0f}, timed out "
            f"{self.total('timed_out'):.0f}, failed "
            f"{self.total('failed'):.0f}, rejected "
            f"{self.total('rejected'):.0f}",
        ]
        label_w = max((len(n) for n in names), default=0)
        for name in names:
            values = self.metric(name)
            lines.append(
                f"  {name:<{label_w}} {sparkline(values, width=width)} "
                f"min {min(values):g}  max {max(values):g}  "
                f"last {values[-1]:g}"
            )
        return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int = 64) -> str:
    """Render a series as unicode block characters (▁..█).

    Series longer than ``width`` are downsampled by window-mean so the
    shape survives; a flat series renders as a flat mid-level bar.
    """
    if not values:
        return ""
    vals = list(values)
    if len(vals) > width:
        step = len(vals) / width
        vals = [
            sum(vals[int(i * step):max(int((i + 1) * step), int(i * step) + 1)])
            / max(int((i + 1) * step) - int(i * step), 1)
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    # Treat float-noise-level spreads as flat so a constant series does
    # not render as full-scale variation.
    if hi - lo <= 1e-9 * max(abs(hi), abs(lo)):
        return _SPARK_CHARS[3] * len(vals)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(
        _SPARK_CHARS[int((v - lo) * scale + 0.5)] for v in vals
    )


# -- behavioral diff / regression gate ----------------------------------------


@dataclass(frozen=True)
class DiffTolerances:
    """Direction-aware regression thresholds for :func:`diff_timelines`."""

    #: relative drop in total served requests that counts as regression.
    max_goodput_drop: float = 0.05
    #: relative overall-p99 increase that counts as regression (with an
    #: absolute floor so microsecond noise never gates).
    max_p99_increase: float = 0.10
    p99_floor_ms: float = 1.0
    #: absolute increase in overall shed / deadline-miss rate.
    max_rate_increase: float = 0.02


@dataclass
class TimelineDiff:
    """Outcome of comparing a current timeline against a baseline."""

    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        lines: List[str] = []
        for text in self.regressions:
            lines.append(f"REGRESSION: {text}")
        for text in self.improvements:
            lines.append(f"improved: {text}")
        for text in self.notes:
            lines.append(f"note: {text}")
        lines.append(
            "verdict: regression" if self.regressed else "verdict: OK"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "regressed": self.regressed,
            "regressions": list(self.regressions),
            "improvements": list(self.improvements),
            "notes": list(self.notes),
        }


def _overall_quantile_ms(artifact: TimelineArtifact, q: float) -> float:
    """Run-wide latency quantile from the merged window sketches."""
    merged = [0] * (len(artifact.latency_bounds_ms) + 1)
    for row in artifact.latency_counts:
        for i, c in enumerate(row):
            merged[i] += c
    max_ms = max(artifact.series["latency_max_ms"], default=0.0)
    return _bucket_quantile(
        artifact.latency_bounds_ms, merged[:-1], merged[-1], max_ms, q
    )


def _overall_rate(artifact: TimelineArtifact, key: str) -> float:
    outcomes = sum(artifact.outcomes())
    return artifact.total(key) / outcomes if outcomes else 0.0


def diff_timelines(
    baseline: TimelineArtifact,
    current: TimelineArtifact,
    tolerances: Optional[DiffTolerances] = None,
) -> TimelineDiff:
    """Compare ``current`` against a committed ``baseline`` timeline.

    Directions matter: goodput down, tail latency up, and shed/miss
    rates up are regressions; movements the other way are reported as
    improvements and never gate.
    """
    tol = tolerances or DiffTolerances()
    diff = TimelineDiff()
    if baseline.window_s != current.window_s:
        diff.regressions.append(
            f"window width changed: baseline {baseline.window_s:g} s vs "
            f"current {current.window_s:g} s (timelines not comparable)"
        )
        return diff
    if baseline.source != current.source:
        diff.notes.append(
            f"source changed: {baseline.source!r} -> {current.source!r}"
        )

    base_served = baseline.total("served")
    cur_served = current.total("served")
    if base_served > 0:
        change = (cur_served - base_served) / base_served
        if change < -tol.max_goodput_drop:
            diff.regressions.append(
                f"total served dropped {-change:.1%} "
                f"({base_served:.0f} -> {cur_served:.0f}; tolerance "
                f"{tol.max_goodput_drop:.0%})"
            )
        elif change > tol.max_goodput_drop:
            diff.improvements.append(
                f"total served up {change:.1%} "
                f"({base_served:.0f} -> {cur_served:.0f})"
            )

    base_p99 = _overall_quantile_ms(baseline, 0.99)
    cur_p99 = _overall_quantile_ms(current, 0.99)
    if base_p99 > 0:
        increase = (cur_p99 - base_p99) / base_p99
        if (
            increase > tol.max_p99_increase
            and cur_p99 - base_p99 > tol.p99_floor_ms
        ):
            diff.regressions.append(
                f"overall p99 up {increase:.1%} ({base_p99:.2f} ms -> "
                f"{cur_p99:.2f} ms; tolerance {tol.max_p99_increase:.0%})"
            )
        elif increase < -tol.max_p99_increase:
            diff.improvements.append(
                f"overall p99 down {-increase:.1%} "
                f"({base_p99:.2f} ms -> {cur_p99:.2f} ms)"
            )

    for key, label in (("shed", "shed rate"), ("timed_out", "miss rate")):
        base_rate = _overall_rate(baseline, key)
        cur_rate = _overall_rate(current, key)
        delta = cur_rate - base_rate
        if delta > tol.max_rate_increase:
            diff.regressions.append(
                f"{label} up {delta:+.2%} absolute ({base_rate:.2%} -> "
                f"{cur_rate:.2%}; tolerance {tol.max_rate_increase:.0%})"
            )
        elif delta < -tol.max_rate_increase:
            diff.improvements.append(
                f"{label} down {delta:+.2%} absolute ({base_rate:.2%} -> "
                f"{cur_rate:.2%})"
            )

    if baseline.windows != current.windows:
        diff.notes.append(
            f"window count changed: {baseline.windows} -> "
            f"{current.windows}"
        )
    return diff


# -- SLO objectives and burn-rate alerting ------------------------------------

#: Implied per-window error budget of quantile objectives: ``p99_ms <=
#: X`` tolerates 1% of requests past X, so burn = exceedance / 1%.
_QUANTILE_BUDGETS = {"p50_ms": 0.50, "p95_ms": 0.05, "p99_ms": 0.01}

#: Metrics where the objective constrains a good-fraction from below.
_GOOD_RATIO_METRICS = {"goodput_ratio"}
#: Metrics where the objective bounds a bad-fraction from above.
_BAD_RATE_METRICS = {"shed_rate", "miss_rate", "error_rate"}


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective, e.g. ``goodput_ratio >= 0.99``."""

    metric: str
    op: str                     # ">=" or "<="
    threshold: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in (">=", "<="):
            raise ReproError(
                f"SLO operator must be >= or <=, got {self.op!r}"
            )
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.metric}{self.op}{self.threshold:g}"
            )

    @classmethod
    def parse(cls, text: str) -> "SloObjective":
        """Parse ``"metric>=value"`` / ``"metric<=value"`` (CLI form)."""
        for op in (">=", "<="):
            if op in text:
                metric, _, value = text.partition(op)
                metric = metric.strip()
                try:
                    threshold = float(value)
                except ValueError:
                    raise ReproError(
                        f"SLO threshold must be numeric, got {text!r}"
                    ) from None
                if not metric:
                    raise ReproError(f"SLO is missing a metric: {text!r}")
                return cls(metric=metric, op=op, threshold=threshold)
        raise ReproError(
            f"cannot parse SLO {text!r}; expected METRIC>=VALUE or "
            f"METRIC<=VALUE (e.g. 'goodput_ratio>=0.99', 'p99_ms<=250')"
        )

    def bad_fractions(self, artifact: TimelineArtifact) -> List[float]:
        """Per-window bad fraction in [0, 1] this objective burns on."""
        if self.metric in _QUANTILE_BUDGETS:
            return artifact.exceedance(self.threshold)
        values = artifact.metric(self.metric)
        if self.metric in _GOOD_RATIO_METRICS:
            return [max(0.0, min(1.0, 1.0 - v)) for v in values]
        if self.metric in _BAD_RATE_METRICS:
            return [max(0.0, min(1.0, v)) for v in values]
        # Threshold metric (queue depth, batch size, utilization...):
        # a window is simply in or out of compliance.
        if self.op == "<=":
            return [1.0 if v > self.threshold else 0.0 for v in values]
        return [1.0 if v < self.threshold else 0.0 for v in values]

    def budget(self) -> float:
        """Per-window error budget the burn rate is measured against."""
        if self.metric in _QUANTILE_BUDGETS:
            return _QUANTILE_BUDGETS[self.metric]
        if self.metric in _GOOD_RATIO_METRICS:
            return max(1.0 - self.threshold, 1e-9)
        if self.metric in _BAD_RATE_METRICS:
            return max(self.threshold, 1e-9)
        return 1.0


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window burn-rate alerting (the SRE workbook shape).

    An alert fires when the error-budget burn rate exceeds ``factor``
    over *both* the short and the long trailing window — the short
    window makes alerts reset quickly, the long one keeps one bad
    window from paging.
    """

    short_windows: int = 1
    long_windows: int = 5
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ReproError(
                f"burn-rate windows must satisfy 1 <= short <= long, got "
                f"short={self.short_windows} long={self.long_windows}"
            )
        if self.factor <= 0.0:
            raise ReproError(
                f"burn-rate factor must be > 0, got {self.factor}"
            )


@dataclass(frozen=True)
class SloAlert:
    """One alert firing (and optional resolution) for one objective."""

    objective: str
    metric: str
    fired_at_s: float
    resolved_at_s: Optional[float]
    peak_burn: float
    windows: int                 # windows spent in the firing state

    @property
    def resolved(self) -> bool:
        return self.resolved_at_s is not None


@dataclass
class SloReport:
    """All objectives evaluated against one timeline."""

    source: str
    objectives: Tuple[SloObjective, ...]
    rule: BurnRateRule
    alerts: List[SloAlert] = field(default_factory=list)
    #: peak observed burn per objective name (alerting or not).
    peak_burn: Dict[str, float] = field(default_factory=dict)

    @property
    def firing(self) -> bool:
        return bool(self.alerts)

    def render(self) -> str:
        lines = [
            f"SLO evaluation ({self.source or 'run'}): "
            f"{len(self.objectives)} objective(s), rule "
            f"{self.rule.short_windows}w/{self.rule.long_windows}w × "
            f"{self.rule.factor:g}"
        ]
        for objective in self.objectives:
            peak = self.peak_burn.get(objective.name, 0.0)
            fired = [
                a for a in self.alerts if a.objective == objective.name
            ]
            status = (
                f"FIRED {len(fired)}x" if fired else "ok"
            )
            lines.append(
                f"  {objective.name:<28} peak burn {peak:7.2f}x  {status}"
            )
        for alert in self.alerts:
            until = (
                f"resolved at t={alert.resolved_at_s:.1f} s"
                if alert.resolved
                else "unresolved at end of run"
            )
            lines.append(
                f"  alert {alert.objective}: fired at "
                f"t={alert.fired_at_s:.1f} s ({alert.windows} windows, "
                f"peak burn {alert.peak_burn:.2f}x), {until}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "firing": self.firing,
            "objectives": [o.name for o in self.objectives],
            "peak_burn": dict(sorted(self.peak_burn.items())),
            "alerts": [
                {
                    "objective": a.objective,
                    "metric": a.metric,
                    "fired_at_s": a.fired_at_s,
                    "resolved_at_s": a.resolved_at_s,
                    "peak_burn": a.peak_burn,
                    "windows": a.windows,
                }
                for a in self.alerts
            ],
        }


class SloMonitor:
    """Evaluates declarative objectives over a finished timeline.

    Post-run evaluation keeps the simulators' hot loops untouched: the
    recorder already holds everything the burn computation needs, so
    alerting adds zero per-event cost.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        rule: Optional[BurnRateRule] = None,
    ) -> None:
        if not objectives:
            raise ReproError("SloMonitor needs at least one objective")
        self.objectives = tuple(objectives)
        self.rule = rule or BurnRateRule()

    def evaluate(self, artifact: TimelineArtifact) -> SloReport:
        rule = self.rule
        report = SloReport(
            source=artifact.source, objectives=self.objectives, rule=rule
        )
        outcomes = artifact.outcomes()
        w = artifact.window_s
        for objective in self.objectives:
            bad = objective.bad_fractions(artifact)
            budget = objective.budget()
            weights = [float(o) if o else 0.0 for o in outcomes]
            burns: List[float] = []
            firing_since: Optional[int] = None
            peak_overall = 0.0
            peak_alert = 0.0
            for i, fraction in enumerate(bad):
                burns.append(fraction / budget)
                short = _trailing_mean(
                    burns, weights, i, rule.short_windows
                )
                long = _trailing_mean(burns, weights, i, rule.long_windows)
                burn = min(short, long)
                peak_overall = max(peak_overall, burn)
                if short >= rule.factor and long >= rule.factor:
                    if firing_since is None:
                        firing_since = i
                        peak_alert = burn
                    else:
                        peak_alert = max(peak_alert, burn)
                elif firing_since is not None:
                    report.alerts.append(SloAlert(
                        objective=objective.name,
                        metric=objective.metric,
                        fired_at_s=firing_since * w,
                        resolved_at_s=i * w,
                        peak_burn=peak_alert,
                        windows=i - firing_since,
                    ))
                    firing_since = None
            if firing_since is not None:
                report.alerts.append(SloAlert(
                    objective=objective.name,
                    metric=objective.metric,
                    fired_at_s=firing_since * w,
                    resolved_at_s=None,
                    peak_burn=peak_alert,
                    windows=len(bad) - firing_since,
                ))
            report.peak_burn[objective.name] = peak_overall
        return report

    def record(self, report: SloReport, obs) -> None:
        """Mirror alert firings/resolutions into the provenance log and
        metrics registry (no-op with observability disabled)."""
        if not obs.enabled:
            return
        counter = obs.metrics.counter(
            "repro_slo_alerts_total",
            "SLO burn-rate alert transitions",
            labels=("objective", "event"),
        )
        for alert in report.alerts:
            obs.provenance.record_alert(AlertRecord(
                objective=alert.objective,
                metric=alert.metric,
                t_s=alert.fired_at_s,
                event="fired",
                burn=alert.peak_burn,
                source=report.source,
                reason=(
                    f"burn {alert.peak_burn:.2f}x over budget for "
                    f"{alert.windows} window(s)"
                ),
            ))
            counter.labels(objective=alert.objective, event="fired").inc()
            if alert.resolved:
                obs.provenance.record_alert(AlertRecord(
                    objective=alert.objective,
                    metric=alert.metric,
                    t_s=float(alert.resolved_at_s or 0.0),
                    event="resolved",
                    burn=0.0,
                    source=report.source,
                    reason="burn rate back under the alert factor",
                ))
                counter.labels(
                    objective=alert.objective, event="resolved"
                ).inc()

    def apply(self, report: SloReport, degradation, network: str) -> int:
        """Drive :class:`~repro.faults.DegradationManager` hooks from
        alert firings; returns the number of hooks invoked."""
        if degradation is None:
            return 0
        for alert in report.alerts:
            degradation.note_slo_alert(
                tenant="",
                network=network,
                objective=alert.objective,
                now=alert.fired_at_s,
                burn=alert.peak_burn,
            )
        return len(report.alerts)


def _trailing_mean(
    burns: List[float],
    weights: List[float],
    end: int,
    span: int,
) -> float:
    """Traffic-weighted mean burn over ``burns[end-span+1 .. end]``.

    Windows with no traffic carry no weight; an all-idle span burns 0.
    """
    start = max(0, end - span + 1)
    weight = 0.0
    total = 0.0
    for i in range(start, end + 1):
        weight += weights[i]
        total += burns[i] * weights[i]
    return total / weight if weight > 0.0 else 0.0


#: Callable registry of derived metrics (documentation + CLI listing).
METRIC_HELP: Dict[str, str] = {
    "goodput_rps": "served requests per second",
    "throughput_rps": "served + late responses per second",
    "goodput_ratio": "served / terminal outcomes",
    "shed_rate": "shed / terminal outcomes",
    "miss_rate": "timed out / terminal outcomes",
    "error_rate": "(failed + rejected) / terminal outcomes",
    "queue_depth_mean": "time-weighted queue depth",
    "queue_depth_max": "peak queue depth",
    "batch_size_mean": "mean dispatched batch size",
    "p50_ms": "windowed latency median (sketch)",
    "p95_ms": "windowed latency p95 (sketch)",
    "p99_ms": "windowed latency p99 (sketch)",
    "energy_j": "energy drawn in the window",
}

_MetricFn = Callable[[TimelineArtifact], List[float]]
_Number = Union[int, float]


__all__ = [
    "BurnRateRule",
    "DiffTolerances",
    "METRIC_HELP",
    "SKETCH_BOUNDS_S",
    "SloAlert",
    "SloMonitor",
    "SloObjective",
    "SloReport",
    "TIMELINE_SCHEMA",
    "TIMELINE_SCHEMA_VERSION",
    "TimelineArtifact",
    "TimelineDiff",
    "TimelineRecorder",
    "diff_timelines",
    "sparkline",
]
