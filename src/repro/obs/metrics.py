"""Labeled counters, gauges, and histograms with a Prometheus-style API.

The registry is deliberately tiny — enough to answer "how effective was
the plan cache", "how deep did the queue get", "what batch sizes did the
batcher produce" — while staying dependency-free and deterministic (no
wall-clock timestamps; everything is driven by the virtual clock or by
event counts).

Exporters live in :mod:`repro.obs.export` (Prometheus text format and
JSON).  The disabled registry (:data:`NULL_REGISTRY`) hands out one
shared do-nothing instrument so instrumented code costs almost nothing
when observability is off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Default latency-style buckets, in seconds (500 µs .. 10 s, log-ish).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for batch-size style distributions.
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, in-flight batches)."""

    __slots__ = ("_value", "_max")

    def __init__(self) -> None:
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        self._value = value
        self._max = max(self._max, value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    @property
    def max_value(self) -> float:
        """Highest value ever set (handy for queue-depth high-water marks)."""
        return self._max


class Histogram:
    """Fixed-bucket histogram with sum and count (Prometheus semantics)."""

    __slots__ = ("buckets", "_bucket_counts", "_sum", "_count", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ReproError(
                f"histogram buckets must be strictly increasing: {buckets}"
            )
        self.buckets = ordered
        self._bucket_counts = [0] * len(ordered)   # non-cumulative
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        if value > self._max:
            self._max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._bucket_counts[i] += 1
                return
        # falls into the explicit +Inf overflow bucket only

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def max_value(self) -> float:
        """Largest observation (exact; bounds the +Inf overflow bucket)."""
        return self._max

    def quantile(self, q: float) -> float:
        """Deterministic nearest-rank quantile from the bucket counts.

        Returns the upper bound of the bucket holding the q-th
        observation; observations past the last bound report the exact
        maximum, so tail quantiles are never understated to a finite
        bound they exceed.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if not self._count:
            return 0.0
        rank = max(1, -(-q * self._count // 1))   # ceil(q * count)
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            if running >= rank:
                return min(bound, self._max)
        return self._max

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """[(upper_bound, cumulative_count), ...] ending with (+inf, count)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self._count))
        return out

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label set and per-label-value children."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """The child instrument for one concrete label assignment."""
        if set(labels) != set(self.label_names):
            raise ReproError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self._buckets or DEFAULT_BUCKETS)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    # Label-free convenience: family proxies to its single child.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, instrument) pairs in insertion order."""
        return list(self._children.items())


class _NullInstrument:
    """Shared sink: accepts every metric operation and discards it."""

    __slots__ = ()

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every metric is the shared null instrument."""

    enabled = False

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> List[MetricFamily]:
        return []


#: Process-wide disabled registry (the default everywhere).
NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Holds every metric family of one observed run."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(self, name: str, kind: str, help: str,
                       labels: Iterable[str],
                       buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        label_names = tuple(labels)
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != label_names:
                raise ReproError(
                    f"metric {name!r} re-registered as {kind} with labels "
                    f"{label_names}; it is a {family.kind} with "
                    f"{family.label_names}"
                )
            return family
        family = MetricFamily(name, kind, help, label_names, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> MetricFamily:
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> MetricFamily:
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._get_or_create(name, "histogram", help, labels, buckets)

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name (export order)."""
        return [self._families[n] for n in sorted(self._families)]

    def family(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError as exc:
            raise ReproError(f"unknown metric {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
