"""Exporters: Prometheus text, metrics JSON, and merged Chrome traces.

The Chrome-trace builder is the piece that makes the observability layer
*unified*: it merges the kernel-level timeline of
:class:`repro.sim.trace.Trace` (CPU/GPU/copy rows, and the serving
``device`` row) with request-lifecycle events from the serving layer —
one async track per request (enqueue → complete) plus paired flow events
(``ph: "s"`` at enqueue, ``ph: "f"`` at dispatch) — so a single
``trace.json`` loaded into Perfetto (https://ui.perfetto.dev) shows the
whole stack: which kernel ran while which request waited in which queue.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .. import units
from .metrics import Gauge, Histogram

#: pid of the simulator (kernel / resource) rows in merged traces.
SIM_PID = 1
#: pid of the request-lifecycle rows in merged traces.
REQUEST_PID = 2

# -- Prometheus text format -----------------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _label_str(names: Sequence[str], values: Sequence[str],
               extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    for k, v in (extra or {}).items():
        pairs.append(f'{k}="{_escape_label(v)}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _format_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def prometheus_text(registry) -> str:
    """Render every metric family in the Prometheus exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, instrument in family.children():
            labels = _label_str(family.label_names, label_values)
            if isinstance(instrument, Histogram):
                for bound, cumulative in instrument.cumulative_buckets():
                    blabels = _label_str(
                        family.label_names, label_values,
                        {"le": _format_value(bound)},
                    )
                    lines.append(
                        f"{family.name}_bucket{blabels} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{labels} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {instrument.count}")
            else:
                lines.append(
                    f"{family.name}{labels} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_dict(registry) -> Dict[str, Any]:
    """JSON-friendly dump of every family (the machine-readable export)."""
    out: Dict[str, Any] = {}
    for family in registry.families():
        series = []
        for label_values, instrument in family.children():
            labels = dict(zip(family.label_names, label_values))
            if isinstance(instrument, Histogram):
                series.append({
                    "labels": labels,
                    "sum": instrument.sum,
                    "count": instrument.count,
                    "mean": instrument.mean(),
                    "buckets": [
                        {"le": b if b != float("inf") else "+Inf",
                         "cumulative": c}
                        for b, c in instrument.cumulative_buckets()
                    ],
                })
            elif isinstance(instrument, Gauge):
                series.append({
                    "labels": labels,
                    "value": instrument.value,
                    "max": instrument.max_value,
                })
            else:
                series.append({"labels": labels, "value": instrument.value})
        out[family.name] = {
            "kind": family.kind, "help": family.help, "series": series,
        }
    return out


def metrics_json(registry, *, indent: int = 2) -> str:
    return json.dumps(metrics_to_dict(registry), indent=indent)


# -- merged Chrome trace --------------------------------------------------------


def _kernel_records(trace) -> List[Dict[str, Any]]:
    """Slices + thread metadata for the simulator timeline (pid 1)."""
    tid_for: Dict[str, int] = {}
    records: List[Dict[str, Any]] = []
    for event in trace:
        tid = tid_for.setdefault(event.resource, len(tid_for) + 1)
        records.append({
            "name": event.label,
            "cat": event.category,
            "ph": "X",
            "ts": units.to_microseconds(event.start_s),
            "dur": units.to_microseconds(event.duration_s),
            "pid": SIM_PID,
            "tid": tid,
        })
    if not records:
        # An empty (but non-None) trace contributes nothing — emitting
        # the process meta alone would render a ghost "simulator" track.
        return []
    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": SIM_PID,
        "args": {"name": "simulator"},
    }]
    for resource, tid in tid_for.items():
        meta.append({
            "name": "thread_name", "ph": "M", "pid": SIM_PID, "tid": tid,
            "args": {"name": resource},
        })
        meta.append({
            "name": "thread_sort_index", "ph": "M", "pid": SIM_PID,
            "tid": tid, "args": {"sort_index": tid},
        })
    return meta + records


def _request_records(requests: Iterable) -> List[Dict[str, Any]]:
    """Request-lifecycle events (pid 2): async tracks + paired flows.

    Per served request:

    * async begin/end (``ph: "b"``/``"e"``) spanning arrival → completion,
      one overlappable track per request id;
    * a zero-duration ``enqueue`` slice at arrival carrying the flow
      *start* (``ph: "s"``) and a ``dispatch`` slice at batch dispatch
      carrying the flow *finish* (``ph: "f"``) — the arrow Perfetto draws
      is the request's queueing delay.

    Shed requests become instant events instead.
    """
    records: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": REQUEST_PID,
         "args": {"name": "requests"}},
        {"name": "thread_name", "ph": "M", "pid": REQUEST_PID, "tid": 1,
         "args": {"name": "lifecycle"}},
    ]
    any_request = False
    for req in requests:
        any_request = True
        rid = str(req.request_id)
        arrival_us = units.to_microseconds(req.arrival_s)
        shed = getattr(req.status, "value", str(req.status)) == "shed"
        if shed:
            records.append({
                "name": f"shed:req{rid}", "cat": "request", "ph": "i",
                "ts": arrival_us, "pid": REQUEST_PID, "tid": 1, "s": "t",
                "args": {"tenant": req.tenant},
            })
            continue
        args = {"tenant": req.tenant, "batch_size": req.batch_size}
        records.append({
            "name": f"req:{req.tenant}", "cat": "request", "ph": "b",
            "id": rid, "ts": arrival_us, "pid": REQUEST_PID, "tid": 1,
            "args": args,
        })
        if req.finish_s is not None:
            records.append({
                "name": f"req:{req.tenant}", "cat": "request", "ph": "e",
                "id": rid, "ts": units.to_microseconds(req.finish_s),
                "pid": REQUEST_PID, "tid": 1,
            })
        if req.dispatch_s is None:
            continue
        dispatch_us = units.to_microseconds(req.dispatch_s)
        # Anchor slices for the flow arrow (zero duration is legal).
        records.append({
            "name": f"enqueue:req{rid}", "cat": "request", "ph": "X",
            "ts": arrival_us, "dur": 0, "pid": REQUEST_PID, "tid": 1,
            "args": args,
        })
        records.append({
            "name": f"dispatch:req{rid}", "cat": "request", "ph": "X",
            "ts": dispatch_us, "dur": 0, "pid": REQUEST_PID, "tid": 1,
            "args": args,
        })
        records.append({
            "name": "queue", "cat": "request_flow", "ph": "s", "id": rid,
            "ts": arrival_us, "pid": REQUEST_PID, "tid": 1,
        })
        records.append({
            "name": "queue", "cat": "request_flow", "ph": "f", "bp": "e",
            "id": rid, "ts": dispatch_us, "pid": REQUEST_PID, "tid": 1,
        })
    return (meta + records) if any_request else []


def chrome_trace(
    kernel_trace=None,
    requests: Iterable = (),
    *,
    indent: Optional[int] = None,
) -> str:
    """Serialize a merged Chrome trace (kernel timeline + request events).

    Either side may be empty: with only ``kernel_trace`` this degrades to
    the classic kernel trace, with only ``requests`` to a pure
    request-lifecycle trace.
    """
    records: List[Dict[str, Any]] = []
    if kernel_trace is not None:
        records.extend(_kernel_records(kernel_trace))
    records.extend(_request_records(requests))
    meta = [r for r in records if r.get("ph") == "M"]
    rest = sorted(
        (r for r in records if r.get("ph") != "M"),
        key=lambda r: (r["ts"], r["pid"], r["tid"]),
    )
    return json.dumps(
        {"traceEvents": meta + rest, "displayTimeUnit": "ms"}, indent=indent
    )


# -- artifact bundle ------------------------------------------------------------


def write_obs_artifacts(
    directory,
    obs,
    *,
    kernel_trace=None,
    requests: Iterable = (),
) -> List[str]:
    """Write the standard observability bundle into ``directory``.

    Emits ``trace.json`` (merged Chrome trace), ``metrics.prom``
    (Prometheus text), ``metrics.json``, ``provenance.json``, and
    ``spans.json``; returns the file names written.
    """
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    def _write(name: str, text: str) -> None:
        (out / name).write_text(text)
        written.append(name)

    _write("trace.json", chrome_trace(kernel_trace, requests))
    _write("metrics.prom", prometheus_text(obs.metrics))
    _write("metrics.json", metrics_json(obs.metrics))
    _write("provenance.json", obs.provenance.to_json())
    _write("spans.json", obs.tracer.to_json())
    return written
