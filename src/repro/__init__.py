"""EdgeNN reproduction: efficient neural network inference for CPU-GPU
integrated edge devices (Zhang et al., ICDE 2023).

Public API highlights::

    from repro import EdgeNN, EdgeNNConfig
    from repro.hardware import JETSON_AGX_XAVIER, RASPBERRY_PI_4
    from repro.nn.models import build_alexnet
    from repro.baselines import run_gpu_only, run_cpu_only, run_cloud
    from repro.eval import experiments

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from .core import (
    AdaptiveTuner,
    EdgeNN,
    EdgeNNConfig,
    ExecutionPlan,
    HybridExecutor,
    InferenceReport,
    MemoryPolicy,
    TunerConfig,
    TuningObjective,
    TuningResult,
)
from .nn.precision import Precision
from .hardware import (
    DEVICE_CATALOG,
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
    Device,
    DeviceSpec,
)
from .nn.graph import NetworkGraph
from .nn.models import (
    benchmark_names,
    build,
    build_alexnet,
    build_fcnn,
    build_lenet,
    build_resnet18,
    build_squeezenet,
    build_vgg16,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveTuner",
    "DEVICE_CATALOG",
    "DIMENSITY_8100",
    "Device",
    "DeviceSpec",
    "EdgeNN",
    "EdgeNNConfig",
    "ExecutionPlan",
    "HybridExecutor",
    "InferenceReport",
    "JETSON_AGX_XAVIER",
    "MemoryPolicy",
    "NetworkGraph",
    "Precision",
    "RASPBERRY_PI_4",
    "RTX_2080TI_HOST",
    "TunerConfig",
    "TuningObjective",
    "TuningResult",
    "benchmark_names",
    "build",
    "build_alexnet",
    "build_fcnn",
    "build_lenet",
    "build_resnet18",
    "build_squeezenet",
    "build_vgg16",
]
