"""Platform variants beyond the paper's testbed.

Two extension groups the paper itself calls out:

* **Jetson power modes** — §V-A: "Jetson AGX Xavier provides three power
  options of 10W, 15W, and 30W."  The evaluation uses the full-power
  configuration; :func:`jetson_power_mode` derives the capped modes by
  scaling clocks/bandwidth the way nvpmodel does (fewer online cores,
  lower clocks, lower EMC frequency).
* **Other integrated SoCs** — §V-G: "There are a bunch of hybrid
  platforms, and the idea behind EdgeNN is applicable to similar
  platforms, such as AMD's APU and Apple Silicon."  `AMD_RYZEN_APU` and
  `APPLE_M1_STYLE` are datasheet-built catalog entries that EdgeNN runs on
  unchanged (both are unified-memory CPU-GPU devices).

Scaling factors are annotated like the main calibration file:
``[spec]`` datasheet, ``[fit]`` chosen to track public nvpmodel behaviour.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from .. import units
from ..errors import SpecError
from . import calibration as cal
from .specs import (
    JETSON_AGX_XAVIER,
    DeviceSpec,
    InterconnectSpec,
    MemoryKind,
    MemorySpec,
    PowerSpec,
    ProcessorKind,
    ProcessorSpec,
)

# ---------------------------------------------------------------------------
# Jetson nvpmodel power modes
# ---------------------------------------------------------------------------

#: Per-mode scaling: (cpu clock factor, gpu clock factor, DRAM bw factor,
#: power budget W).  [fit] follows the public nvpmodel tables: MODE_10W
#: runs 2 Carmel clusters at ~1.2 GHz and the GPU at ~520 MHz; MODE_15W
#: 4 cores at ~1.2 GHz, GPU ~670 MHz; MAXN is the evaluation default.
JETSON_POWER_MODES: Mapping[str, tuple] = {
    "10W": (0.53, 0.38, 0.60, 10.0),
    "15W": (0.53, 0.49, 0.78, 15.0),
    "30W": (1.00, 1.00, 1.00, 30.0),
}


def jetson_power_mode(mode: str) -> DeviceSpec:
    """The Jetson AGX Xavier under one nvpmodel power cap.

    ``mode`` is one of ``"10W"``, ``"15W"``, ``"30W"`` (the paper's three
    options); ``"30W"`` returns the catalog device unchanged.
    """
    try:
        cpu_f, gpu_f, bw_f, budget_w = JETSON_POWER_MODES[mode]
    except KeyError as exc:
        raise SpecError(
            f"unknown Jetson power mode {mode!r}; "
            f"available: {sorted(JETSON_POWER_MODES)}"
        ) from exc
    base = JETSON_AGX_XAVIER
    if mode == "30W":
        return base
    cpu = replace(
        base.cpu,
        name=f"{base.cpu.name}@{mode}",
        clock_hz=base.cpu.clock_hz * cpu_f,
        max_stream_bw=base.cpu.max_stream_bw * bw_f,
    )
    gpu = replace(
        base.gpu,
        name=f"{base.gpu.name}@{mode}",
        clock_hz=base.gpu.clock_hz * gpu_f,
        max_stream_bw=base.gpu.max_stream_bw * bw_f,
    )
    memory = replace(
        base.memory,
        name=f"{base.memory.name}@{mode}",
        bandwidth=base.memory.bandwidth * bw_f,
    )
    # [fit] dynamic power scales with the clock cuts; idle barely moves.
    power = PowerSpec(
        idle_w=base.power.idle_w * 0.9,
        cpu_dynamic_w=base.power.cpu_dynamic_w * cpu_f,
        gpu_dynamic_w=base.power.gpu_dynamic_w * gpu_f,
    )
    return replace(
        base,
        name=f"{base.name}-{mode.lower()}",
        cpu=cpu,
        gpu=gpu,
        memory=memory,
        power=power,
    )


# ---------------------------------------------------------------------------
# Other CPU-GPU integrated platforms (§V-G)
# ---------------------------------------------------------------------------

AMD_RYZEN_APU = DeviceSpec(
    name="amd-ryzen-apu",
    cpu=ProcessorSpec(
        name="ryzen-5700g-cpu",
        kind=ProcessorKind.CPU,
        cores=8,                        # [spec] Zen 3, 8C
        clock_hz=units.gigahertz(3.8),
        flops_per_cycle=32.0,           # [spec] 2x256-bit FMA
        max_stream_bw=units.gigabytes_per_second(30.0),
        launch_overhead_s=cal.CPU_LAUNCH_OVERHEAD_S,
        # [fit] desktop Zen 3 runs the same naive kernels ~3x the Jetson
        # CPU's effective rates (wider SIMD, bigger caches).
        efficiency=cal.JETSON_CPU_EFFICIENCY,
        peak_flops_override=8 * units.gigahertz(3.8) * 32.0,
    ),
    gpu=ProcessorSpec(
        name="vega8-igpu",
        kind=ProcessorKind.GPU,
        cores=512,                      # [spec] 8 CUs x 64 lanes
        clock_hz=units.gigahertz(2.0),
        flops_per_cycle=2.0,
        max_stream_bw=units.gigabytes_per_second(40.0),
        launch_overhead_s=cal.GPU_LAUNCH_OVERHEAD_S,
        efficiency=cal.JETSON_GPU_EFFICIENCY,   # [fit] same kernel class
        saturation_elements=cal.GPU_SATURATION_ELEMENTS,
    ),
    memory=MemorySpec(
        name="ddr4-3200-dual",
        kind=MemoryKind.UNIFIED,
        capacity_bytes=units.gigabytes(32.0),
        bandwidth=units.gigabytes_per_second(51.2),   # [spec]
    ),
    interconnect=InterconnectSpec(
        name="apu-copy-path",
        rate=units.gigabytes_per_second(10.0),
        latency_s=cal.INTEGRATED_COPY_LATENCY_S,
    ),
    # [spec/fit] 65 W desktop APU envelope.
    power=PowerSpec(idle_w=12.0, cpu_dynamic_w=28.0, gpu_dynamic_w=18.0),
    price_usd=359.0,
)

APPLE_M1_STYLE = DeviceSpec(
    name="apple-m1-style",
    cpu=ProcessorSpec(
        name="m1-cpu",
        kind=ProcessorKind.CPU,
        cores=8,                        # [spec] 4P + 4E
        clock_hz=units.gigahertz(3.2),
        flops_per_cycle=16.0,
        # [spec] 4P x 3.2G x 16 + 4E x 2.0G x 8
        peak_flops_override=4 * units.gigahertz(3.2) * 16 + 4 * units.gigahertz(2.0) * 8,
        max_stream_bw=units.gigabytes_per_second(55.0),
        launch_overhead_s=cal.CPU_LAUNCH_OVERHEAD_S,
        efficiency=cal.MOBILE_CPU_EFFICIENCY,   # [fit] mobile-class cores
    ),
    gpu=ProcessorSpec(
        name="m1-gpu",
        kind=ProcessorKind.GPU,
        cores=1024,                     # [spec] 8 cores x 128 ALUs
        clock_hz=units.gigahertz(1.278),
        flops_per_cycle=2.0,
        max_stream_bw=units.gigabytes_per_second(60.0),
        launch_overhead_s=cal.GPU_LAUNCH_OVERHEAD_S,
        efficiency=cal.JETSON_GPU_EFFICIENCY,   # [fit]
        saturation_elements=cal.GPU_SATURATION_ELEMENTS,
    ),
    memory=MemorySpec(
        name="m1-unified-lpddr4x",
        kind=MemoryKind.UNIFIED,
        capacity_bytes=units.gigabytes(16.0),
        bandwidth=units.gigabytes_per_second(68.0),   # [spec]
    ),
    interconnect=InterconnectSpec(
        name="m1-copy-path",
        rate=units.gigabytes_per_second(20.0),
        latency_s=units.microseconds(10.0),
    ),
    # [spec/fit] fanless ~20 W package ceiling.
    power=PowerSpec(idle_w=3.0, cpu_dynamic_w=12.0, gpu_dynamic_w=8.0),
    price_usd=699.0,
)

#: All variant devices by name (the main catalog stays paper-exact).
VARIANT_CATALOG: Mapping[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        jetson_power_mode("10W"),
        jetson_power_mode("15W"),
        AMD_RYZEN_APU,
        APPLE_M1_STYLE,
    )
}


def full_catalog() -> Mapping[str, DeviceSpec]:
    """Every known device: the paper-exact catalog plus the variants."""
    from .specs import DEVICE_CATALOG

    merged = dict(DEVICE_CATALOG)
    merged.update(VARIANT_CATALOG)
    return merged


def spec_by_name(name: str) -> DeviceSpec:
    """Look up any device (catalog or variant) by name.

    This is what artifact reloads use to rebind a
    :class:`~repro.compile.artifact.PlanArtifact` to the device it was
    compiled for; raises :class:`~repro.errors.SpecError` if unknown.
    """
    catalog = full_catalog()
    try:
        return catalog[name]
    except KeyError as exc:
        raise SpecError(
            f"unknown device {name!r}; available: {sorted(catalog)}"
        ) from exc
