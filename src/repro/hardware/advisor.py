"""Power-mode advisor: the cheapest Jetson nvpmodel configuration that
still meets a latency target.

Edge deployments are usually provisioned against a latency SLO and a
power budget.  Given a network and an SLO, the advisor tunes EdgeNN under
each of the paper's three Jetson power options (§V-A) and recommends the
lowest-power mode whose tuned latency meets the target — plus the full
trade-off table so the caller can see the alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..core.engine import EdgeNN, EdgeNNConfig
from ..errors import ReproError
from ..nn.graph import NetworkGraph
from .variants import JETSON_POWER_MODES, jetson_power_mode


@dataclass(frozen=True)
class ModeProfile:
    """EdgeNN's tuned behaviour under one power mode."""

    mode: str
    latency_s: float
    power_w: float
    energy_j: float

    def meets(self, slo_s: float) -> bool:
        return self.latency_s <= slo_s


@dataclass(frozen=True)
class Recommendation:
    """The advisor's answer."""

    network: str
    slo_s: float
    chosen: Optional[ModeProfile]      # None when no mode meets the SLO
    profiles: Tuple[ModeProfile, ...]  # all modes, lowest budget first

    @property
    def feasible(self) -> bool:
        return self.chosen is not None

    def describe(self) -> str:
        lines = [f"power-mode advice for {self.network} "
                 f"(SLO {self.slo_s * 1e3:.1f} ms):"]
        for p in self.profiles:
            marker = "  <- chosen" if (
                self.chosen is not None and p.mode == self.chosen.mode
            ) else ""
            lines.append(
                f"  {p.mode:>4}: {p.latency_s * 1e3:9.2f} ms  "
                f"{p.power_w:5.2f} W  {p.energy_j:7.3f} J"
                f"{'  (meets SLO)' if p.meets(self.slo_s) else ''}{marker}"
            )
        if not self.feasible:
            lines.append("  no mode meets the SLO on this device")
        return "\n".join(lines)


def profile_power_modes(
    network: Union[str, NetworkGraph],
    config: Optional[EdgeNNConfig] = None,
) -> Tuple[ModeProfile, ...]:
    """Tuned EdgeNN latency/power/energy under every Jetson power mode,
    lowest budget first."""
    profiles = []
    for mode in sorted(JETSON_POWER_MODES, key=lambda m: JETSON_POWER_MODES[m][3]):
        report = EdgeNN(network, jetson_power_mode(mode), config).run()
        profiles.append(
            ModeProfile(
                mode=mode,
                latency_s=report.total_s,
                power_w=report.energy.average_power_w,
                energy_j=report.energy.energy_j,
            )
        )
    return tuple(profiles)


def choose_power_mode(
    network: Union[str, NetworkGraph],
    slo_s: float,
    config: Optional[EdgeNNConfig] = None,
) -> Recommendation:
    """Lowest-power Jetson mode whose tuned latency meets ``slo_s``."""
    if slo_s <= 0:
        raise ReproError("the latency SLO must be positive")
    profiles = profile_power_modes(network, config)
    chosen = next((p for p in profiles if p.meets(slo_s)), None)
    name = network if isinstance(network, str) else network.name
    return Recommendation(
        network=name, slo_s=slo_s, chosen=chosen, profiles=profiles,
    )
