"""Power and energy accounting.

The paper measures actual draw with jetson-stats / a power meter /
nvidia-smi and observes that processor utilization is positively related to
power consumption (§V-B2).  We therefore integrate the utilization-linear
model of :class:`~repro.hardware.specs.PowerSpec` over a run:

    E = (idle + cpu_dyn * u_cpu + gpu_dyn * u_gpu) * duration

where ``u_x = busy_x / duration`` comes from the simulated timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecError
from .specs import DeviceSpec


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one run on one device."""

    duration_s: float
    cpu_utilization: float
    gpu_utilization: float
    average_power_w: float
    energy_j: float

    @property
    def performance_per_watt(self) -> float:
        """Inferences per joule-second normalization: (1/t) / P = 1 / (t*P)."""
        if self.duration_s == 0 or self.average_power_w == 0:
            return float("inf")
        return 1.0 / (self.duration_s * self.average_power_w)


def energy_for_run(
    device: DeviceSpec,
    duration_s: float,
    cpu_busy_s: float,
    gpu_busy_s: float = 0.0,
) -> EnergyReport:
    """Energy of a run given total wall time and per-processor busy time."""
    if duration_s <= 0:
        raise SpecError("run duration must be positive")
    if cpu_busy_s < 0 or gpu_busy_s < 0:
        raise SpecError("busy times cannot be negative")
    if gpu_busy_s > 0 and device.gpu is None:
        raise SpecError(f"{device.name} has no GPU but gpu_busy_s > 0")
    cpu_util = min(1.0, cpu_busy_s / duration_s)
    gpu_util = min(1.0, gpu_busy_s / duration_s)
    power = device.power.power(cpu_util, gpu_util)
    return EnergyReport(
        duration_s=duration_s,
        cpu_utilization=cpu_util,
        gpu_utilization=gpu_util,
        average_power_w=power,
        energy_j=power * duration_s,
    )


def performance_per_dollar(duration_s: float, price_usd: float) -> float:
    """Throughput per dollar: (1/t) / price."""
    if duration_s <= 0 or price_usd <= 0:
        raise SpecError("duration and price must be positive")
    return 1.0 / (duration_s * price_usd)
