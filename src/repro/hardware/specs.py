"""Hardware specification records and the evaluated-platform catalog.

The catalog mirrors Section V-A of the paper:

* ``JETSON_AGX_XAVIER`` — the CPU-GPU integrated edge device under test
  (8-core ARM v8.2 @ 2.26 GHz + 512-core Volta iGPU, 32 GB LPDDR4x
  @ 137 GB/s unified, $699, Ubuntu 18.04).
* ``RASPBERRY_PI_4``    — edge CPU device (quad Cortex-A72 @ 1.5 GHz,
  8 GB LPDDR4, $75).
* ``DIMENSITY_8100``    — mobile phone CPU (4×A78 @ 2.85 GHz + 4×A55
  @ 2.0 GHz, LPDDR5-6400).
* ``RTX_2080TI_HOST``   — cloud discrete-GPU platform (4352-core Turing,
  616 GB/s GDDR6, PCIe 3.0 x16, 260 W TDP).

Specs marked ``[spec]`` come from datasheets, ``[paper]`` from the paper's
own measurements, ``[fit]`` from :mod:`repro.hardware.calibration`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .. import units
from ..errors import SpecError
from . import calibration as cal
from .calibration import KernelEfficiency


class ProcessorKind(enum.Enum):
    """Which side of the SoC a processor lives on."""

    CPU = "cpu"
    GPU = "gpu"


class MemoryKind(enum.Enum):
    """Physical memory organization."""

    UNIFIED = "unified"    # one DRAM shared by CPU and GPU (integrated SoC)
    DISCRETE = "discrete"  # separate host DRAM and device VRAM


@dataclass(frozen=True)
class ProcessorSpec:
    """Static description of one processor (CPU complex or GPU).

    ``peak_flops`` defaults to ``cores * clock_hz * flops_per_cycle`` but can
    be overridden for heterogeneous clusters (e.g. big.LITTLE phones).
    ``max_stream_bw`` is the DRAM bandwidth this processor can consume when
    running alone (bytes/s); it is capped by the device's memory bandwidth.
    """

    name: str
    kind: ProcessorKind
    cores: int
    clock_hz: float
    flops_per_cycle: float
    max_stream_bw: float
    launch_overhead_s: float
    efficiency: Mapping[str, KernelEfficiency]
    peak_flops_override: Optional[float] = None
    #: Per-kernel-class output-element count needed to saturate the
    #: processor (GPUs only; None disables the occupancy ramp).
    saturation_elements: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise SpecError(f"{self.name}: cores must be positive")
        if self.clock_hz <= 0 or self.flops_per_cycle <= 0:
            raise SpecError(f"{self.name}: clock and flops/cycle must be positive")
        if self.max_stream_bw <= 0:
            raise SpecError(f"{self.name}: max_stream_bw must be positive")
        if self.launch_overhead_s < 0:
            raise SpecError(f"{self.name}: launch overhead cannot be negative")
        missing = [k for k in cal.KERNEL_CLASSES if k not in self.efficiency]
        if missing:
            raise SpecError(f"{self.name}: missing efficiency for {missing}")

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        if self.peak_flops_override is not None:
            return self.peak_flops_override
        return self.cores * self.clock_hz * self.flops_per_cycle

    def efficiency_for(self, kernel_class: str) -> KernelEfficiency:
        """Efficiency entry for ``kernel_class``; raises SpecError if unknown."""
        try:
            return self.efficiency[kernel_class]
        except KeyError as exc:
            raise SpecError(
                f"{self.name}: unknown kernel class {kernel_class!r}"
            ) from exc


@dataclass(frozen=True)
class MemorySpec:
    """One physical memory pool."""

    name: str
    kind: MemoryKind
    capacity_bytes: float
    bandwidth: float  # bytes/s, peak

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth <= 0:
            raise SpecError(f"{self.name}: capacity and bandwidth must be positive")


@dataclass(frozen=True)
class InterconnectSpec:
    """Copy path between host and device memory (PCIe, or the on-die copy
    engine of an integrated SoC)."""

    name: str
    rate: float        # bytes/s sustained
    latency_s: float   # fixed per-transfer cost

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SpecError(f"{self.name}: rate must be positive")
        if self.latency_s < 0:
            raise SpecError(f"{self.name}: latency cannot be negative")


@dataclass(frozen=True)
class PowerSpec:
    """Utilization-driven power model: ``P = idle + cpu_dyn*u_cpu +
    gpu_dyn*u_gpu`` (watts).  Matches the paper's observation (§V-B2) that
    processor utilization is positively related to power draw."""

    idle_w: float
    cpu_dynamic_w: float
    gpu_dynamic_w: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.cpu_dynamic_w < 0 or self.gpu_dynamic_w < 0:
            raise SpecError("power terms cannot be negative")

    def power(self, cpu_util: float, gpu_util: float = 0.0) -> float:
        """Instantaneous power draw at the given utilizations (0..1)."""
        if not 0.0 <= cpu_util <= 1.0 or not 0.0 <= gpu_util <= 1.0:
            raise SpecError("utilization must be within [0, 1]")
        return self.idle_w + self.cpu_dynamic_w * cpu_util + self.gpu_dynamic_w * gpu_util


@dataclass(frozen=True)
class DeviceSpec:
    """A complete evaluated platform."""

    name: str
    cpu: ProcessorSpec
    memory: MemorySpec
    power: PowerSpec
    price_usd: float
    gpu: Optional[ProcessorSpec] = None
    gpu_memory: Optional[MemorySpec] = None
    interconnect: Optional[InterconnectSpec] = None
    corun_dram_efficiency: float = field(default=cal.CORUN_DRAM_EFFICIENCY)

    def __post_init__(self) -> None:
        if self.price_usd <= 0:
            raise SpecError(f"{self.name}: price must be positive")
        if self.memory.kind is MemoryKind.UNIFIED and self.gpu_memory is not None:
            raise SpecError(f"{self.name}: unified device cannot have separate VRAM")
        if self.gpu is not None and self.interconnect is None:
            raise SpecError(f"{self.name}: a GPU device needs an interconnect spec")
        if self.gpu_memory is not None and self.gpu is None:
            raise SpecError(f"{self.name}: VRAM without a GPU")
        if not 0.0 < self.corun_dram_efficiency <= 1.0:
            raise SpecError(f"{self.name}: corun efficiency out of (0, 1]")

    @property
    def is_integrated(self) -> bool:
        """True when CPU and GPU share one physical DRAM (zero-copy capable)."""
        return self.gpu is not None and self.memory.kind is MemoryKind.UNIFIED

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    def stream_bandwidth(self, proc: ProcessorSpec) -> float:
        """Bandwidth available to ``proc`` running alone: its own streaming
        limit capped by the DRAM (or VRAM) it reads from."""
        if proc.kind is ProcessorKind.GPU and self.gpu_memory is not None:
            return min(proc.max_stream_bw, self.gpu_memory.bandwidth)
        return min(proc.max_stream_bw, self.memory.bandwidth)

    def roofline_breakpoints(self) -> Mapping[str, float]:
        """Arithmetic-intensity breakpoint (FLOP/byte) per processor.

        ``peak_flops / stream_bandwidth`` is where a kernel flips from
        memory-bound to compute-bound; the static analyzer requires it
        to be finite and positive for every processor, otherwise the
        whole roofline cost model degenerates.
        """
        out = {"cpu": self.cpu.peak_flops / self.stream_bandwidth(self.cpu)}
        if self.gpu is not None:
            out["gpu"] = self.gpu.peak_flops / self.stream_bandwidth(self.gpu)
        return out


# ---------------------------------------------------------------------------
# Platform catalog (paper Section V-A)
# ---------------------------------------------------------------------------

_JETSON_CPU = ProcessorSpec(
    name="jetson-carmel-cpu",
    kind=ProcessorKind.CPU,
    cores=8,                       # [spec] 8-core ARM v8.2 (Carmel)
    clock_hz=units.gigahertz(2.26),
    flops_per_cycle=16.0,          # [spec] 2x128-bit NEON FMA pipes, FP32
    max_stream_bw=units.gigabytes_per_second(60.0),  # [fit] CPU-attainable share
    launch_overhead_s=cal.CPU_LAUNCH_OVERHEAD_S,
    efficiency=cal.JETSON_CPU_EFFICIENCY,
)

_JETSON_GPU = ProcessorSpec(
    name="jetson-volta-gpu",
    kind=ProcessorKind.GPU,
    cores=512,                     # [spec] 512 Volta CUDA cores
    clock_hz=units.gigahertz(1.377),
    flops_per_cycle=2.0,           # [spec] FMA = 2 FLOP
    max_stream_bw=units.gigabytes_per_second(110.0),  # [fit] GPU-attainable share
    launch_overhead_s=cal.GPU_LAUNCH_OVERHEAD_S,
    efficiency=cal.JETSON_GPU_EFFICIENCY,
    saturation_elements=cal.GPU_SATURATION_ELEMENTS,
)

JETSON_AGX_XAVIER = DeviceSpec(
    name="jetson-agx-xavier",
    cpu=_JETSON_CPU,
    gpu=_JETSON_GPU,
    memory=MemorySpec(
        name="lpddr4x-unified",
        kind=MemoryKind.UNIFIED,
        capacity_bytes=units.gigabytes(32.0),              # [spec]
        bandwidth=units.gigabytes_per_second(137.0),       # [spec]
    ),
    interconnect=InterconnectSpec(
        name="jetson-copy-engine",
        rate=cal.INTEGRATED_COPY_RATE,                      # [fit]
        latency_s=cal.INTEGRATED_COPY_LATENCY_S,
    ),
    # [paper] fitted to 5.5 W at 72%/42% (ResNet) and 7.9 W at 100%/100%
    # (SqueezeNet) on Jetson.
    power=PowerSpec(idle_w=2.0, cpu_dynamic_w=3.4, gpu_dynamic_w=2.5),
    price_usd=699.0,                                        # [paper]
)

RASPBERRY_PI_4 = DeviceSpec(
    name="raspberry-pi-4",
    cpu=ProcessorSpec(
        name="rpi4-cortex-a72",
        kind=ProcessorKind.CPU,
        cores=4,                   # [spec] quad Cortex-A72
        clock_hz=units.gigahertz(1.5),
        flops_per_cycle=8.0,       # [spec] 1x128-bit NEON FMA
        max_stream_bw=units.gigabytes_per_second(4.0),  # [fit] measured-class LPDDR4 share
        launch_overhead_s=cal.CPU_LAUNCH_OVERHEAD_S,
        efficiency=cal.RPI_CPU_EFFICIENCY,
    ),
    memory=MemorySpec(
        name="rpi4-lpddr4",
        kind=MemoryKind.UNIFIED,
        capacity_bytes=units.gigabytes(8.0),               # [spec]
        bandwidth=units.gigabytes_per_second(6.0),         # [fit]
    ),
    # [paper] max draw 6.4 W (ref [11]); idle ~2.7 W.
    power=PowerSpec(idle_w=2.7, cpu_dynamic_w=3.7),
    price_usd=75.0,                                         # [paper]
)

DIMENSITY_8100 = DeviceSpec(
    name="dimensity-8100",
    cpu=ProcessorSpec(
        name="dimensity-8100-cpu",
        kind=ProcessorKind.CPU,
        cores=8,                   # [spec] 4xA78@2.85 + 4xA55@2.0
        clock_hz=units.gigahertz(2.85),
        flops_per_cycle=16.0,
        # [spec] peak = 4*2.85G*16 (A78) + 4*2.0G*8 (A55)
        peak_flops_override=4 * units.gigahertz(2.85) * 16 + 4 * units.gigahertz(2.0) * 8,
        max_stream_bw=units.gigabytes_per_second(30.0),    # [fit] LPDDR5-6400 share
        launch_overhead_s=cal.CPU_LAUNCH_OVERHEAD_S,
        efficiency=cal.MOBILE_CPU_EFFICIENCY,
    ),
    memory=MemorySpec(
        name="dimensity-lpddr5",
        kind=MemoryKind.UNIFIED,
        capacity_bytes=units.gigabytes(12.0),
        bandwidth=units.gigabytes_per_second(51.2),        # [spec] LPDDR5-6400 x64
    ),
    # [fit] the paper could not meter the phone; modelled for completeness.
    power=PowerSpec(idle_w=1.0, cpu_dynamic_w=5.0),
    price_usd=349.0,
)

_DGPU_HOST_CPU = ProcessorSpec(
    name="x86-host-cpu",
    kind=ProcessorKind.CPU,
    cores=8,
    clock_hz=units.gigahertz(3.6),
    flops_per_cycle=32.0,          # [spec] AVX2 2x256-bit FMA
    max_stream_bw=units.gigabytes_per_second(35.0),
    launch_overhead_s=cal.CPU_LAUNCH_OVERHEAD_S,
    efficiency=cal.HOST_CPU_EFFICIENCY,
)

_RTX_2080TI = ProcessorSpec(
    name="rtx-2080ti",
    kind=ProcessorKind.GPU,
    cores=4352,                    # [spec]
    clock_hz=units.gigahertz(1.545),
    flops_per_cycle=2.0,
    max_stream_bw=units.gigabytes_per_second(550.0),
    launch_overhead_s=cal.DISCRETE_GPU_LAUNCH_OVERHEAD_S,
    efficiency=cal.DISCRETE_GPU_EFFICIENCY,
    saturation_elements={
        k: v * cal.DISCRETE_SATURATION_SCALE
        for k, v in cal.GPU_SATURATION_ELEMENTS.items()
    },
)

RTX_2080TI_HOST = DeviceSpec(
    name="rtx-2080ti-host",
    cpu=_DGPU_HOST_CPU,
    gpu=_RTX_2080TI,
    memory=MemorySpec(
        name="host-ddr4",
        kind=MemoryKind.DISCRETE,
        capacity_bytes=units.gigabytes(64.0),
        bandwidth=units.gigabytes_per_second(40.0),
    ),
    gpu_memory=MemorySpec(
        name="gddr6",
        kind=MemoryKind.DISCRETE,
        capacity_bytes=units.gigabytes(11.0),
        bandwidth=units.gigabytes_per_second(616.0),       # [spec]
    ),
    interconnect=InterconnectSpec(
        name="pcie3-x16",
        rate=cal.PCIE_COPY_RATE,                            # [fit]
        latency_s=cal.PCIE_COPY_LATENCY_S,
    ),
    # [fit] nvidia-smi board power: ~50 W near idle, 260 W TDP; the naive
    # inference kernels never saturate the SMs, so the *effective* dynamic
    # term is far below TDP (nvidia-smi-class draws of 60-110 W for such
    # workloads).  Pinned by: Fig 13a power ratio ~5.7x.
    power=PowerSpec(idle_w=50.0, cpu_dynamic_w=20.0, gpu_dynamic_w=55.0),
    price_usd=1199.0,                                       # [spec] launch MSRP
)

#: All catalog devices by name.
DEVICE_CATALOG: Mapping[str, DeviceSpec] = {
    spec.name: spec
    for spec in (JETSON_AGX_XAVIER, RASPBERRY_PI_4, DIMENSITY_8100, RTX_2080TI_HOST)
}


def device(name: str) -> DeviceSpec:
    """Look up a catalog device by name; raises SpecError if unknown."""
    try:
        return DEVICE_CATALOG[name]
    except KeyError as exc:
        raise SpecError(
            f"unknown device {name!r}; available: {sorted(DEVICE_CATALOG)}"
        ) from exc
