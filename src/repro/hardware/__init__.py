"""Simulated hardware substrate: specs, roofline costs, memory, power.

See DESIGN.md §1 for how this substitutes for the paper's physical testbed.
"""

from .calibration import KernelEfficiency
from .contention import StreamJob, corun_finish_times, corun_pair, waterfill
from .copy_engine import CopyDirection, CopyEngine, Transfer
from .device import Device
from .memory import AccessCost, AllocKind, Buffer, MemoryModel
from .power import EnergyReport, energy_for_run, performance_per_dollar
from .roofline import KernelCost, KernelWork, kernel_cost
from .variants import (
    AMD_RYZEN_APU,
    APPLE_M1_STYLE,
    JETSON_POWER_MODES,
    VARIANT_CATALOG,
    jetson_power_mode,
)
from .specs import (
    DEVICE_CATALOG,
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
    DeviceSpec,
    InterconnectSpec,
    MemoryKind,
    MemorySpec,
    PowerSpec,
    ProcessorKind,
    ProcessorSpec,
    device,
)

__all__ = [
    "AMD_RYZEN_APU",
    "APPLE_M1_STYLE",
    "AccessCost",
    "AllocKind",
    "Buffer",
    "CopyDirection",
    "CopyEngine",
    "DEVICE_CATALOG",
    "DIMENSITY_8100",
    "Device",
    "DeviceSpec",
    "EnergyReport",
    "InterconnectSpec",
    "JETSON_AGX_XAVIER",
    "JETSON_POWER_MODES",
    "KernelCost",
    "KernelEfficiency",
    "KernelWork",
    "MemoryKind",
    "MemoryModel",
    "MemorySpec",
    "PowerSpec",
    "ProcessorKind",
    "ProcessorSpec",
    "RASPBERRY_PI_4",
    "RTX_2080TI_HOST",
    "StreamJob",
    "Transfer",
    "VARIANT_CATALOG",
    "corun_finish_times",
    "corun_pair",
    "device",
    "energy_for_run",
    "jetson_power_mode",
    "kernel_cost",
    "performance_per_dollar",
    "waterfill",
]
