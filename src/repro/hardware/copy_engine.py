"""Explicit-copy transfer model (cudaMemcpy on the simulated devices).

On the integrated device the copy engine moves data DRAM-to-DRAM; on the
discrete platform it is the PCIe DMA path.  Either way a transfer costs a
fixed latency plus ``bytes / rate``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import MemoryModelError
from .specs import InterconnectSpec


class CopyDirection(enum.Enum):
    """Host-to-device or device-to-host (CPU copy ↔ GPU copy of a buffer)."""

    H2D = "h2d"
    D2H = "d2h"


@dataclass(frozen=True)
class Transfer:
    """One explicit memory copy request."""

    buffer_name: str
    nbytes: float
    direction: CopyDirection

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise MemoryModelError(f"negative transfer size for {self.buffer_name}")


class CopyEngine:
    """Computes transfer times and accumulates copy statistics."""

    def __init__(self, interconnect: InterconnectSpec) -> None:
        self._interconnect = interconnect
        self.total_bytes = 0.0
        self.total_time_s = 0.0
        self.transfer_count = 0

    @property
    def rate(self) -> float:
        """Sustained copy rate in bytes/s (the paper's ``s`` in Eq. 2)."""
        return self._interconnect.rate

    @property
    def latency_s(self) -> float:
        return self._interconnect.latency_s

    def transfer_time(self, nbytes: float) -> float:
        """Wall time of one explicit copy of ``nbytes``."""
        if nbytes < 0:
            raise MemoryModelError("transfer size cannot be negative")
        if nbytes == 0:
            return 0.0
        return self._interconnect.latency_s + nbytes / self._interconnect.rate

    def record(self, transfer: Transfer) -> float:
        """Account for ``transfer`` and return its wall time."""
        duration = self.transfer_time(transfer.nbytes)
        self.total_bytes += transfer.nbytes
        self.total_time_s += duration
        if transfer.nbytes > 0:
            self.transfer_count += 1
        return duration

    def reset(self) -> None:
        """Clear accumulated statistics (between inference runs)."""
        self.total_bytes = 0.0
        self.total_time_s = 0.0
        self.transfer_count = 0
