"""Shared-DRAM bandwidth contention model for CPU-GPU co-running.

On an integrated SoC the CPU and GPU contend for one memory controller
(paper Challenge 1).  When both stream concurrently, neither achieves its
solo bandwidth; the controller itself also loses some peak efficiency from
interleaving two request streams.

We model each co-running kernel as a roofline job: it must move ``bytes``
bytes of memory traffic (at up to its solo rate) and additionally has a
compute floor — it can never finish faster than its compute time, and
memory transfers overlap compute.  While several jobs are active the total
achieved bandwidth is capped at ``total_bw`` and divided by max-min
fairness (water-filling).  When a job finishes its memory traffic it
releases its bandwidth share but still occupies its processor until the
compute floor elapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SimulationError


@dataclass(frozen=True)
class StreamJob:
    """One co-running kernel's demand.

    ``compute_s``  — compute floor (seconds).
    ``bytes_total`` — memory traffic to move.
    ``solo_rate``  — bandwidth it achieves running alone (bytes/s).
    """

    compute_s: float
    bytes_total: float
    solo_rate: float

    def __post_init__(self) -> None:
        if self.compute_s < 0 or self.bytes_total < 0:
            raise SimulationError("job demands cannot be negative")
        if self.bytes_total > 0 and self.solo_rate <= 0:
            raise SimulationError("job with memory traffic needs a positive solo rate")

    @property
    def solo_time(self) -> float:
        """Roofline time of the job running alone."""
        if self.bytes_total == 0:
            return self.compute_s
        return max(self.compute_s, self.bytes_total / self.solo_rate)


def waterfill(caps: Sequence[float], total: float) -> List[float]:
    """Max-min fair allocation of ``total`` across streams capped at
    ``caps``.  Returns one rate per stream.

    Streams whose cap is below the fair share keep their cap; the slack is
    redistributed among the rest.
    """
    if total < 0:
        raise SimulationError("total bandwidth cannot be negative")
    rates = [0.0] * len(caps)
    remaining_idx = [i for i, c in enumerate(caps) if c > 0]
    remaining_bw = total
    while remaining_idx:
        share = remaining_bw / len(remaining_idx)
        bounded = [i for i in remaining_idx if caps[i] <= share]
        if not bounded:
            for i in remaining_idx:
                rates[i] = share
            break
        for i in bounded:
            rates[i] = caps[i]
            remaining_bw -= caps[i]
        remaining_idx = [i for i in remaining_idx if i not in set(bounded)]
    return rates


def corun_finish_times(jobs: Sequence[StreamJob], total_bw: float) -> List[float]:
    """Finish time of each job when all start at t=0 and share ``total_bw``.

    Event-driven: between memory-completion events the rate allocation is
    constant (water-filled over the still-streaming jobs).
    """
    if total_bw <= 0:
        raise SimulationError("total bandwidth must be positive")
    n = len(jobs)
    remaining = [j.bytes_total for j in jobs]
    mem_done_at = [0.0 if j.bytes_total == 0 else None for j in jobs]
    t = 0.0
    guard = 0
    while any(done is None for done in mem_done_at):
        guard += 1
        if guard > 10 * n + 10:
            raise SimulationError("contention solver failed to converge")
        active = [i for i in range(n) if mem_done_at[i] is None]
        caps = [0.0] * n
        for i in active:
            caps[i] = jobs[i].solo_rate
        rates = waterfill([caps[i] for i in range(n)], total_bw)
        # Next memory completion under the current allocation.
        horizon = min(
            remaining[i] / rates[i] for i in active if rates[i] > 0
        )
        t += horizon
        for i in active:
            remaining[i] -= rates[i] * horizon
            if remaining[i] <= 1e-9:
                remaining[i] = 0.0
                mem_done_at[i] = t
    return [max(jobs[i].compute_s, mem_done_at[i]) for i in range(n)]


def corun_pair(
    cpu_job: StreamJob,
    gpu_job: StreamJob,
    dram_bw: float,
    *,
    corun_efficiency: float = 1.0,
) -> tuple[float, float]:
    """Finish times of a CPU kernel and a GPU kernel co-running on unified
    DRAM whose effective peak drops to ``dram_bw * corun_efficiency`` while
    both streams are active.

    This is the primitive the hybrid executor uses for intra-kernel splits
    and for parallel DAG branches.
    """
    if not 0.0 < corun_efficiency <= 1.0:
        raise SimulationError("corun efficiency must be in (0, 1]")
    times = corun_finish_times([cpu_job, gpu_job], dram_bw * corun_efficiency)
    return times[0], times[1]
