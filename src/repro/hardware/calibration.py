"""Calibration constants for the device simulator, with provenance.

Everything the simulator cannot take straight from a datasheet lives here,
so the modelling assumptions are in one audited place.  Values fall into
three provenance classes:

``spec``
    Taken from public datasheets (core counts, clocks, DRAM bandwidth, TDP,
    prices).  These live in :mod:`repro.hardware.specs`; only derived
    quantities appear here.

``paper``
    Reported in the EdgeNN paper itself (Section V): measured power draws,
    memory-copy time shares, utilization figures, the cloud bandwidth and
    latency.  We encode them directly.

``fit``
    Efficiency/overhead factors chosen so the simulator reproduces the
    *shapes* of the paper's results (who wins, by roughly which factor,
    where crossovers fall).  Each one is annotated with what observation
    pins it down.

A modelling note that drives every ``fit`` below: the EdgeNN artifact uses
**handwritten CUDA and OpenMP kernels**, not cuDNN/oneDNN.  Naive direct
convolutions and GEMV kernels run one to two orders of magnitude below
peak (no shared-memory tiling, uncoalesced weight reads).  The paper's own
numbers pin this down — e.g. parameter ``cudaMemcpy`` accounting for only
~11% of integrated inference time (Fig 9) is impossible with cuDNN-class
kernels but natural at naive-kernel throughput; and the cloud comparison
(Fig 12) only has the reported crossovers if edge inference takes hundreds
of milliseconds.  Efficiencies below therefore model the authors' kernels,
and effective throughputs are noted inline.

All times are seconds, rates bytes/s, compute FLOP/s (see :mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from .. import units

# ---------------------------------------------------------------------------
# Kernel efficiency tables
# ---------------------------------------------------------------------------
#
# A kernel's execution time follows a roofline: the maximum of its compute
# time (flops / (peak_flops * compute_eff)) and its memory time
# (bytes / (stream_bw * memory_eff)), plus a launch overhead, with a GPU
# occupancy ramp for small outputs (below).


@dataclass(frozen=True)
class KernelEfficiency:
    """Achieved fraction of a processor's peak compute / memory bandwidth
    for one kernel class."""

    compute: float
    memory: float

    def __post_init__(self) -> None:
        if not 0.0 < self.compute <= 1.0:
            raise ValueError(f"compute efficiency out of (0, 1]: {self.compute}")
        if not 0.0 < self.memory <= 1.0:
            raise ValueError(f"memory efficiency out of (0, 1]: {self.memory}")


# Kernel classes used throughout the library.
KERNEL_CLASSES = (
    "conv",        # direct convolutions
    "dense",       # fully connected (GEMV at batch 1: memory bound)
    "pool",        # max/avg pooling: pure streaming
    "activation",  # relu, elementwise add: pure streaming
    "norm",        # LRN / batch-norm: streaming with a few flops
    "softmax",     # tiny reduction
    "shape",       # concat / flatten: memcpy-like
)

# [fit] Jetson Volta iGPU (peak 1.41 TFLOP/s FP32, ~110 GB/s attainable):
# naive direct conv ~15 GFLOP/s; naive GEMV streams weights at ~3 GB/s
# (uncoalesced row reads); streaming kernels reach a modest bandwidth
# share.  Pinned by: Fig 9 integrated copy share ~11%, Fig 12 crossovers,
# Table I fc improvements (t_cpu ~ t_gpu on fc).
JETSON_GPU_EFFICIENCY: Mapping[str, KernelEfficiency] = MappingProxyType(
    {
        "conv": KernelEfficiency(compute=0.0064, memory=0.50),   # ~9 GF/s
        "dense": KernelEfficiency(compute=0.05, memory=0.0148),  # ~1.6 GB/s
        "pool": KernelEfficiency(compute=0.05, memory=0.23),     # ~25 GB/s
        "activation": KernelEfficiency(compute=0.05, memory=0.36),  # ~40 GB/s
        "norm": KernelEfficiency(compute=0.05, memory=0.18),     # ~20 GB/s
        "softmax": KernelEfficiency(compute=0.005, memory=0.03),
        "shape": KernelEfficiency(compute=0.05, memory=0.25),
    }
)

# [fit] 8-core Carmel CPU (peak ~289 GFLOP/s, ~60 GB/s attainable): naive
# OpenMP conv ~3.8 GFLOP/s; GEMV ~2.8 GB/s.  Pinned by: Fig 6 Jetson-CPU
# speedup ~3.97x and Table I (fc split profitable, big conv split not).
JETSON_CPU_EFFICIENCY: Mapping[str, KernelEfficiency] = MappingProxyType(
    {
        "conv": KernelEfficiency(compute=0.0059, memory=0.30),   # ~1.7 GF/s
        "dense": KernelEfficiency(compute=0.05, memory=0.0493),  # ~3.0 GB/s
        "pool": KernelEfficiency(compute=0.04, memory=0.077),    # ~4.6 GB/s
        "activation": KernelEfficiency(compute=0.04, memory=0.102),  # ~6 GB/s
        "norm": KernelEfficiency(compute=0.04, memory=0.052),    # ~3 GB/s
        "softmax": KernelEfficiency(compute=0.008, memory=0.025),
        "shape": KernelEfficiency(compute=0.04, memory=0.102),
    }
)

# [fit] Dimensity 8100 CPU: ~1.27x the Jetson CPU across the board.
# Pinned by: Fig 6 ratio 3.97/3.12 between the two CPU baselines.
MOBILE_CPU_EFFICIENCY: Mapping[str, KernelEfficiency] = MappingProxyType(
    {
        "conv": KernelEfficiency(compute=0.0088, memory=0.35),   # ~2.2 GF/s
        "dense": KernelEfficiency(compute=0.06, memory=0.1250),  # ~3.8 GB/s
        "pool": KernelEfficiency(compute=0.048, memory=0.195),   # ~5.9 GB/s
        "activation": KernelEfficiency(compute=0.048, memory=0.256),  # ~7.7 GB/s
        "norm": KernelEfficiency(compute=0.048, memory=0.128),   # ~3.8 GB/s
        "softmax": KernelEfficiency(compute=0.010, memory=0.064),
        "shape": KernelEfficiency(compute=0.048, memory=0.256),
    }
)

# [fit] Raspberry Pi 4 CPU: ~2.2x slower than the Jetson CPU overall.
# Pinned by: Fig 6 RPi speedup ~8.80x.
RPI_CPU_EFFICIENCY: Mapping[str, KernelEfficiency] = MappingProxyType(
    {
        "conv": KernelEfficiency(compute=0.0154, memory=0.40),   # ~0.74 GF/s
        "dense": KernelEfficiency(compute=0.08, memory=0.3220),  # ~1.3 GB/s
        "pool": KernelEfficiency(compute=0.062, memory=0.50),    # ~2.0 GB/s
        "activation": KernelEfficiency(compute=0.062, memory=0.69),  # ~2.8 GB/s
        "norm": KernelEfficiency(compute=0.062, memory=0.35),    # ~1.4 GB/s
        "softmax": KernelEfficiency(compute=0.012, memory=0.19),
        "shape": KernelEfficiency(compute=0.062, memory=0.50),
    }
)

# [fit] x86 host CPU of the discrete platform (used only to stage data).
HOST_CPU_EFFICIENCY: Mapping[str, KernelEfficiency] = JETSON_CPU_EFFICIENCY

# [fit] RTX 2080 Ti with the same naive kernels: ~2.2x the Jetson iGPU
# end-to-end.  Much higher raw bandwidth but the naive kernels cannot
# exploit it (coalescing/occupancy), and small layers underfill 4352 cores.
# Pinned by: Fig 9 discrete copy share avg ~23% (max ~36%), Fig 12 (VGG is
# the only net where the cloud GPU clearly wins), Fig 13 price ratio 1.25x.
DISCRETE_GPU_EFFICIENCY: Mapping[str, KernelEfficiency] = MappingProxyType(
    {
        "conv": KernelEfficiency(compute=0.00238, memory=0.30),  # ~32 GF/s
        "dense": KernelEfficiency(compute=0.05, memory=0.0040),  # ~2.2 GB/s
        "pool": KernelEfficiency(compute=0.05, memory=0.10),     # ~55 GB/s
        "activation": KernelEfficiency(compute=0.05, memory=0.164),  # ~90 GB/s
        "norm": KernelEfficiency(compute=0.05, memory=0.082),    # ~45 GB/s
        "softmax": KernelEfficiency(compute=0.005, memory=0.01),
        "shape": KernelEfficiency(compute=0.05, memory=0.10),
    }
)

# ---------------------------------------------------------------------------
# GPU occupancy ramp
# ---------------------------------------------------------------------------
#
# [fit] A GPU kernel with fewer output elements than the saturation point
# cannot fill the machine; its attained throughput scales with
# sqrt(elements / saturation) (latency partially hidden).  This is what
# makes LeNet's tiny convolutions CPU-competitive (Table I: LeNet conv
# improvements up to 36%) while AlexNet/VGG convolutions are not.
# Per-kernel-class because reduction-style kernels (dense/softmax) extract
# parallelism from the input dimension too.
GPU_SATURATION_ELEMENTS: Mapping[str, float] = MappingProxyType(
    {
        "conv": 12288.0,
        "dense": 128.0,
        "pool": 16384.0,
        "activation": 32768.0,
        "norm": 16384.0,
        "softmax": 4096.0,
        "shape": 32768.0,
    }
)

# [fit] The 2080 Ti has 8.5x the cores of the Jetson iGPU; it needs
# proportionally more parallelism to saturate.  This is why the small
# benchmarks gain so little from the discrete GPU (Fig 12/13).
DISCRETE_SATURATION_SCALE = 2.0

# ---------------------------------------------------------------------------
# Launch / dispatch overheads
# ---------------------------------------------------------------------------

# [fit] CUDA kernel launch on Jetson (nvgpu channel submission).
GPU_LAUNCH_OVERHEAD_S = units.microseconds(30.0)

# [fit] OpenMP parallel-for fork/join on 8 ARM cores.
CPU_LAUNCH_OVERHEAD_S = units.microseconds(25.0)

# [fit] Discrete GPU launch via PCIe doorbell.
DISCRETE_GPU_LAUNCH_OVERHEAD_S = units.microseconds(10.0)

# [fit] Extra one-off cost of coordinating a CPU+GPU split of one kernel
# (second launch, thread wake-up, final barrier).  Together with DRAM
# contention this is what erases the small analytic gain Eq. 4 predicts
# for splitting large convolutions — the adaptive tuner then falls back to
# GPU-only, matching Table I's zeros for AlexNet conv.
PARTITION_OVERHEAD_S = units.microseconds(25.0)

# [fit] Synchronizing the two processors at a DAG join (event wait + flush).
JOIN_SYNC_OVERHEAD_S = units.microseconds(8.0)

# ---------------------------------------------------------------------------
# Memory system
# ---------------------------------------------------------------------------

# [fit] cudaMemcpy DtoH/HtoD on Jetson moves data DRAM-to-DRAM through the
# copy engine / SMMU.  Measured-class rates are ~10 GB/s.  Pinned by:
# Fig 9 integrated copy share avg 11.46%.
INTEGRATED_COPY_RATE = units.gigabytes_per_second(12.0)
INTEGRATED_COPY_LATENCY_S = units.microseconds(20.0)

# [spec/fit] PCIe 3.0 x16 effective h2d/d2h rate and per-transfer latency.
# Pinned by: Fig 9 discrete copy share avg 23.34%, max 36%.
PCIE_COPY_RATE = units.gigabytes_per_second(8.0)
PCIE_COPY_LATENCY_S = units.microseconds(20.0)

# [fit] Accessing cudaMallocManaged memory from the Jetson GPU goes through
# the coherent SMMU path and loses streaming bandwidth versus cudaMalloc'd
# memory; the loss depends on the access pattern, so it is per kernel
# class.  Pinned by: Fig 10 — AlexNet pool layers get *slower* with
# zero-copy while compute-bound convs are unchanged; Fig 8 — FCNN shows
# the smallest memory-management benefit (the managed-GEMV penalty eats
# most of its copy savings).
MANAGED_GPU_BW_FACTORS: Mapping[str, float] = MappingProxyType(
    {
        "conv": 0.95,
        "dense": 0.95,
        "pool": 0.75,
        "activation": 0.85,
        "norm": 0.85,
        "softmax": 0.90,
        "shape": 0.85,
    }
)

# [fit] The CPU reads managed memory almost at full speed (it is its own
# DRAM; only allocator bookkeeping differs).
MANAGED_CPU_BW_FACTOR = 0.97

# [fit] Page-fault style consistency cost when a managed buffer is written
# by both processors in the same step (the race the paper's Section IV-B
# warns about).  Charged per byte of the co-written buffer.  Pinned by:
# the paper's claim that two REGULAR copies + an explicit merge are
# "substantially smaller" than the zero-copy consistency cost.
MANAGED_COWRITE_PENALTY_S_PER_BYTE = 1.0 / units.gigabytes_per_second(1.0)

# [fit] First-touch overhead for a managed buffer's pages on the GPU
# (page-table setup), charged once per buffer per inference.
MANAGED_FIRST_TOUCH_S_PER_BYTE = 1.0 / units.gigabytes_per_second(220.0)

# ---------------------------------------------------------------------------
# Co-run contention
# ---------------------------------------------------------------------------

# [fit] When CPU and GPU stream memory concurrently on the unified LPDDR4x,
# the controller achieves slightly less than the sum of their solo rates.
# Total achievable DRAM bandwidth under co-run as a fraction of peak:
CORUN_DRAM_EFFICIENCY = 0.88

# [fit] Co-running kernels additionally slow each other down beyond pure
# bandwidth sharing: memory-controller arbitration, cache/SMMU interference
# and the shared power/thermal budget (documented for integrated
# architectures by Zhang et al., TPDS'16 — the paper's ref [97]).  Applied
# to intra-kernel split co-runs.  Pinned by: Table I — the ~20% analytic
# gain Eq. 4 predicts for splitting AlexNet's convolutions (t_cpu/t_gpu ~ 4)
# is erased in measurement, so the adaptive tuner falls back to GPU-only.
CORUN_CPU_SLOWDOWN = 1.15
CORUN_GPU_SLOWDOWN = 1.25

# [fit/paper] Once hybrid execution engages the CPU, the OpenMP worker
# team spin-waits between its tasks (active wait policy), so the *measured*
# CPU utilization — and hence power — stays high even while the GPU owns
# the critical path.  This reproduces §V-B2: 75% average CPU utilization
# and 5.5-7.9 W draws during EdgeNN runs.  Fraction of otherwise-idle CPU
# time burned spinning:
OMP_SPIN_UTILIZATION = 0.70

# ---------------------------------------------------------------------------
# Cloud model (paper Section V-D)
# ---------------------------------------------------------------------------

# [paper] ~400 KB compressed input image.
CLOUD_INPUT_BYTES = units.kilobytes(400.0)
# [paper] measured average uplink bandwidth ~1 MB/s.
CLOUD_BANDWIDTH = units.megabytes_per_second(1.0)
# [paper] average cloud-side latency ~100 ms.
CLOUD_LATENCY_S = units.milliseconds(100.0)
