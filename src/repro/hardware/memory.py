"""Buffer and allocation model: regular CUDA arrays vs zero-copy managed
memory.

This implements the two memory usage mechanisms of the paper's Section IV-B:

``AllocKind.REGULAR``
    The standard discrete-style allocation: the logical array has a host
    copy and a device copy (``cudaMalloc`` + ``cudaMemcpy``).  Accessing it
    from a processor whose copy is stale requires an explicit transfer
    through the copy engine; writing from one processor invalidates the
    other copy.

``AllocKind.MANAGED``
    CUDA unified memory (``cudaMallocManaged``): one allocation visible to
    both processors, no explicit copies.  On the integrated device the GPU's
    coherent access path is slower than regular device memory
    (``MANAGED_GPU_BW_FACTORS``, per kernel class), first GPU touch pays a small page
    set-up cost, and a buffer *written by both processors in one step*
    triggers the fine-grained consistency storm the paper warns about —
    modelled as a per-byte penalty far larger than an explicit merge copy.

The :class:`MemoryModel` is pure bookkeeping + cost quoting; actual
scheduling of the returned transfers/penalties is the executor's job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AllocationError, MemoryModelError
from . import calibration as cal
from .copy_engine import CopyDirection, Transfer
from .specs import DeviceSpec, ProcessorKind


class AllocKind(enum.Enum):
    """Which of the two memory usage mechanisms a buffer uses."""

    REGULAR = "regular"   # two copies + explicit cudaMemcpy
    MANAGED = "managed"   # zero-copy unified memory


@dataclass
class Buffer:
    """One logical array of the inference process."""

    name: str
    nbytes: float
    kind: AllocKind
    role: str = "activation"
    # REGULAR state: which copies currently hold the latest data.
    host_valid: bool = True
    device_valid: bool = False
    # MANAGED state: whether the GPU has touched the pages yet.
    gpu_touched: bool = False
    # Processors that wrote this buffer during the current step (for
    # detecting managed co-writes).
    writers_this_step: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise AllocationError(f"buffer {self.name!r} has negative size")


@dataclass(frozen=True)
class AccessCost:
    """Cost quote for making a buffer usable by a processor.

    ``transfers``  — explicit copies to schedule on the copy engine.
    ``overhead_s`` — fixed extra time (managed first-touch page set-up).
    ``bw_factor``  — multiplier on attained bandwidth while the kernel
                     streams this buffer (managed-path slowdown).
    """

    transfers: tuple
    overhead_s: float
    bw_factor: float


class MemoryModel:
    """Tracks every buffer of an inference run on one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self._device = device
        self._buffers: Dict[str, Buffer] = {}
        self._allocated_bytes = 0.0

    # -- allocation ---------------------------------------------------------

    def allocate(self, name: str, nbytes: float, kind: AllocKind,
                 role: str = "activation") -> Buffer:
        """Allocate a buffer; REGULAR buffers count twice (host + device)."""
        if name in self._buffers:
            raise AllocationError(f"buffer {name!r} already allocated")
        footprint = nbytes * (2.0 if kind is AllocKind.REGULAR else 1.0)
        capacity = self._device.memory.capacity_bytes
        if self._allocated_bytes + footprint > capacity:
            raise AllocationError(
                f"allocating {name!r} ({footprint:.0f} B) exceeds device "
                f"capacity {capacity:.0f} B"
            )
        if kind is AllocKind.MANAGED and not self._device.is_integrated:
            # Managed memory exists on discrete platforms too, but this
            # library only ever *chooses* it on integrated devices (the
            # paper: "usage of CUDA unified memory brings no benefit for the
            # discrete architecture").  Guard against accidental use.
            raise MemoryModelError(
                f"managed allocation of {name!r} on non-integrated device "
                f"{self._device.name!r}"
            )
        buf = Buffer(name=name, nbytes=nbytes, kind=kind, role=role)
        self._buffers[name] = buf
        self._allocated_bytes += footprint
        return buf

    def get(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError as exc:
            raise MemoryModelError(f"unknown buffer {name!r}") from exc

    @property
    def allocated_bytes(self) -> float:
        return self._allocated_bytes

    @property
    def buffers(self) -> List[Buffer]:
        return list(self._buffers.values())

    # -- access cost quoting -------------------------------------------------

    def read_cost(
        self, buf: Buffer, proc: ProcessorKind, kernel_class: str = "shape"
    ) -> AccessCost:
        """Cost of making ``buf`` readable by ``proc`` (and the bandwidth
        factor the reading kernel will see on this buffer).

        ``kernel_class`` selects the managed-access penalty: the coherent
        SMMU path hurts scattered access patterns (pooling) more than
        sequential streams (see calibration.MANAGED_GPU_BW_FACTORS)."""
        if buf.kind is AllocKind.REGULAR:
            transfers: List[Transfer] = []
            if proc is ProcessorKind.GPU and not buf.device_valid:
                transfers.append(Transfer(buf.name, buf.nbytes, CopyDirection.H2D))
                buf.device_valid = True
            elif proc is ProcessorKind.CPU and not buf.host_valid:
                transfers.append(Transfer(buf.name, buf.nbytes, CopyDirection.D2H))
                buf.host_valid = True
            return AccessCost(tuple(transfers), 0.0, 1.0)
        # MANAGED
        overhead = 0.0
        factor = cal.MANAGED_CPU_BW_FACTOR
        if proc is ProcessorKind.GPU:
            factor = cal.MANAGED_GPU_BW_FACTORS.get(kernel_class, 0.85)
            if not buf.gpu_touched:
                overhead = buf.nbytes * cal.MANAGED_FIRST_TOUCH_S_PER_BYTE
                buf.gpu_touched = True
        return AccessCost((), overhead, factor)

    def write_cost(
        self, buf: Buffer, proc: ProcessorKind, kernel_class: str = "shape"
    ) -> AccessCost:
        """Cost of ``proc`` producing (part of) ``buf``; updates validity."""
        buf.writers_this_step.add(proc)
        if buf.kind is AllocKind.REGULAR:
            if proc is ProcessorKind.GPU:
                buf.device_valid = True
                # The host copy is stale unless the CPU also writes its own
                # partition this step (merge handles reconciliation).
                if ProcessorKind.CPU not in buf.writers_this_step:
                    buf.host_valid = False
            else:
                buf.host_valid = True
                if ProcessorKind.GPU not in buf.writers_this_step:
                    buf.device_valid = False
            return AccessCost((), 0.0, 1.0)
        # MANAGED
        if proc is ProcessorKind.GPU:
            factor = cal.MANAGED_GPU_BW_FACTORS.get(kernel_class, 0.85)
        else:
            factor = cal.MANAGED_CPU_BW_FACTOR
        overhead = 0.0
        if proc is ProcessorKind.GPU and not buf.gpu_touched:
            overhead = buf.nbytes * cal.MANAGED_FIRST_TOUCH_S_PER_BYTE
            buf.gpu_touched = True
        return AccessCost((), overhead, factor)

    def cowrite_penalty(self, buf: Buffer) -> float:
        """Consistency penalty if ``buf`` was written by both processors in
        the step just finished.  Zero for REGULAR buffers (each processor
        writes its own copy; an explicit merge copy reconciles them)."""
        both = len(buf.writers_this_step) > 1
        buf.writers_this_step = set()
        if both and buf.kind is AllocKind.MANAGED:
            return buf.nbytes * cal.MANAGED_COWRITE_PENALTY_S_PER_BYTE
        return 0.0

    def stage_out(self, buf: Buffer) -> Optional[Transfer]:
        """Host staging of a GPU-produced REGULAR activation: the original
        benchmark programs copy every layer output back to the host and
        re-upload it for the next layer (each layer function is a
        self-contained memcpy-in / kernel / memcpy-out unit).  Returns the
        D2H transfer and invalidates the device copy so the consumer's
        ``read_cost`` re-uploads; ``None`` for MANAGED buffers."""
        if buf.kind is not AllocKind.REGULAR:
            return None
        buf.host_valid = True
        buf.device_valid = False
        return Transfer(buf.name, buf.nbytes, CopyDirection.D2H)

    def merge_transfer(self, buf: Buffer, cpu_fraction: float) -> Optional[Transfer]:
        """Explicit merge of a partitioned REGULAR output: the CPU's slice is
        copied into the device copy (paper Eq. 2's ``p_cpu * v_o / s``).
        Returns ``None`` when nothing needs copying."""
        if not 0.0 <= cpu_fraction <= 1.0:
            raise MemoryModelError(f"cpu fraction out of range: {cpu_fraction}")
        if buf.kind is not AllocKind.REGULAR or cpu_fraction == 0.0:
            return None
        buf.device_valid = True
        return Transfer(buf.name, buf.nbytes * cpu_fraction, CopyDirection.H2D)
