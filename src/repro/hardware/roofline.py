"""Roofline kernel cost model.

A kernel is characterized by :class:`KernelWork` — how many FLOPs it
executes and how many bytes it moves, split into input activations, weights,
and outputs (the split matters because intra-kernel CPU/GPU partitioning
duplicates activation reads but divides weights and outputs).

Its simulated execution time on a processor is the classic roofline:

    t = max(flops / attained_flops, bytes / attained_bandwidth) + launch

with per-kernel-class attained fractions from the calibration tables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SpecError
from .specs import DeviceSpec, ProcessorSpec


@dataclass(frozen=True)
class KernelWork:
    """Work performed by one kernel (one network layer, or one side of a
    partitioned layer).

    ``act_in_bytes``  — input activation bytes read.
    ``weight_bytes``  — parameter bytes read.
    ``out_bytes``     — output bytes written.
    ``out_elements``  — output element count; drives the GPU occupancy
    ramp (a kernel with few outputs cannot fill the machine).
    """

    kernel_class: str
    flops: float
    act_in_bytes: float
    weight_bytes: float
    out_bytes: float
    out_elements: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or min(self.act_in_bytes, self.weight_bytes, self.out_bytes) < 0:
            raise SpecError("kernel work terms cannot be negative")
        if self.out_elements <= 0:
            raise SpecError("out_elements must be positive")

    @property
    def total_bytes(self) -> float:
        """All bytes moved through DRAM by this kernel."""
        return self.act_in_bytes + self.weight_bytes + self.out_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte; infinity for zero-byte kernels."""
        if self.total_bytes == 0:
            return float("inf")
        return self.flops / self.total_bytes

    def scaled(self, fraction: float) -> "KernelWork":
        """The portion of this kernel assigned one processor when the output
        is split ``fraction`` / ``1 - fraction`` (e.g. by output channels).

        FLOPs, weights, and outputs divide with the split; the *full* input
        activation is read by both sides (each output channel needs every
        input channel), which is exactly why fine-grained splits are only
        attractive when memory is shared.
        """
        if not 0.0 <= fraction <= 1.0:
            raise SpecError(f"fraction out of [0, 1]: {fraction}")
        return replace(
            self,
            flops=self.flops * fraction,
            weight_bytes=self.weight_bytes * fraction,
            out_bytes=self.out_bytes * fraction,
            out_elements=max(1.0, self.out_elements * fraction),
        )


@dataclass(frozen=True)
class KernelCost:
    """Roofline cost of one kernel on one processor."""

    compute_s: float
    memory_s: float
    launch_s: float
    bytes_moved: float

    @property
    def body_s(self) -> float:
        """Kernel body time (without launch): roofline max."""
        return max(self.compute_s, self.memory_s)

    @property
    def total_s(self) -> float:
        """Wall time including launch overhead."""
        return self.body_s + self.launch_s

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_s >= self.compute_s

    @property
    def demand_bw(self) -> float:
        """Bandwidth the kernel body consumes (bytes/s) when run alone."""
        if self.body_s == 0:
            return 0.0
        return self.bytes_moved / self.body_s


def occupancy_factor(proc: ProcessorSpec, work: KernelWork) -> float:
    """GPU occupancy ramp: throughput fraction attained with this output
    size.

    Below the per-kernel-class saturation point the kernel cannot fill the
    machine; attained throughput scales linearly with
    ``elements / saturation`` (one thread per output element), floored so
    degenerate single-output kernels stay finite.  Processors without a
    saturation table (CPUs) always return 1.
    """
    if proc.saturation_elements is None:
        return 1.0
    saturation = proc.saturation_elements.get(work.kernel_class)
    if saturation is None or saturation <= 0:
        return 1.0
    return max(0.01, min(1.0, work.out_elements / saturation))


def kernel_cost(
    device: DeviceSpec,
    proc: ProcessorSpec,
    work: KernelWork,
    *,
    mem_bw_factor: float = 1.0,
    include_launch: bool = True,
) -> KernelCost:
    """Roofline cost of ``work`` on ``proc`` of ``device``.

    ``mem_bw_factor`` scales the attained bandwidth, used for managed
    (zero-copy) buffers whose coherent access path is slower.
    """
    if mem_bw_factor <= 0:
        raise SpecError(f"mem_bw_factor must be positive, got {mem_bw_factor}")
    eff = proc.efficiency_for(work.kernel_class)
    occupancy = occupancy_factor(proc, work)
    attained_flops = proc.peak_flops * eff.compute * occupancy
    attained_bw = (
        device.stream_bandwidth(proc) * eff.memory * mem_bw_factor * occupancy
    )
    compute_s = work.flops / attained_flops
    memory_s = work.total_bytes / attained_bw
    launch_s = proc.launch_overhead_s if include_launch else 0.0
    return KernelCost(
        compute_s=compute_s,
        memory_s=memory_s,
        launch_s=launch_s,
        bytes_moved=work.total_bytes,
    )
