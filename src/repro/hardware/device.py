"""Runtime device: a spec plus mutable memory / copy-engine state.

:class:`Device` is what executors and baselines operate on.  It quotes
kernel costs (roofline), owns the :class:`~repro.hardware.memory.MemoryModel`
and :class:`~repro.hardware.copy_engine.CopyEngine`, and exposes the co-run
contention primitive.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SpecError
from . import calibration as cal
from .contention import StreamJob, corun_pair
from .copy_engine import CopyEngine
from .memory import MemoryModel
from .roofline import KernelCost, KernelWork, kernel_cost
from .specs import DeviceSpec, ProcessorKind, ProcessorSpec


class Device:
    """One simulated platform instance.

    The spec is immutable; :meth:`reset` refreshes the per-run state
    (buffers, copy statistics) between inferences.
    """

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.memory = MemoryModel(spec)
        self.copy_engine: Optional[CopyEngine] = (
            CopyEngine(spec.interconnect) if spec.interconnect is not None else None
        )

    # -- structure -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_integrated(self) -> bool:
        return self.spec.is_integrated

    @property
    def has_gpu(self) -> bool:
        return self.spec.has_gpu

    def processor(self, kind: ProcessorKind) -> ProcessorSpec:
        """The processor of the requested kind; raises if absent."""
        if kind is ProcessorKind.CPU:
            return self.spec.cpu
        if self.spec.gpu is None:
            raise SpecError(f"device {self.name!r} has no GPU")
        return self.spec.gpu

    def reset(self) -> None:
        """Fresh memory model and copy statistics for a new run."""
        self.memory = MemoryModel(self.spec)
        if self.copy_engine is not None:
            self.copy_engine.reset()

    # -- cost quoting ---------------------------------------------------------

    def kernel_cost(
        self,
        proc_kind: ProcessorKind,
        work: KernelWork,
        *,
        mem_bw_factor: float = 1.0,
        include_launch: bool = True,
    ) -> KernelCost:
        """Roofline cost of ``work`` on the given processor."""
        proc = self.processor(proc_kind)
        return kernel_cost(
            self.spec, proc, work,
            mem_bw_factor=mem_bw_factor, include_launch=include_launch,
        )

    def copy_rate(self) -> float:
        """Explicit-copy rate (paper's ``s``); raises for CPU-only devices."""
        if self.copy_engine is None:
            raise SpecError(f"device {self.name!r} has no copy engine")
        return self.copy_engine.rate

    def corun(self, cpu_cost: KernelCost, gpu_cost: KernelCost) -> tuple[float, float]:
        """Body finish times of a CPU and a GPU kernel co-running.

        On a unified-memory device the streams contend for DRAM (water-
        filled shared bandwidth) and additionally slow each other down
        through arbitration/cache interference (CORUN_*_SLOWDOWN, after
        ref [97]); on a discrete device each side has its own memory and
        runs at solo speed.  Launch overheads are *not* included (callers
        schedule them separately on each stream).
        """
        if not self.is_integrated:
            return cpu_cost.body_s, gpu_cost.body_s
        cpu_job = StreamJob(
            compute_s=cpu_cost.compute_s,
            bytes_total=cpu_cost.bytes_moved,
            solo_rate=cpu_cost.demand_bw if cpu_cost.bytes_moved else 1.0,
        )
        gpu_job = StreamJob(
            compute_s=gpu_cost.compute_s,
            bytes_total=gpu_cost.bytes_moved,
            solo_rate=gpu_cost.demand_bw if gpu_cost.bytes_moved else 1.0,
        )
        cpu_s, gpu_s = corun_pair(
            cpu_job,
            gpu_job,
            self.spec.memory.bandwidth,
            corun_efficiency=self.spec.corun_dram_efficiency,
        )
        return cpu_s * cal.CORUN_CPU_SLOWDOWN, gpu_s * cal.CORUN_GPU_SLOWDOWN
