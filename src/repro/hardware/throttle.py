"""Thermal/DVFS throttling applied to a :class:`DeviceSpec`.

Edge SoCs shift operating points under power and thermal pressure: the
DVFS governor cuts processor clocks and the EMC (DRAM) frequency, which
moves every roofline the performance model computes from the spec.  The
paper evaluates a well-behaved device; the fault-injection layer
(:mod:`repro.faults`) uses this module to derive the *throttled* device
a thermal window puts the system on, exactly the way
:func:`repro.hardware.variants.jetson_power_mode` derives nvpmodel caps.

A throttled spec is a first-class :class:`DeviceSpec`: the tuner can
re-tune against it (graceful degradation re-plans for the operating
point actually in effect), and the analytic backend can execute a stale
plan on it (what a non-resilient deployment suffers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SpecError
from .specs import DeviceSpec, PowerSpec


@dataclass(frozen=True)
class ThrottleFactors:
    """Multiplicative rate cuts a throttle window applies (all in (0, 1]).

    GPU clocks are typically cut hardest under thermal pressure (the GPU
    is the hottest block on an integrated SoC), which is what shifts the
    CPU/GPU balance the tuner originally optimized for.
    """

    cpu: float = 1.0
    gpu: float = 1.0
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        for label, value in (
            ("cpu", self.cpu), ("gpu", self.gpu),
            ("bandwidth", self.bandwidth),
        ):
            if not 0.0 < value <= 1.0:
                raise SpecError(
                    f"throttle {label} factor must be in (0, 1], got {value}"
                )

    @property
    def is_noop(self) -> bool:
        return self.cpu == 1.0 and self.gpu == 1.0 and self.bandwidth == 1.0

    def slug(self) -> str:
        """Stable identifier used in derived spec/cache names."""
        return f"thr-c{self.cpu:.3f}-g{self.gpu:.3f}-b{self.bandwidth:.3f}"


def apply_throttle(spec: DeviceSpec, factors: ThrottleFactors) -> DeviceSpec:
    """``spec`` under one throttle window's DVFS operating point.

    Clocks and streaming bandwidths scale per processor, DRAM bandwidth
    by the EMC cut, and dynamic power terms track the clock cuts (lower
    clocks draw less) — the same shape as the nvpmodel power modes.  A
    no-op factor set returns ``spec`` unchanged (same object), so cache
    keys are unaffected outside fault windows.
    """
    if factors.is_noop:
        return spec
    suffix = factors.slug()
    cpu = replace(
        spec.cpu,
        name=f"{spec.cpu.name}@{suffix}",
        clock_hz=spec.cpu.clock_hz * factors.cpu,
        max_stream_bw=spec.cpu.max_stream_bw * factors.bandwidth,
    )
    if spec.cpu.peak_flops_override is not None:
        cpu = replace(
            cpu,
            peak_flops_override=spec.cpu.peak_flops_override * factors.cpu,
        )
    gpu = None
    if spec.gpu is not None:
        gpu = replace(
            spec.gpu,
            name=f"{spec.gpu.name}@{suffix}",
            clock_hz=spec.gpu.clock_hz * factors.gpu,
            max_stream_bw=spec.gpu.max_stream_bw * factors.bandwidth,
        )
        if spec.gpu.peak_flops_override is not None:
            gpu = replace(
                gpu,
                peak_flops_override=(
                    spec.gpu.peak_flops_override * factors.gpu
                ),
            )
    memory = replace(
        spec.memory,
        name=f"{spec.memory.name}@{suffix}",
        bandwidth=spec.memory.bandwidth * factors.bandwidth,
    )
    power = PowerSpec(
        idle_w=spec.power.idle_w,
        cpu_dynamic_w=spec.power.cpu_dynamic_w * factors.cpu,
        gpu_dynamic_w=spec.power.gpu_dynamic_w * factors.gpu,
    )
    return replace(
        spec,
        name=f"{spec.name}@{suffix}",
        cpu=cpu,
        gpu=gpu,
        memory=memory,
        power=power,
    )


__all__ = ["ThrottleFactors", "apply_throttle"]
