"""Unit helpers and conversions.

The whole library uses base SI units internally:

* time        — seconds (float)
* data        — bytes (float; fractional bytes are fine for rate math)
* bandwidth   — bytes / second
* compute     — FLOPs (floating point operations), rate in FLOP/s
* power       — watts
* energy      — joules

These helpers exist so specs read like the datasheets they came from
(``gigabytes_per_second(137)``) instead of bare exponents.
"""

from __future__ import annotations

KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3

KB = 1e3
MB = 1e6
GB = 1e9

#: Bare decimal magnitudes for non-byte quantities (FLOPs, Hz, counts).
#: Prefer these over inline ``1e6`` / ``1e9`` literals so the analyzer
#: (rule REPRO106) can tell a unit conversion from a magic number.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def kilobytes(n: float) -> float:
    """Decimal kilobytes to bytes."""
    return n * KB


def megabytes(n: float) -> float:
    """Decimal megabytes to bytes."""
    return n * MB


def gigabytes(n: float) -> float:
    """Decimal gigabytes to bytes."""
    return n * GB


def gigabytes_per_second(n: float) -> float:
    """GB/s to bytes/s."""
    return n * GB


def megabytes_per_second(n: float) -> float:
    """MB/s to bytes/s."""
    return n * MB


def gigaflops(n: float) -> float:
    """GFLOP/s to FLOP/s."""
    return n * 1e9


def teraflops(n: float) -> float:
    """TFLOP/s to FLOP/s."""
    return n * 1e12


def gigahertz(n: float) -> float:
    """GHz to Hz."""
    return n * 1e9


def microseconds(n: float) -> float:
    """Microseconds to seconds."""
    return n * MICROSECOND


def milliseconds(n: float) -> float:
    """Milliseconds to seconds."""
    return n * MILLISECOND


def to_milliseconds(seconds: float) -> float:
    """Seconds to milliseconds (for reports)."""
    return seconds / MILLISECOND


def to_microseconds(seconds: float) -> float:
    """Seconds to microseconds (for reports)."""
    return seconds / MICROSECOND
