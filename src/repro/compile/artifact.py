"""Serializable plan artifacts: the compilation pipeline's output.

A :class:`PlanArtifact` is everything needed to execute a compiled plan
in a *different process* without re-tuning:

* the :class:`~repro.core.plan.ExecutionPlan` itself (layer placements +
  per-buffer memory mechanisms, insertion order preserved);
* the :class:`~repro.core.plan_cache.PlanKey` it was compiled under
  (network, device, batch, precision, ablation flags, objective) — the
  full determinant of the tuning outcome;
* the :class:`Lowering` — how the plan should be executed (backend,
  stream serialization, host staging, precision, batch);
* :class:`TunerProvenance` — how the plan was derived (stage list,
  feedback rounds, per-round objective scores, final latency).

Artifacts round-trip through versioned JSON (``schema`` +
``version`` fields are validated on load), which is what the
:class:`~repro.core.plan_cache.PlanCache` disk layer and the
``repro plan compile|show`` CLI persist.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union, TYPE_CHECKING

from ..errors import ReproError
from ..core.plan import ExecutionPlan
from ..core.plan_cache import PlanKey

if TYPE_CHECKING:  # pragma: no cover
    from ..core.tuner import TuningResult

ARTIFACT_SCHEMA = "repro.plan-artifact"
ARTIFACT_VERSION = 1

#: The five pipeline stages, in execution order.
STAGE_NAMES: Tuple[str, ...] = (
    "profile", "place", "partition", "schedule", "lower",
)


def payload_checksum(payload: Mapping[str, object]) -> str:
    """Deterministic content hash of an artifact payload.

    Canonical (sorted-keys) JSON over every section except the
    ``checksum`` field itself, so the value is identical no matter which
    process serialized the artifact.  Public so the disk-load integrity
    check in :class:`~repro.core.plan_cache.PlanCache` and the static
    verifier in :mod:`repro.analysis.verifiers` agree byte-for-byte.
    """
    body = {k: v for k, v in payload.items() if k != "checksum"}
    blob = json.dumps(body, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class Lowering:
    """How a compiled plan is executed by a backend."""

    backend: str = "analytic"
    serialize: bool = False      # single-stream (original-program) execution
    host_staging: bool = False   # stage every layer output through the host
    precision: str = "fp32"
    batch_size: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Lowering":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"lowering record has unknown fields {sorted(unknown)}"
            )
        return cls(**{k: data[k] for k in known if k in data})


@dataclass(frozen=True)
class TunerProvenance:
    """How the plan was derived (summary of the tuning history)."""

    objective: str = "latency"
    converged_after: int = 0
    #: measured rounds in the history (profile pass + feedback + final).
    measured_rounds: int = 0
    #: objective score of each measured round, in order.
    round_scores: Tuple[float, ...] = ()
    #: end-to-end latency of the last measured round (seconds).
    final_total_s: float = 0.0
    stages: Tuple[str, ...] = STAGE_NAMES

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "converged_after": self.converged_after,
            "measured_rounds": self.measured_rounds,
            "round_scores": list(self.round_scores),
            "final_total_s": self.final_total_s,
            "stages": list(self.stages),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TunerProvenance":
        try:
            return cls(
                objective=str(data["objective"]),
                converged_after=int(data["converged_after"]),
                measured_rounds=int(data["measured_rounds"]),
                round_scores=tuple(
                    float(s) for s in data.get("round_scores", ())
                ),
                final_total_s=float(data.get("final_total_s", 0.0)),
                stages=tuple(str(s) for s in data.get("stages", STAGE_NAMES)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed tuner provenance: {exc}") from exc


@dataclass(frozen=True)
class PlanArtifact:
    """A versioned, serializable compiled plan."""

    key: PlanKey
    plan: ExecutionPlan
    lowering: Lowering = field(default_factory=Lowering)
    provenance: TunerProvenance = field(default_factory=TunerProvenance)
    version: int = ARTIFACT_VERSION

    def __post_init__(self) -> None:
        if self.key.network != self.plan.network:
            raise ReproError(
                f"artifact key names network {self.key.network!r} but the "
                f"plan is for {self.plan.network!r}"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_tuning(
        cls,
        key: PlanKey,
        result: "TuningResult",
        lowering: Optional[Lowering] = None,
    ) -> "PlanArtifact":
        """Package a tuning result (plus the key it was compiled under)."""
        if lowering is None:
            lowering = Lowering(
                precision=key.precision, batch_size=key.batch_size
            )
        from ..core.tuner import TuningObjective

        objective = TuningObjective(key.objective)
        provenance = TunerProvenance(
            objective=key.objective,
            converged_after=result.converged_after,
            measured_rounds=len(result.rounds),
            round_scores=tuple(
                objective.score(r) for r in result.rounds
            ),
            final_total_s=(
                result.rounds[-1].total_s if result.rounds else 0.0
            ),
        )
        return cls(
            key=key, plan=result.plan,
            lowering=lowering, provenance=provenance,
        )

    def to_tuning_result(self) -> "TuningResult":
        """Rehydrate a (round-free) tuning result for cache consumers."""
        from ..core.tuner import TuningResult

        return TuningResult(
            plan=self.plan,
            rounds=[],
            converged_after=self.provenance.converged_after,
            source="artifact",
        )

    # -- serialization --------------------------------------------------------

    #: Deterministic content hash over the payload sections (see
    #: :func:`payload_checksum`).
    _checksum_of = staticmethod(payload_checksum)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema": ARTIFACT_SCHEMA,
            "version": self.version,
            "key": self.key.to_dict(),
            "plan": self.plan.to_dict(),
            "lowering": self.lowering.to_dict(),
            "provenance": self.provenance.to_dict(),
        }
        payload["checksum"] = self._checksum_of(payload)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PlanArtifact":
        schema = data.get("schema")
        if schema != ARTIFACT_SCHEMA:
            raise ReproError(
                f"not a plan artifact (schema={schema!r}, "
                f"expected {ARTIFACT_SCHEMA!r})"
            )
        version = data.get("version")
        if version != ARTIFACT_VERSION:
            raise ReproError(
                f"unsupported plan-artifact version {version!r} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        for section in ("key", "plan"):
            if section not in data:
                raise ReproError(
                    f"plan artifact is missing its {section!r} section"
                )
        # Integrity: artifacts written by this build carry a content
        # checksum; validate it when present (older artifacts without
        # one still load).
        recorded = data.get("checksum")
        if recorded is not None:
            expected = cls._checksum_of(data)
            if recorded != expected:
                raise ReproError(
                    f"plan artifact checksum mismatch (recorded "
                    f"{str(recorded)[:12]}…, content hashes to "
                    f"{expected[:12]}…): the file is corrupt"
                )
        return cls(
            key=PlanKey.from_dict(data["key"]),
            plan=ExecutionPlan.from_dict(data["plan"]),
            lowering=Lowering.from_dict(data.get("lowering", {})),
            provenance=TunerProvenance.from_dict(
                data.get(
                    "provenance", TunerProvenance().to_dict()
                )
            ),
            version=version,
        )

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "PlanArtifact":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"plan artifact is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ReproError("plan artifact JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact as JSON atomically; returns the path.

        Goes through :func:`repro.fsutil.atomic_write_text` (tmp sibling
        + ``os.replace``), so a writer killed mid-save can never leave a
        half-written artifact where a reader expects a plan — at worst
        an orphaned ``*.tmp`` file remains.
        """
        from ..fsutil import atomic_write_text

        return atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PlanArtifact":
        """Read an artifact from a JSON file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ReproError(f"cannot read plan artifact {path}: {exc}") from exc
        return cls.from_json(text)

    # -- inspection -----------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary (``repro plan show``)."""
        key = self.key
        flags = (
            f"mm={int(key.use_memory_management)} "
            f"hybrid={int(key.use_hybrid_execution)} "
            f"inter={int(key.use_inter_kernel)} "
            f"intra={int(key.use_intra_kernel)}"
        )
        prov = self.provenance
        lines = [
            f"plan artifact v{self.version} "
            f"({key.network} on {key.device})",
            f"  key       : batch={key.batch_size} precision={key.precision} "
            f"objective={key.objective} {flags}",
            f"  plan      : {self.plan.describe()}",
            f"  lowering  : backend={self.lowering.backend} "
            f"serialize={self.lowering.serialize} "
            f"host_staging={self.lowering.host_staging}",
            f"  pipeline  : {' -> '.join(prov.stages)}",
            f"  tuning    : {prov.measured_rounds} measured rounds, "
            f"converged after {prov.converged_after}; "
            f"final latency {prov.final_total_s * 1e3:.3f} ms",
        ]
        return "\n".join(lines)
