"""Pluggable execution backends for compiled plans.

A backend consumes a :class:`~repro.compile.pipeline.CompiledPlan` and
executes it.  Two ship with the repository:

* :class:`AnalyticBackend` — the deterministic virtual-clock simulator
  (:class:`~repro.core.executor.HybridExecutor`): produces a full
  :class:`~repro.core.report.InferenceReport` with per-layer timing,
  memory traffic, and energy.  This is the cost-model path every
  benchmark, baseline, and the serving simulator run on.
* :class:`NumpyBackend` — real numeric inference via
  :meth:`~repro.nn.graph.NetworkGraph.forward`: produces the output
  logits as an :class:`numpy.ndarray`.  It validates that the compiled
  plans are *functionally* executable — placement never changes math.

Both honour the artifact's :class:`~repro.compile.artifact.Lowering`
(stream serialization, host staging, precision, batch size); analytic
callers can override per-execution concerns (warm weights, a buffer
namespace) at construction.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Optional,
    Protocol,
    runtime_checkable,
    TYPE_CHECKING,
)

import numpy as np

from ..core.executor import HybridExecutor
from ..errors import ReproError
from ..nn.graph import NetworkGraph
from ..obs import NOOP_OBS, Observability

if TYPE_CHECKING:  # pragma: no cover
    from ..core.report import InferenceReport
    from ..faults.resilience import CircuitBreaker, RetryPolicy
    from .pipeline import CompiledPlan


@runtime_checkable
class ExecutionBackend(Protocol):
    """What it takes to execute a compiled plan."""

    name: str

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ):  # pragma: no cover - protocol signature
        """Run one inference of ``compiled``; the return type is
        backend-specific (report vs logits)."""
        ...


class AnalyticBackend:
    """Deterministic cost-model execution on the virtual-clock simulator.

    ``serialize``/``host_staging`` default to ``None`` meaning "use the
    artifact's lowering"; pass booleans to override (the ablation
    baselines pin their own execution semantics).  ``warm_weights``
    starts with weights device-resident; ``namespace`` prefixes buffer
    names so multiple plans can share one device (multi-tenant).
    """

    name = "analytic"

    def __init__(
        self,
        *,
        serialize: Optional[bool] = None,
        host_staging: Optional[bool] = None,
        warm_weights: bool = False,
        namespace: str = "",
    ) -> None:
        self._serialize = serialize
        self._host_staging = host_staging
        self._warm_weights = warm_weights
        self._namespace = namespace

    def executor(
        self,
        compiled: "CompiledPlan",
        *,
        obs: Optional[Observability] = None,
    ) -> HybridExecutor:
        """The configured executor (exposed for timeline-sharing callers)."""
        lowering = compiled.artifact.lowering
        serialize = (
            lowering.serialize if self._serialize is None else self._serialize
        )
        host_staging = (
            lowering.host_staging
            if self._host_staging is None
            else self._host_staging
        )
        return HybridExecutor(
            compiled.graph,
            compiled.device,
            compiled.plan,
            serialize=serialize,
            host_staging=host_staging,
            warm_weights=self._warm_weights,
            precision=compiled.precision,
            batch_size=compiled.batch_size,
            namespace=self._namespace,
            obs=obs if obs is not None else NOOP_OBS,
        )

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ) -> "InferenceReport":
        if payload is not None:
            raise ReproError(
                "the analytic backend simulates execution and takes no "
                "input payload; use the numpy backend for real inference"
            )
        return self.executor(compiled, obs=obs).run()


class NumpyBackend:
    """Real numeric inference: forward-propagate the payload through the
    graph with deterministically initialized parameters.

    Parameters are materialized once per graph and cached on the backend
    instance, so repeated inferences (an engine's ``infer`` loop) pay
    the initialization cost once — same behaviour the engine had before
    the backend split.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._params: Dict[int, dict] = {}

    def params_for(self, graph: NetworkGraph) -> dict:
        """Materialized (cached) parameters for ``graph``."""
        key = id(graph)
        if key not in self._params:
            self._params[key] = graph.materialize_params()
        return self._params[key]

    def infer(self, graph: NetworkGraph, payload: np.ndarray) -> np.ndarray:
        return graph.forward(payload, self.params_for(graph))

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ) -> np.ndarray:
        if payload is None:
            raise ReproError(
                "the numpy backend runs real inference and needs an input "
                "array payload"
            )
        return self.infer(compiled.graph, payload)


class ResilientBackend:
    """Retry-with-backoff plus a circuit breaker around any backend.

    Wraps an inner :class:`ExecutionBackend` and absorbs *transient*
    execution failures: a failed ``execute`` is retried up to the
    policy's ``max_attempts`` with exponential-backoff-plus-jitter
    delays (accumulated on the virtual clock via ``clock``/``sleep``
    rather than wall time), and sustained failure opens a circuit
    breaker that fails fast until its reset timeout elapses.

    ``fault_hook`` is called before every inner attempt with the
    attempt index; raising from it injects a failure — that is how the
    fault layer (and the tests) drive transient faults through a real
    backend without monkey-patching it.
    """

    name = "resilient"

    def __init__(
        self,
        inner: Optional[ExecutionBackend] = None,
        *,
        retry: Optional["RetryPolicy"] = None,
        breaker: Optional["CircuitBreaker"] = None,
        clock: Optional[Callable[[], float]] = None,
        fault_hook: Optional[Callable[[int], None]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        from ..faults.resilience import CircuitBreaker, RetryPolicy

        self.inner = inner if inner is not None else AnalyticBackend()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(name=self.inner.name)
        )
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._fault_hook = fault_hook
        self._obs = obs if obs is not None else NOOP_OBS
        #: virtual seconds spent in backoff delays (callers charge this
        #: to their timeline; nothing here sleeps for real).
        self.backoff_spent_s = 0.0
        #: attempts beyond the first across all executes.
        self.retries = 0

    def _record(self, event: str, **labels: str) -> None:
        obs = self._obs
        if obs.enabled:
            obs.metrics.counter(
                "repro_resilient_backend_total",
                "ResilientBackend outcomes by event",
                labels=("event", "backend"),
            ).labels(event=event, backend=self.inner.name).inc()

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ):
        now = self._clock()
        if not self.breaker.allow(now):
            self._record("short_circuit")
            raise ReproError(
                f"circuit breaker {self.breaker.name!r} is open "
                f"(consecutive backend failures); failing fast"
            )
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            try:
                if self._fault_hook is not None:
                    self._fault_hook(attempt)
                result = self.inner.execute(
                    compiled, payload=payload, obs=obs
                )
            except ReproError as exc:
                last_error = exc
                self._record("failure")
                if attempt < self.retry.max_attempts - 1:
                    self.backoff_spent_s += self.retry.delay(
                        attempt, token=compiled.key.slug()
                    )
                    self.retries += 1
                    self._record("retry")
                continue
            self.breaker.record_success(now)
            self._record("success")
            return result
        self.breaker.record_failure(now)
        self._record("exhausted")
        raise ReproError(
            f"backend {self.inner.name!r} failed "
            f"{self.retry.max_attempts} attempts: {last_error}"
        ) from last_error


#: Registry of backend constructors by name.
BACKENDS = {
    AnalyticBackend.name: AnalyticBackend,
    NumpyBackend.name: NumpyBackend,
    ResilientBackend.name: ResilientBackend,
}


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a backend by registry name (``analytic``, ``numpy``,
    or ``resilient``)."""
    try:
        factory = BACKENDS[name]
    except KeyError as exc:
        raise ReproError(
            f"unknown execution backend {name!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from exc
    return factory(**options)


__all__ = [
    "AnalyticBackend",
    "BACKENDS",
    "ExecutionBackend",
    "NumpyBackend",
    "ResilientBackend",
    "get_backend",
]
