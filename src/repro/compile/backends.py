"""Pluggable execution backends for compiled plans.

A backend consumes a :class:`~repro.compile.pipeline.CompiledPlan` and
executes it.  Two ship with the repository:

* :class:`AnalyticBackend` — the deterministic virtual-clock simulator
  (:class:`~repro.core.executor.HybridExecutor`): produces a full
  :class:`~repro.core.report.InferenceReport` with per-layer timing,
  memory traffic, and energy.  This is the cost-model path every
  benchmark, baseline, and the serving simulator run on.
* :class:`NumpyBackend` — real numeric inference via
  :meth:`~repro.nn.graph.NetworkGraph.forward`: produces the output
  logits as an :class:`numpy.ndarray`.  It validates that the compiled
  plans are *functionally* executable — placement never changes math.

Both honour the artifact's :class:`~repro.compile.artifact.Lowering`
(stream serialization, host staging, precision, batch size); analytic
callers can override per-execution concerns (warm weights, a buffer
namespace) at construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable, TYPE_CHECKING

import numpy as np

from ..core.executor import HybridExecutor
from ..errors import ReproError
from ..nn.graph import NetworkGraph
from ..obs import NOOP_OBS, Observability

if TYPE_CHECKING:  # pragma: no cover
    from ..core.report import InferenceReport
    from .pipeline import CompiledPlan


@runtime_checkable
class ExecutionBackend(Protocol):
    """What it takes to execute a compiled plan."""

    name: str

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ):  # pragma: no cover - protocol signature
        """Run one inference of ``compiled``; the return type is
        backend-specific (report vs logits)."""
        ...


class AnalyticBackend:
    """Deterministic cost-model execution on the virtual-clock simulator.

    ``serialize``/``host_staging`` default to ``None`` meaning "use the
    artifact's lowering"; pass booleans to override (the ablation
    baselines pin their own execution semantics).  ``warm_weights``
    starts with weights device-resident; ``namespace`` prefixes buffer
    names so multiple plans can share one device (multi-tenant).
    """

    name = "analytic"

    def __init__(
        self,
        *,
        serialize: Optional[bool] = None,
        host_staging: Optional[bool] = None,
        warm_weights: bool = False,
        namespace: str = "",
    ) -> None:
        self._serialize = serialize
        self._host_staging = host_staging
        self._warm_weights = warm_weights
        self._namespace = namespace

    def executor(
        self,
        compiled: "CompiledPlan",
        *,
        obs: Optional[Observability] = None,
    ) -> HybridExecutor:
        """The configured executor (exposed for timeline-sharing callers)."""
        lowering = compiled.artifact.lowering
        serialize = (
            lowering.serialize if self._serialize is None else self._serialize
        )
        host_staging = (
            lowering.host_staging
            if self._host_staging is None
            else self._host_staging
        )
        return HybridExecutor(
            compiled.graph,
            compiled.device,
            compiled.plan,
            serialize=serialize,
            host_staging=host_staging,
            warm_weights=self._warm_weights,
            precision=compiled.precision,
            batch_size=compiled.batch_size,
            namespace=self._namespace,
            obs=obs if obs is not None else NOOP_OBS,
        )

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ) -> "InferenceReport":
        if payload is not None:
            raise ReproError(
                "the analytic backend simulates execution and takes no "
                "input payload; use the numpy backend for real inference"
            )
        return self.executor(compiled, obs=obs).run()


class NumpyBackend:
    """Real numeric inference: forward-propagate the payload through the
    graph with deterministically initialized parameters.

    Parameters are materialized once per graph and cached on the backend
    instance, so repeated inferences (an engine's ``infer`` loop) pay
    the initialization cost once — same behaviour the engine had before
    the backend split.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._params: Dict[int, dict] = {}

    def params_for(self, graph: NetworkGraph) -> dict:
        """Materialized (cached) parameters for ``graph``."""
        key = id(graph)
        if key not in self._params:
            self._params[key] = graph.materialize_params()
        return self._params[key]

    def infer(self, graph: NetworkGraph, payload: np.ndarray) -> np.ndarray:
        return graph.forward(payload, self.params_for(graph))

    def execute(
        self,
        compiled: "CompiledPlan",
        *,
        payload: Optional[np.ndarray] = None,
        obs: Optional[Observability] = None,
    ) -> np.ndarray:
        if payload is None:
            raise ReproError(
                "the numpy backend runs real inference and needs an input "
                "array payload"
            )
        return self.infer(compiled.graph, payload)


#: Registry of backend constructors by name.
BACKENDS = {
    AnalyticBackend.name: AnalyticBackend,
    NumpyBackend.name: NumpyBackend,
}


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a backend by registry name (``analytic`` or ``numpy``)."""
    try:
        factory = BACKENDS[name]
    except KeyError as exc:
        raise ReproError(
            f"unknown execution backend {name!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from exc
    return factory(**options)


__all__ = [
    "AnalyticBackend",
    "BACKENDS",
    "ExecutionBackend",
    "NumpyBackend",
    "get_backend",
]
