"""The staged plan-compilation pipeline.

EdgeNN's core loop is "derive a plan, then execute it" (Fig. 3).  This
module makes the derivation an explicit five-stage pipeline::

    profile -> place (memory) -> partition -> schedule -> lower

* **profile** — run the whole network once per processor and record
  per-layer times (§IV-A: "the performance statistics are recorded to
  guide the tuning approach").
* **place** — bind the semantic-aware memory placer (§IV-B): the policy,
  the device's zero-copy capability, and the buffer catalog.  Per-buffer
  mechanisms are (re)applied by later stages whenever layer placements
  change, because a split layer forces its output buffer to REGULAR.
* **partition** — intra-kernel placement of chain layers from the
  profiles (Eq. 1-4, §IV-C/D).
* **schedule** — inter-kernel assignment of DAG branches, assembly of
  the seed plan, and the adaptive feedback rounds that measure and
  rebalance it to convergence (§IV-D).
* **lower** — measure the final adapted plan, keep the best measured
  plan, and lower everything into a versioned, JSON-serializable
  :class:`~repro.compile.artifact.PlanArtifact`.

Every stage delegates its domain logic to the
:class:`~repro.core.tuner.AdaptiveTuner` stage methods, so the pipeline
produces *bit-identical* plans and reports to the historical monolithic
``tune()`` loop (the golden parity suite pins this).  :class:`EdgeNN`,
the four baselines, ``repro.core.service`` and the serving simulator are
all thin clients of this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union, TYPE_CHECKING

from ..core.memory_manager import MemoryPolicy, plan_allocations
from ..core.plan import ExecutionPlan, cpu_layer, gpu_layer
from ..core.plan_cache import PlanKey
from ..errors import ReproError
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..hardware.variants import spec_by_name
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from .artifact import Lowering, PlanArtifact, TunerProvenance

if TYPE_CHECKING:  # pragma: no cover
    from ..core.tuner import AdaptiveTuner, TunerConfig, TuningResult


@dataclass
class CompiledPlan:
    """A plan artifact bound to its in-memory graph and device.

    This is what execution backends consume: the artifact alone is
    enough to rebuild one in a fresh process
    (:meth:`CompiledPlan.from_artifact`).
    """

    graph: NetworkGraph
    device: Device
    artifact: PlanArtifact
    tuning: Optional["TuningResult"] = None

    def __post_init__(self) -> None:
        if self.graph.name != self.artifact.key.network:
            raise ReproError(
                f"graph {self.graph.name!r} does not match artifact "
                f"network {self.artifact.key.network!r}"
            )

    @property
    def plan(self) -> ExecutionPlan:
        return self.artifact.plan

    @property
    def key(self) -> PlanKey:
        return self.artifact.key

    @property
    def precision(self) -> Precision:
        return Precision(self.artifact.lowering.precision)

    @property
    def batch_size(self) -> int:
        return self.artifact.lowering.batch_size

    @classmethod
    def from_artifact(
        cls,
        artifact: PlanArtifact,
        *,
        graph: Optional[NetworkGraph] = None,
        device: Union[Device, DeviceSpec, None] = None,
    ) -> "CompiledPlan":
        """Rebind a deserialized artifact to a live graph and device.

        With no overrides, the graph is rebuilt from the model catalog
        and the device looked up in the full device catalog — exactly
        what a fresh process reloading a saved artifact needs.  No tuner
        is constructed anywhere on this path.
        """
        if graph is None:
            graph = build_model(artifact.key.network)
        if device is None:
            device = spec_by_name(artifact.key.device)
        if not isinstance(device, Device):
            device = Device(device)
        return cls(graph=graph, device=device, artifact=artifact)

    def execute(self, backend=None, *, payload=None, obs=None):
        """Run this plan on a backend (default: the analytic backend)."""
        from .backends import AnalyticBackend

        if backend is None:
            backend = AnalyticBackend()
        return backend.execute(self, payload=payload, obs=obs)


def _key_for_tuner(
    graph: NetworkGraph, device: Device, config: "TunerConfig"
) -> PlanKey:
    """Synthesize the provenance key for a bare-tuner compilation (the
    engine passes its real cache key instead)."""
    return PlanKey(
        network=graph.name,
        device=device.name,
        batch_size=config.batch_size,
        precision=config.precision.value,
        use_memory_management=(
            config.memory_policy is not MemoryPolicy.ALL_REGULAR
        ),
        use_hybrid_execution=(
            config.use_intra_kernel or config.use_inter_kernel
        ),
        use_inter_kernel=config.use_inter_kernel,
        use_intra_kernel=config.use_intra_kernel,
        objective=config.objective.value,
    )


class CompilerPipeline:
    """Drives the five compilation stages over an adaptive tuner."""

    def compile_with_tuner(
        self,
        tuner: "AdaptiveTuner",
        *,
        key: Optional[PlanKey] = None,
        lowering: Optional[Lowering] = None,
    ) -> CompiledPlan:
        """Run profile → place → partition → schedule → lower.

        The stage methods live on the tuner (they are the paper's §IV
        machinery); this pipeline owns ordering, tracing, and artifact
        assembly.  The outer span keeps its historical name ``tune`` so
        existing dashboards and tests keep working.
        """
        graph, device, config = tuner.graph, tuner.device, tuner.config
        obs = tuner.obs
        tracer = obs.tracer
        if key is None:
            key = _key_for_tuner(graph, device, config)
        if lowering is None:
            lowering = Lowering(
                precision=config.precision.value,
                batch_size=config.batch_size,
            )
        with tracer.span("tune", category="tuner",
                         network=graph.name,
                         objective=config.objective.value):
            with tracer.span("stage:profile", category="compile"):
                gpu_report = tuner.stage_profile()
            with tracer.span("stage:place", category="compile") as span:
                placer = tuner.placer
                span.set_attributes(
                    policy=placer.policy.value,
                    buffers=len(placer.buffer_catalog()),
                )
            with tracer.span("stage:partition", category="compile") as span:
                chain = tuner.partition_chain_layers()
                span.set_attribute("chain_layers", len(chain))
            with tracer.span("stage:schedule", category="compile") as span:
                branches = tuner.schedule_branch_layers()
                seed_plan = tuner.assemble_seed_plan(chain, branches)
                result, plan, best_plan, best_score = tuner.stage_feedback(
                    seed_plan, gpu_report
                )
                span.set_attributes(
                    branch_layers=len(branches),
                    feedback_rounds=result.converged_after,
                )
            with tracer.span("stage:lower", category="compile"):
                result = tuner.stage_lower(
                    result, plan, best_plan, best_score
                )
                artifact = PlanArtifact.from_tuning(key, result, lowering)
        return CompiledPlan(
            graph=graph, device=device, artifact=artifact, tuning=result,
        )


def compile_plan(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec, None] = None,
    config=None,
    *,
    key: Optional[PlanKey] = None,
    obs: Optional[Observability] = None,
) -> CompiledPlan:
    """Compile an adaptive (tuned) plan for one network on one device.

    ``config`` may be an :class:`~repro.core.engine.EdgeNNConfig`, a
    :class:`~repro.core.tuner.TunerConfig`, or ``None`` (defaults).
    This is the full five-stage pipeline; use :func:`compile_fixed` for
    the degenerate single-processor plans the baselines need.
    """
    from ..core.tuner import AdaptiveTuner, TunerConfig

    graph = build_model(network) if isinstance(network, str) else network
    if device is None:
        device = spec_by_name("jetson-agx-xavier")
    if not isinstance(device, Device):
        device = Device(device)
    if config is None:
        tuner_config = TunerConfig()
    elif isinstance(config, TunerConfig):
        tuner_config = config
    elif hasattr(config, "tuner_config"):
        tuner_config = config.tuner_config()
    else:
        raise ReproError(
            f"config must be EdgeNNConfig, TunerConfig, or None; "
            f"got {type(config).__name__}"
        )
    tuner = AdaptiveTuner(graph, device, tuner_config, obs=obs)
    return CompilerPipeline().compile_with_tuner(tuner, key=key)


def compile_fixed(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec],
    *,
    placement: str = "gpu",
    policy: MemoryPolicy = MemoryPolicy.ALL_REGULAR,
    serialize: bool = False,
    host_staging: bool = False,
    precision: Precision = Precision.FP32,
    batch_size: int = 1,
    obs: Optional[Observability] = None,
) -> CompiledPlan:
    """Compile a fixed single-processor plan (the baselines' path).

    The profile/partition/schedule stages are degenerate — every layer
    goes to ``placement`` — so the pipeline reduces to place + lower,
    which is exactly what the paper's "original program" and CPU-only
    comparators are.  The artifact still records the key, lowering, and
    (two-stage) provenance, so baseline plans serialize like any other.
    """
    if placement not in ("cpu", "gpu"):
        raise ReproError(
            f"fixed placement must be 'cpu' or 'gpu', got {placement!r}"
        )
    graph = build_model(network) if isinstance(network, str) else network
    dev = device if isinstance(device, Device) else Device(device)
    obs = obs if obs is not None else NOOP_OBS
    make = cpu_layer if placement == "cpu" else gpu_layer
    plan = ExecutionPlan(graph.name)
    for name in graph.topo_order():
        plan.set_layer(make(name))
    with obs.tracer.span("stage:place", category="compile",
                         network=graph.name, policy=policy.value):
        plan_allocations(graph, plan, dev.spec, policy,
                         obs=obs, stage=f"fixed:{placement}")
    key = PlanKey(
        network=graph.name,
        device=dev.name,
        batch_size=batch_size,
        precision=precision.value,
        use_memory_management=policy is not MemoryPolicy.ALL_REGULAR,
        use_hybrid_execution=False,
        use_inter_kernel=False,
        use_intra_kernel=False,
        objective="latency",
    )
    with obs.tracer.span("stage:lower", category="compile"):
        artifact = PlanArtifact(
            key=key,
            plan=plan,
            lowering=Lowering(
                serialize=serialize,
                host_staging=host_staging,
                precision=precision.value,
                batch_size=batch_size,
            ),
            provenance=TunerProvenance(stages=("place", "lower")),
        )
    return CompiledPlan(graph=graph, device=dev, artifact=artifact)


__all__ = [
    "CompiledPlan",
    "CompilerPipeline",
    "compile_fixed",
    "compile_plan",
]
