"""repro.compile — the staged plan-compilation pipeline.

Turns "derive a plan and execute it" into an explicit, inspectable
compiler: five stages (``profile → place → partition → schedule →
lower``) producing a versioned, JSON-serializable
:class:`~repro.compile.artifact.PlanArtifact`, executed by pluggable
backends (analytic simulator / NumPy numerics).

Public surface:

* :func:`compile_plan` / :func:`compile_fixed` — build a
  :class:`CompiledPlan` (tuned, or fixed single-processor);
* :class:`CompilerPipeline` — the stage driver (used by
  :meth:`repro.core.tuner.AdaptiveTuner.tune` under the hood);
* :class:`PlanArtifact` — save/load compiled plans across processes;
* :func:`get_backend` / :class:`AnalyticBackend` /
  :class:`NumpyBackend` — execute a compiled plan.
"""

from .artifact import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    STAGE_NAMES,
    Lowering,
    PlanArtifact,
    TunerProvenance,
    payload_checksum,
)
from .backends import (
    BACKENDS,
    AnalyticBackend,
    ExecutionBackend,
    NumpyBackend,
    get_backend,
)
from .pipeline import (
    CompiledPlan,
    CompilerPipeline,
    compile_fixed,
    compile_plan,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "BACKENDS",
    "STAGE_NAMES",
    "AnalyticBackend",
    "CompiledPlan",
    "CompilerPipeline",
    "ExecutionBackend",
    "Lowering",
    "NumpyBackend",
    "PlanArtifact",
    "TunerProvenance",
    "compile_fixed",
    "compile_plan",
    "get_backend",
    "payload_checksum",
]
