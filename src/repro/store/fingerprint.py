"""Producer fingerprints: *what built this plan* as stable hashes.

A tuned plan is only as valid as the model that produced it.  Two
things determine the tuning outcome besides the :class:`PlanKey`
itself:

* the :class:`~repro.hardware.specs.DeviceSpec` the plan was compiled
  against — edit a clock, a bandwidth, or a power figure and every plan
  for that device is stale;
* the cost model — the calibration constants in
  :mod:`repro.hardware.calibration` that every roofline estimate and
  feedback round is computed from (perf4sight's observation: plan
  validity is a function of the predictor, not just the key).

Both are fingerprinted here as sha256 hex digests over canonical
(sorted-keys) JSON of their actual values, so the
:class:`~repro.store.plan_store.PlanStore` can stamp every entry with
the producers that built it and invalidate entries whose producers have
since changed — without parsing source code or trusting version
strings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional

from ..hardware.specs import DeviceSpec


def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-encodable canonical form."""
    if isinstance(value, Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, (Mapping, MappingProxyType)):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _digest(payload: Any) -> str:
    blob = json.dumps(_canonical(payload), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def device_fingerprint(spec: DeviceSpec) -> str:
    """Stable content hash of one device spec's full parameterization."""
    return _digest(spec)


_COST_MODEL_CACHE: Optional[str] = None


def cost_model_fingerprint() -> str:
    """Stable content hash of the analytic cost model's calibration.

    Hashes every public module-level constant of
    :mod:`repro.hardware.calibration` — the kernel-efficiency tables,
    launch/partition overheads, copy-engine rates, co-run penalties —
    which together are the cost model the tuner optimizes against.
    Changing any of them re-fingerprints every plan in a store.
    """
    global _COST_MODEL_CACHE
    if _COST_MODEL_CACHE is None:
        from ..hardware import calibration

        constants: Dict[str, Any] = {
            name: getattr(calibration, name)
            for name in sorted(dir(calibration))
            if name.isupper() and not name.startswith("_")
        }
        _COST_MODEL_CACHE = _digest(constants)
    return _COST_MODEL_CACHE


def device_fingerprint_for(name: str) -> str:
    """Fingerprint of a catalog device by name; "" when unknown.

    Unknown devices (tests with synthetic specs, catalogs from a newer
    build) fingerprint to the empty string, which the store treats as
    "cannot check" rather than "stale".
    """
    from ..hardware.specs import DEVICE_CATALOG
    from ..hardware.variants import VARIANT_CATALOG

    spec = DEVICE_CATALOG.get(name) or VARIANT_CATALOG.get(name)
    if spec is None:
        return ""
    return device_fingerprint(spec)


__all__ = [
    "cost_model_fingerprint",
    "device_fingerprint",
    "device_fingerprint_for",
]
