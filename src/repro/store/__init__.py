"""Content-addressed, versioned plan store (tuned plans as assets).

See :mod:`repro.store.plan_store` for the storage model and
:mod:`repro.store.fingerprint` for the producer fingerprints used for
staleness invalidation.
"""

from .fingerprint import (
    cost_model_fingerprint,
    device_fingerprint,
    device_fingerprint_for,
)
from .plan_store import (
    MANIFEST_NAME,
    OBJECTS_DIR,
    QUARANTINE_DIR,
    QUARANTINE_SCHEMA,
    STORE_SCHEMA,
    STORE_VERSION,
    PlanStore,
    StoreEntry,
    StoreStats,
)

__all__ = [
    "MANIFEST_NAME",
    "OBJECTS_DIR",
    "PlanStore",
    "QUARANTINE_DIR",
    "QUARANTINE_SCHEMA",
    "STORE_SCHEMA",
    "STORE_VERSION",
    "StoreEntry",
    "StoreStats",
    "cost_model_fingerprint",
    "device_fingerprint",
    "device_fingerprint_for",
]
