"""Content-addressed, versioned plan store: tuned plans as durable assets.

``PlanCache.save_dir`` (PR 3) made tuning survive a process restart; a
*fleet* needs more.  Tuning at scale is embarrassingly parallel work
whose output — compiled plans — is the product (MITuna's model), so the
store has database obligations the flat save-dir never had:

* **Torn-write immunity.** Every write (objects *and* the manifest) is
  tmp + :func:`os.replace`; a worker killed mid-write leaves at worst
  an ignorable ``*.tmp`` corpse, never a half-written artifact.
* **Content addressing.** Artifact bytes live in
  ``objects/<sha256>.json``.  Two processes compiling the same key
  write the same bytes to the same path — concurrent writers are
  idempotent, and corruption is *detectable* (file bytes must hash to
  the file name).
* **A versioned manifest.** ``manifest.json`` maps key slugs to object
  hashes plus the *producer fingerprints* (DeviceSpec + cost-model, see
  :mod:`repro.store.fingerprint`) that built each plan.  It is the unit
  of determinism: two same-seed fleet runs must produce byte-identical
  manifests, so it contains no timestamps, no host names, no ordering
  artifacts.
* **Quarantine, not crash.** A corrupt object (checksum mismatch, torn
  JSON, wrong key) is moved to ``quarantine/`` with a provenance
  record, its manifest entry dropped, and the lookup degrades to a
  miss — the caller re-tunes.
* **Staleness invalidation.** An entry whose producing fingerprints no
  longer match the current build is reported stale and skipped on read
  (perf4sight: a plan is only as valid as its cost model).

Process model: many processes may *read* and may write *objects*
concurrently; manifest updates are last-writer-wins atomic replaces, so
concurrent manifest writers should be funneled through one coordinator
(what :class:`repro.tuning.fleet.TuneFleet` does).  In-process the
store is thread-safe: every public operation runs under one lock.
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from ..compile.artifact import PlanArtifact
from ..core.plan_cache import PlanKey
from ..errors import ReproError
from ..fsutil import atomic_write_text, sha256_text, sweep_tmp_files
from .fingerprint import cost_model_fingerprint, device_fingerprint_for

_LOG = logging.getLogger(__name__)

STORE_SCHEMA = "repro.plan-store"
STORE_VERSION = 1

#: Schema of the provenance sidecar written next to quarantined bytes.
QUARANTINE_SCHEMA = "repro.quarantine-record"

MANIFEST_NAME = "manifest.json"
OBJECTS_DIR = "objects"
QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class StoreEntry:
    """One manifest row: a plan key bound to its artifact content."""

    key: PlanKey
    sha256: str
    size: int
    device_fingerprint: str
    cost_model_fingerprint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key.to_dict(),
            "sha256": self.sha256,
            "size": self.size,
            "fingerprints": {
                "device": self.device_fingerprint,
                "cost_model": self.cost_model_fingerprint,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StoreEntry":
        try:
            fingerprints = data.get("fingerprints", {})
            if not isinstance(fingerprints, Mapping):
                raise ReproError(
                    f"entry fingerprints must be an object, "
                    f"got {fingerprints!r}"
                )
            key_data = data["key"]
            if not isinstance(key_data, Mapping):
                raise ReproError(
                    f"entry key must be an object, got {key_data!r}"
                )
            return cls(
                key=PlanKey.from_dict(key_data),
                sha256=str(data["sha256"]),
                size=int(data.get("size", 0)),  # type: ignore[arg-type]
                device_fingerprint=str(fingerprints.get("device", "")),
                cost_model_fingerprint=str(
                    fingerprints.get("cost_model", "")
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed store entry: {exc}") from exc


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time snapshot of a store's counters."""

    hits: int
    misses: int
    stale_misses: int
    quarantined: int
    entries: int


class PlanStore:
    """Content-addressed plan database rooted at one directory."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        check_fingerprints: bool = True,
        obs=None,
    ) -> None:
        self.root = Path(root)
        self._check_fingerprints = check_fingerprints
        self._obs = obs
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        #: misses caused by producer-fingerprint drift (entry kept).
        self.stale_misses = 0
        #: corrupt objects moved to quarantine (each also a miss).
        self.quarantined = 0
        self._entries: Dict[str, StoreEntry] = {}
        self._load_manifest()

    # -- paths ----------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def objects_dir(self) -> Path:
        return self.root / OBJECTS_DIR

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    def object_path(self, sha256: str) -> Path:
        return self.objects_dir / f"{sha256}.json"

    # -- manifest persistence -------------------------------------------------

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict):
                raise ReproError("store manifest must be a JSON object")
            schema = data.get("schema")
            if schema != STORE_SCHEMA:
                raise ReproError(
                    f"not a plan-store manifest (schema={schema!r}, "
                    f"expected {STORE_SCHEMA!r})"
                )
            version = data.get("version")
            if version != STORE_VERSION:
                raise ReproError(
                    f"unsupported plan-store version {version!r} "
                    f"(this build reads {STORE_VERSION})"
                )
            raw_entries = data.get("entries", {})
            if not isinstance(raw_entries, Mapping):
                raise ReproError("manifest entries must be an object")
            entries = {
                str(slug): StoreEntry.from_dict(record)
                for slug, record in raw_entries.items()
            }
        except (json.JSONDecodeError, ReproError) as exc:
            # A torn or hand-edited manifest must not take the store
            # down: quarantine it and rebuild the index from the
            # content-addressed objects, which are self-describing.
            _LOG.warning(
                "plan-store manifest %s is corrupt (%s); quarantining "
                "and rebuilding from objects", path, exc,
            )
            self._quarantine_file(
                path, label="manifest", expected_sha="",
                reason=f"corrupt manifest: {exc}",
            )
            self._entries = {}
            self.rebuild()
            return
        self._entries = entries

    def _manifest_doc(self) -> Dict[str, object]:
        return {
            "schema": STORE_SCHEMA,
            "version": STORE_VERSION,
            "entries": {
                slug: self._entries[slug].to_dict()
                for slug in sorted(self._entries)
            },
        }

    def _persist_manifest(self) -> None:
        doc = json.dumps(self._manifest_doc(), indent=1, sort_keys=True)
        atomic_write_text(self.manifest_path, doc + "\n")

    def digest(self) -> str:
        """Stable content hash of the manifest — the determinism gate.

        Two fleet runs with the same catalog, seed, and build must
        produce identical digests, no matter which workers did what in
        which order.
        """
        with self._lock:
            return sha256_text(
                json.dumps(self._manifest_doc(), sort_keys=True)
            )

    # -- fingerprints ---------------------------------------------------------

    def _fingerprints_for(self, key: PlanKey) -> Dict[str, str]:
        return {
            "device": device_fingerprint_for(key.device),
            "cost_model": cost_model_fingerprint(),
        }

    def _entry_is_stale(self, entry: StoreEntry) -> bool:
        if not self._check_fingerprints:
            return False
        current_device = device_fingerprint_for(entry.key.device)
        if (
            entry.device_fingerprint
            and current_device
            and entry.device_fingerprint != current_device
        ):
            return True
        return bool(
            entry.cost_model_fingerprint
            and entry.cost_model_fingerprint != cost_model_fingerprint()
        )

    # -- writes ---------------------------------------------------------------

    @staticmethod
    def artifact_text(artifact: PlanArtifact) -> str:
        """The exact bytes an artifact stores as (newline-terminated)."""
        return artifact.to_json() + "\n"

    def write_object(self, artifact: PlanArtifact) -> str:
        """Write the artifact's content-addressed object file; return sha.

        Safe from any process: the write is atomic and the path is a
        pure function of the content, so racing writers converge on the
        same bytes.  Does *not* touch the manifest.
        """
        text = self.artifact_text(artifact)
        sha = sha256_text(text)
        path = self.object_path(sha)
        if not path.exists():
            atomic_write_text(path, text)
        return sha

    def put(self, artifact: PlanArtifact) -> StoreEntry:
        """Store an artifact and index it under its key's slug."""
        with self._lock:
            sha = self.write_object(artifact)
            entry = StoreEntry(
                key=artifact.key,
                sha256=sha,
                size=len(self.artifact_text(artifact)),
                **{
                    f"{k}_fingerprint": v
                    for k, v in self._fingerprints_for(artifact.key).items()
                },
            )
            self._entries[artifact.key.slug()] = entry
            self._persist_manifest()
            return entry

    def register(self, key: PlanKey, sha256: str) -> StoreEntry:
        """Index an object some *other* process already wrote.

        This is the fleet-coordinator ingest path: a worker compiled the
        plan and wrote ``objects/<sha>.json``; the coordinator verifies
        the bytes really hash to ``sha256``, parse as a plan artifact,
        and carry ``key`` — then adds the manifest entry.  Any failure
        quarantines the object and raises, so a corrupted write is
        retried instead of poisoning the manifest.
        """
        with self._lock:
            path = self.object_path(sha256)
            slug = key.slug()
            try:
                text = path.read_text()
            except OSError as exc:
                raise ReproError(
                    f"plan object {path} is unreadable: {exc}"
                ) from exc
            actual = sha256_text(text)
            if actual != sha256:
                self._quarantine_object(
                    slug, path, expected_sha=sha256,
                    reason=(
                        f"content hashes to {actual[:12]}…, expected "
                        f"{sha256[:12]}… (corrupted write)"
                    ),
                    network=key.network,
                )
                raise ReproError(
                    f"plan object for {slug} failed its content check "
                    f"and was quarantined"
                )
            try:
                artifact = PlanArtifact.from_json(text)
            except ReproError as exc:
                self._quarantine_object(
                    slug, path, expected_sha=sha256,
                    reason=f"undecodable artifact: {exc}",
                    network=key.network,
                )
                raise ReproError(
                    f"plan object for {slug} is undecodable and was "
                    f"quarantined"
                ) from exc
            if artifact.key != key:
                raise ReproError(
                    f"plan object {sha256[:12]}… was compiled under "
                    f"{artifact.key.slug()!r}, not {slug!r}"
                )
            entry = StoreEntry(
                key=key,
                sha256=sha256,
                size=len(text),
                **{
                    f"{k}_fingerprint": v
                    for k, v in self._fingerprints_for(key).items()
                },
            )
            self._entries[slug] = entry
            self._persist_manifest()
            return entry

    # -- reads ----------------------------------------------------------------

    def get(self, key: PlanKey) -> Optional[PlanArtifact]:
        """Load the artifact for ``key``; None on miss/stale/corrupt.

        Corruption anywhere on the read path (object bytes not hashing
        to their name, undecodable JSON, artifact checksum mismatch,
        wrong embedded key) quarantines the object and degrades to a
        miss — the caller re-tunes, the evidence is preserved.
        """
        with self._lock:
            slug = key.slug()
            entry = self._entries.get(slug)
            if entry is None:
                self.misses += 1
                return None
            if self._entry_is_stale(entry):
                self.stale_misses += 1
                self.misses += 1
                _LOG.warning(
                    "plan-store entry %s is stale (producer fingerprint "
                    "drift); re-tune or sweep_stale()", slug,
                )
                return None
            path = self.object_path(entry.sha256)
            try:
                text = path.read_text()
            except OSError as exc:
                self._drop_entry(
                    slug, path, entry, f"object missing/unreadable: {exc}"
                )
                return None
            if sha256_text(text) != entry.sha256:
                self._drop_entry(
                    slug, path, entry,
                    "object bytes do not hash to their address",
                )
                return None
            try:
                artifact = PlanArtifact.from_json(text)
            except ReproError as exc:
                self._drop_entry(slug, path, entry, f"undecodable: {exc}")
                return None
            if artifact.key != key:
                self._drop_entry(
                    slug, path, entry,
                    f"object carries key {artifact.key.slug()!r}",
                )
                return None
            self.hits += 1
            return artifact

    def contains(self, key: PlanKey) -> bool:
        with self._lock:
            return key.slug() in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> Dict[str, StoreEntry]:
        """Slug → entry snapshot (sorted)."""
        with self._lock:
            return {
                slug: self._entries[slug] for slug in sorted(self._entries)
            }

    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                hits=self.hits,
                misses=self.misses,
                stale_misses=self.stale_misses,
                quarantined=self.quarantined,
                entries=len(self._entries),
            )

    # -- invalidation ---------------------------------------------------------

    def remove(self, key: PlanKey) -> List[Path]:
        """Drop ``key``'s entry and its object file; returns removals."""
        with self._lock:
            slug = key.slug()
            removed: List[Path] = []
            entry = self._entries.pop(slug, None)
            if entry is not None:
                path = self.object_path(entry.sha256)
                if path.exists():
                    path.unlink()
                    removed.append(path)
                self._persist_manifest()
            for corpse in self._quarantined_files(slug):
                corpse.unlink()
                removed.append(corpse)
            return removed

    def stale_entries(self) -> List[str]:
        """Slugs whose producing fingerprints no longer match this build."""
        with self._lock:
            return sorted(
                slug for slug, entry in self._entries.items()
                if self._entry_is_stale(entry)
            )

    def sweep_stale(self) -> List[str]:
        """Remove every stale entry (and object); returns their slugs."""
        with self._lock:
            stale = self.stale_entries()
            for slug in stale:
                entry = self._entries.pop(slug)
                path = self.object_path(entry.sha256)
                if path.exists():
                    path.unlink()
            if stale:
                self._persist_manifest()
            return stale

    def sweep_tmp(self) -> List[Path]:
        """Collect torn-write corpses under the store's directories."""
        with self._lock:
            removed = sweep_tmp_files(self.root)
            removed += sweep_tmp_files(self.objects_dir)
            return removed

    def rebuild(self) -> int:
        """Re-index the manifest from the object files themselves.

        Objects are self-describing (each embeds its key), so a lost or
        quarantined manifest is recoverable: scan ``objects/``, verify
        each file hashes to its address and decodes, and rebuild the
        entries.  Undecodable objects are quarantined.  Returns the
        number of indexed entries.
        """
        with self._lock:
            self._entries = {}
            for path in sorted(self.objects_dir.glob("*.json")):
                sha = path.stem
                text = path.read_text()
                if sha256_text(text) != sha:
                    self._quarantine_object(
                        path.stem[:12], path, expected_sha=sha,
                        reason="object bytes do not hash to their address",
                        network="",
                    )
                    continue
                try:
                    artifact = PlanArtifact.from_json(text)
                except ReproError as exc:
                    self._quarantine_object(
                        path.stem[:12], path, expected_sha=sha,
                        reason=f"undecodable during rebuild: {exc}",
                        network="",
                    )
                    continue
                entry = StoreEntry(
                    key=artifact.key,
                    sha256=sha,
                    size=len(text),
                    **{
                        f"{k}_fingerprint": v
                        for k, v in self._fingerprints_for(
                            artifact.key
                        ).items()
                    },
                )
                self._entries[artifact.key.slug()] = entry
            self._persist_manifest()
            return len(self._entries)

    # -- quarantine -----------------------------------------------------------

    def _drop_entry(
        self, slug: str, path: Path, entry: StoreEntry, reason: str
    ) -> None:
        """Corrupt-read bookkeeping: quarantine + de-index + count a miss."""
        self._entries.pop(slug, None)
        self._quarantine_object(
            slug, path, expected_sha=entry.sha256, reason=reason,
            network=entry.key.network,
        )
        self._persist_manifest()
        self.misses += 1

    def _quarantine_object(
        self,
        slug: str,
        path: Path,
        *,
        expected_sha: str,
        reason: str,
        network: str,
    ) -> None:
        self._quarantine_file(
            path, label=slug, expected_sha=expected_sha, reason=reason
        )
        self.quarantined += 1
        _LOG.warning(
            "quarantined plan object for %s (%s)", slug, reason,
        )
        if self._obs is not None and getattr(self._obs, "enabled", False):
            from ..obs.provenance import DegradationRecord

            self._obs.provenance.record_degradation(DegradationRecord(
                network=network,
                tenant="",
                t_s=0.0,
                trigger="artifact_corrupt",
                action="quarantine",
                reason=reason,
            ))
            self._obs.metrics.counter(
                "plan_store_quarantined_total",
                "Corrupt plan objects moved to quarantine.",
            ).inc()

    def _quarantine_file(
        self, path: Path, *, label: str, expected_sha: str, reason: str
    ) -> None:
        """Move ``path`` into quarantine/ with a provenance sidecar."""
        if not path.exists():
            return
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        prefix = expected_sha[:12] if expected_sha else "manifest"
        target = self.quarantine_dir / f"{label}.{prefix}.json"
        counter = 0
        while target.exists():
            counter += 1
            target = self.quarantine_dir / f"{label}.{prefix}.{counter}.json"
        path.replace(target)
        record = {
            "schema": QUARANTINE_SCHEMA,
            "label": label,
            "expected_sha256": expected_sha,
            "quarantined_as": target.name,
            "reason": reason,
        }
        atomic_write_text(
            target.with_name(target.name + ".record"),
            json.dumps(record, indent=1, sort_keys=True) + "\n",
        )

    def _quarantined_files(self, slug: str) -> List[Path]:
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(self.quarantine_dir.glob(f"{slug}.*"))

    def quarantine_records(self) -> List[Dict[str, object]]:
        """Parsed provenance sidecars of everything ever quarantined."""
        records: List[Dict[str, object]] = []
        with self._lock:
            if not self.quarantine_dir.is_dir():
                return records
            for path in sorted(self.quarantine_dir.glob("*.record")):
                try:
                    data = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                if (
                    isinstance(data, dict)
                    and data.get("schema") == QUARANTINE_SCHEMA
                ):
                    records.append(data)
        return records


__all__ = [
    "MANIFEST_NAME",
    "OBJECTS_DIR",
    "PlanStore",
    "QUARANTINE_DIR",
    "QUARANTINE_SCHEMA",
    "STORE_SCHEMA",
    "STORE_VERSION",
    "StoreEntry",
    "StoreStats",
]
