"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro devices                      # catalog + variants
    python -m repro networks                     # benchmark suite
    python -m repro run alexnet                  # tune + run one network
    python -m repro run alexnet --no-hybrid      # ablation arms
    python -m repro compare lenet                # vs every baseline
    python -m repro experiments                  # regenerate all artifacts
    python -m repro experiments fig06 fig09      # a subset
    python -m repro export results/              # CSV+JSON for plotting
    python -m repro plan compile alexnet -o alexnet.plan.json
    python -m repro plan show alexnet.plan.json  # inspect a saved plan
    python -m repro plan run alexnet.plan.json   # execute it (no re-tuning)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import units
from .baselines import run_cloud, run_cpu_only, run_gpu_only
from .core.engine import EdgeNN, EdgeNNConfig
from .core.tuner import TuningObjective
from .nn.precision import Precision
from .errors import ReproError
from .hardware.specs import (
    DEVICE_CATALOG,
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
)
from .hardware.variants import VARIANT_CATALOG
from .nn.models import MODEL_BUILDERS, benchmark_names, build


def _all_devices():
    catalog = dict(DEVICE_CATALOG)
    catalog.update(VARIANT_CATALOG)
    return catalog


def cmd_devices(_args) -> int:
    print(f"{'name':<24}{'type':<14}{'price':>8}  notes")
    for name, spec in _all_devices().items():
        if spec.is_integrated:
            kind = "integrated"
        elif spec.has_gpu:
            kind = "discrete"
        else:
            kind = "cpu-only"
        bw = spec.memory.bandwidth / units.GB
        print(f"{name:<24}{kind:<14}{spec.price_usd:>7.0f}$  "
              f"{spec.cpu.cores}C CPU"
              + (f" + {spec.gpu.cores}-core GPU" if spec.has_gpu else "")
              + f", {bw:.0f} GB/s DRAM")
    return 0


def cmd_networks(_args) -> int:
    print(f"{'network':<14}{'layers':>7}{'GFLOPs':>9}{'params(MB)':>12}  suite")
    for name in MODEL_BUILDERS:
        net = build(name)
        suite = "paper" if name in benchmark_names() else "extension"
        print(f"{name:<14}{len(net):>7}{net.total_flops() / units.GIGA:>9.2f}"
              f"{net.total_param_bytes() / units.MB:>12.1f}  {suite}")
    return 0


def _config_from(args) -> EdgeNNConfig:
    return EdgeNNConfig(
        use_memory_management=not args.no_memory,
        use_hybrid_execution=not args.no_hybrid,
        objective=TuningObjective(args.objective),
        precision=Precision(getattr(args, "precision", "fp32")),
        batch_size=getattr(args, "batch", 1),
    )


def _device_from(args):
    name = getattr(args, "device", None) or JETSON_AGX_XAVIER.name
    catalog = _all_devices()
    if name not in catalog:
        raise ReproError(
            f"unknown device {name!r}; see `python -m repro devices`"
        )
    return catalog[name]


def cmd_run(args) -> int:
    plan_cache = None
    if getattr(args, "plan_dir", None) or getattr(args, "store", None):
        from .core.plan_cache import PlanCache

        store = None
        if getattr(args, "store", None):
            from .store.plan_store import PlanStore

            store = PlanStore(args.store)
        plan_cache = PlanCache(save_dir=args.plan_dir, store=store)
    engine = EdgeNN(args.network, _device_from(args), _config_from(args),
                    plan_cache=plan_cache)
    tuning = engine.tune()
    report = engine.run()
    print(f"network   : {args.network} on {engine.device.name}")
    print(f"latency   : {report.total_s * 1e3:.3f} ms")
    print(f"copy share: {report.copy_share:.1%}")
    print(f"power     : {report.energy.average_power_w:.2f} W "
          f"({report.energy.energy_j:.3f} J/inference)")
    print(f"plan      : {engine.plan.describe()}")
    print(f"tuning    : converged after {tuning.converged_after} rounds"
          + (" (reloaded from artifact, 0 run here)"
             if tuning.source == "artifact" else ""))
    if args.trace:
        with open(args.trace, "w") as f:
            f.write(report.trace.to_chrome_trace())
        print(f"trace     : {args.trace}")
    return 0


def cmd_compare(args) -> int:
    network = args.network
    engine = EdgeNN(network, config=_config_from(args))
    edgenn = engine.run()
    rows = [
        ("edgenn (jetson)", edgenn.total_s, edgenn.energy.average_power_w),
    ]
    gpu = run_gpu_only(network, JETSON_AGX_XAVIER)
    rows.append(("gpu-only (jetson)", gpu.total_s, gpu.energy.average_power_w))
    for label, spec in (
        ("cpu-only (jetson)", JETSON_AGX_XAVIER),
        ("cpu-only (phone)", DIMENSITY_8100),
        ("cpu-only (rpi4)", RASPBERRY_PI_4),
    ):
        r = run_cpu_only(network, spec)
        rows.append((label, r.total_s, r.energy.average_power_w))
    dgpu = run_gpu_only(network, RTX_2080TI_HOST)
    rows.append(("2080ti (direct)", dgpu.total_s, dgpu.energy.average_power_w))
    cloud = run_cloud(network)
    rows.append(("cloud (total)", cloud.total_s, float("nan")))
    print(f"{'method':<20}{'latency_ms':>12}{'power_W':>10}{'vs edgenn':>11}")
    for label, seconds, power in rows:
        rel = seconds / edgenn.total_s
        print(f"{label:<20}{seconds * 1e3:>12.3f}{power:>10.2f}{rel:>10.2f}x")
    return 0


def cmd_breakdown(args) -> int:
    from .eval.breakdown import format_breakdown, split_candidates

    device = _device_from(args)
    print(format_breakdown(args.network, device))
    candidates = split_candidates(args.network, device)
    if candidates:
        print(f"\nsplit candidates (t_cpu/t_gpu <= 3): {', '.join(candidates)}")
    else:
        print("\nno split candidates at this scale")
    return 0


def cmd_advise(args) -> int:
    from .hardware.advisor import choose_power_mode

    rec = choose_power_mode(args.network, args.slo_ms / 1e3)
    print(rec.describe())
    return 0 if rec.feasible else 1


def cmd_trace(args) -> int:
    from .obs import Observability
    from .obs.export import chrome_trace

    obs = Observability.on()
    engine = EdgeNN(
        args.network, _device_from(args), _config_from(args), obs=obs
    )
    engine.tune(force=True)   # bypass the shared cache: trace the tuning
    report = engine.run()
    print(f"network   : {args.network} on {engine.device.name} "
          f"({report.total_s * 1e3:.3f} ms)")
    print()
    print(obs.tracer.render(max_depth=args.depth))
    print()
    print(obs.provenance.summary())
    if args.out:
        with open(args.out, "w") as f:
            f.write(chrome_trace(kernel_trace=report.trace))
        print(f"\ntrace     : {args.out} (load in ui.perfetto.dev)")
    return 0


def cmd_metrics(args) -> int:
    from .obs import Observability
    from .obs.export import metrics_json, prometheus_text

    obs = Observability.on()
    engine = EdgeNN(
        args.network, _device_from(args), _config_from(args), obs=obs
    )
    engine.tune(force=True)
    engine.run()
    if args.format == "json":
        print(metrics_json(obs.metrics, indent=2))
    else:
        print(prometheus_text(obs.metrics), end="")
    return 0


def cmd_serve(args) -> int:
    from .serving.batcher import BatchPolicy
    from .serving.simulator import (
        ServingConfig,
        ServingSimulator,
        TenantSpec,
        poisson_tenant,
    )
    from .workloads.arrivals import ClosedLoopArrivals

    scenario = None
    if args.faults:
        from .faults import load_scenario

        scenario = load_scenario(args.faults)
    policy = BatchPolicy(
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue_depth=args.queue_depth,
        deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms else None
        ),
    )
    from .obs.timeline import SloObjective

    slos = tuple(SloObjective.parse(text) for text in args.slo)
    config = ServingConfig(
        policy=policy,
        precision=Precision(args.precision),
        cold_start=args.cold_start,
        seed=args.seed,
        faults=scenario,
        resilience=not args.no_resilience,
        timeline_window_s=(
            args.timeline_window if (args.timeline_out or slos) else 0.0
        ),
        slos=slos,
    )
    tenants = []
    if args.tenant:
        # --tenant network[:rate[:weight]], repeatable.
        for i, spec in enumerate(args.tenant):
            parts = spec.split(":")
            network = parts[0]
            if network not in MODEL_BUILDERS:
                raise ReproError(
                    f"unknown network {network!r} in --tenant {spec!r}"
                )
            try:
                rate = float(parts[1]) if len(parts) > 1 else args.arrival_rate
                weight = float(parts[2]) if len(parts) > 2 else 1.0
            except ValueError:
                raise ReproError(
                    f"--tenant expects NET[:RATE[:WEIGHT]] with numeric "
                    f"rate/weight, got {spec!r}"
                ) from None
            tenants.append(poisson_tenant(
                network, rate, args.duration, seed=args.seed + i,
                weight=weight, name=f"{network}#{i}",
            ))
    elif args.closed_loop:
        tenants.append(TenantSpec(
            network=args.network,
            arrival=ClosedLoopArrivals(
                clients=args.closed_loop,
                think_s=args.think_ms / 1e3,
                duration_s=args.duration,
            ),
        ))
    else:
        tenants.append(poisson_tenant(
            args.network, args.arrival_rate, args.duration, seed=args.seed,
        ))
    from .obs import Observability
    from .obs.export import write_obs_artifacts

    if args.plan_dir or args.store:
        # Warm-start serving: plans tuned in any earlier process are
        # reloaded from DIR (or the content-addressed plan store) as
        # artifacts (zero tuner rounds), and plans tuned here are
        # persisted for the next run.
        from .core.plan_cache import configure_default_plan_cache

        configure_default_plan_cache(
            save_dir=args.plan_dir, store_dir=args.store
        )
    obs = Observability.on() if args.obs_out else Observability.off()
    if args.obs_out:
        # A warm plan cache would skip tuning entirely and leave the
        # provenance log empty; an observed run re-tunes so every
        # placement/partition decision is on record.
        from .core.plan_cache import clear_plan_cache

        clear_plan_cache()
    simulator = ServingSimulator(
        _device_from(args), tenants, config, obs=obs
    )
    report = simulator.run()
    print(report.describe())
    if scenario is not None:
        events = len(simulator.injector.events) if simulator.injector else 0
        print(
            f"faults    : scenario {scenario.name!r}, {events} events, "
            f"resilience {'on' if config.resilience else 'off'}"
        )
        print(f"fault digest : {simulator.injector.timeline_digest()}")
    print(f"report digest: {report.digest()}")
    if simulator.timeline is not None:
        if args.timeline_out:
            path = simulator.timeline.save(args.timeline_out)
            print(f"timeline  : {path}")
        print(f"timeline digest: {simulator.timeline.digest()}")
    if simulator.slo_report is not None:
        print(simulator.slo_report.render())
    if args.trace:
        with open(args.trace, "w") as f:
            f.write(simulator.trace.to_chrome_trace())
        print(f"trace     : {args.trace}")
    if args.obs_out:
        names = write_obs_artifacts(
            args.obs_out, obs,
            kernel_trace=simulator.trace, requests=simulator.requests,
        )
        print(f"obs       : {args.obs_out}/ ({', '.join(names)})")
    return 0


def cmd_cluster(args) -> int:
    from .cluster import (
        AutoscalerPolicy,
        ClusterConfig,
        ClusterSimulator,
        ClusterTenant,
        DeviceMix,
    )
    from .serving.batcher import BatchPolicy
    from .workloads.arrivals import (
        DiurnalPoissonArrivals,
        FlashCrowdArrivals,
        PoissonArrivals,
    )

    def arrival_for(rate: float, index: int):
        seed = args.seed + index
        if args.arrivals == "diurnal":
            # One full sinusoidal cycle over the run, pools offset in
            # phase so the fleet sees a rolling (not synchronized) peak.
            return DiurnalPoissonArrivals(
                rate, args.duration, period_s=args.duration,
                amplitude=0.5, phase=index * 2.0, seed=seed,
            )
        if args.arrivals == "flash":
            return FlashCrowdArrivals(
                rate, args.duration,
                spike_start_s=args.duration * 0.4,
                spike_duration_s=args.duration * 0.1,
                spike_factor=4.0, seed=seed,
            )
        return PoissonArrivals(rate, args.duration, seed=seed)

    models = args.model or ["squeezenet"]
    tenants = []
    for index, token in enumerate(models):
        network, _, rate_text = token.partition(":")
        if network not in MODEL_BUILDERS:
            raise ReproError(
                f"unknown network {network!r} in --model {token!r}"
            )
        try:
            rate = float(rate_text) if rate_text else args.rate
        except ValueError:
            raise ReproError(
                f"--model expects NET[:RATE] with a numeric rate, "
                f"got {token!r}"
            ) from None
        tenants.append(
            ClusterTenant(network, arrival_for(rate, index))
        )
    scenario = None
    if args.faults:
        from .faults import load_scenario, scale_to_horizon

        scenario = scale_to_horizon(
            load_scenario(args.faults), args.duration
        )
    if args.plan_dir or args.store:
        from .core.plan_cache import configure_default_plan_cache

        configure_default_plan_cache(
            save_dir=args.plan_dir, store_dir=args.store
        )
    mix = DeviceMix.parse(
        args.devices, throttled_share=args.throttled_share
    )
    config = ClusterConfig(
        router=args.router,
        policy=BatchPolicy(
            max_batch_size=args.max_batch,
            max_wait_s=0.0,
            max_queue_depth=args.queue_depth,
            deadline_s=(
                args.deadline_ms / 1e3 if args.deadline_ms else None
            ),
        ),
        seed=args.seed,
        objective=args.objective,
        affinity_slack=args.affinity_slack,
        autoscaler=AutoscalerPolicy() if args.autoscale else None,
        faults=scenario,
        fault_share=args.fault_share,
        fault_stagger_s=args.duration * 0.25 if scenario else 0.0,
        timeline_window_s=(
            args.timeline_window if args.timeline_out else 0.0
        ),
    )
    simulator = ClusterSimulator(tenants, mix, args.replicas, config)
    report = simulator.run()
    print(report.describe())
    print(f"report digest: {report.digest()}")
    if simulator.timeline is not None:
        path = simulator.timeline.save(args.timeline_out)
        print(f"timeline  : {path}")
        print(f"timeline digest: {simulator.timeline.digest()}")
    if args.out:
        with open(args.out, "w") as f:
            f.write(report.to_json(include_replicas=True))
        print(f"report    : {args.out}")
    return 0


def cmd_faults_list(_args) -> int:
    from .faults import SCENARIO_CATALOG

    print(f"{'scenario':<18} {'description'}")
    for name in sorted(SCENARIO_CATALOG):
        scenario = SCENARIO_CATALOG[name]
        print(f"{name:<18} {scenario.description}")
    print(
        "\nuse `repro serve --faults NAME` to inject one, "
        "`repro faults show NAME` for details"
    )
    return 0


def cmd_faults_show(args) -> int:
    from .faults import load_scenario

    scenario = load_scenario(args.scenario)
    if args.json:
        print(scenario.to_json(indent=2))
    else:
        print(scenario.describe())
    return 0


def _csv(value: Optional[str]) -> List[str]:
    if not value:
        return []
    return [item.strip() for item in value.split(",") if item.strip()]


def cmd_tune_fleet(args) -> int:
    import json

    from .faults import load_scenario
    from .faults.resilience import RetryPolicy
    from .tuning import DEFAULT_BATCH_SIZES, fleet_catalog, run_fleet

    scenario = load_scenario(args.faults) if args.faults else None
    networks = _csv(args.networks) or None
    devices = _csv(args.devices) or None
    batches = tuple(int(b) for b in _csv(args.batches)) or DEFAULT_BATCH_SIZES
    jobs = fleet_catalog(
        networks, devices, batches, hot=tuple(_csv(args.hot))
    )
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay_s=0.01,
        max_delay_s=0.25,
        seed=args.seed,
    )
    progress = None if args.json else print
    report = run_fleet(
        args.store,
        jobs,
        workers=args.workers,
        seed=args.seed,
        scenario=scenario,
        retry_policy=policy,
        lease_timeout_s=args.lease_timeout,
        progress=progress,
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
            f.write("\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    if report.poisoned and not args.allow_poison:
        print(
            f"error: {report.poisoned} job(s) poisoned after "
            f"{args.max_attempts} attempts each; the store is incomplete "
            f"(re-run to retry, or pass --allow-poison to accept)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_timeline_show(args) -> int:
    from .obs.timeline import TimelineArtifact

    artifact = TimelineArtifact.load(args.artifact)
    metrics = tuple(args.metric) or None
    print(artifact.describe(metrics, width=args.width))
    print(f"timeline digest: {artifact.digest()}")
    return 0


def cmd_timeline_diff(args) -> int:
    import json as _json

    from .obs.timeline import (
        DiffTolerances, TimelineArtifact, diff_timelines,
    )

    baseline = TimelineArtifact.load(args.baseline)
    current = TimelineArtifact.load(args.current)
    tolerances = DiffTolerances(
        max_goodput_drop=args.max_goodput_drop,
        max_p99_increase=args.max_p99_increase,
        max_rate_increase=args.max_rate_increase,
    )
    diff = diff_timelines(baseline, current, tolerances)
    if args.json:
        print(_json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.render())
    return 1 if diff.regressed else 0


def cmd_timeline_slo(args) -> int:
    import json as _json

    from .obs.timeline import (
        BurnRateRule, SloMonitor, SloObjective, TimelineArtifact,
    )

    artifact = TimelineArtifact.load(args.artifact)
    monitor = SloMonitor(
        [SloObjective.parse(text) for text in args.slo],
        BurnRateRule(
            short_windows=args.short,
            long_windows=args.long,
            factor=args.factor,
        ),
    )
    report = monitor.evaluate(artifact)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 1 if report.firing else 0


def cmd_plan_compile(args) -> int:
    from .compile import compile_plan

    compiled = compile_plan(
        args.network, _device_from(args), _config_from(args)
    )
    artifact = compiled.artifact
    print(artifact.describe())
    if args.out:
        path = artifact.save(args.out)
        print(f"\nsaved     : {path}")
    if args.plan_dir:
        import pathlib

        directory = pathlib.Path(args.plan_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = artifact.save(directory / f"{artifact.key.slug()}.json")
        print(f"saved     : {path} (plan-cache layout)")
    return 0


def cmd_plan_show(args) -> int:
    from .compile import PlanArtifact

    artifact = PlanArtifact.load(args.artifact)
    if args.json:
        print(artifact.to_json(indent=2))
        return 0
    print(artifact.describe())
    if args.layers:
        print("\nlayer placements:")
        for lp in artifact.plan.layers.values():
            frac = (f"  cpu_fraction={lp.cpu_fraction:.3f}"
                    if lp.assignment.value == "split" else "")
            print(f"  {lp.layer:<14}{lp.assignment.value}{frac}")
    return 0


def cmd_plan_run(args) -> int:
    from .compile import AnalyticBackend, CompiledPlan, PlanArtifact

    artifact = PlanArtifact.load(args.artifact)
    compiled = CompiledPlan.from_artifact(artifact)
    report = AnalyticBackend().execute(compiled)
    print(f"network   : {artifact.key.network} on {artifact.key.device} "
          f"(artifact v{artifact.version}, no tuning run)")
    print(f"latency   : {report.total_s * 1e3:.3f} ms")
    print(f"copy share: {report.copy_share:.1%}")
    print(f"power     : {report.energy.average_power_w:.2f} W "
          f"({report.energy.energy_j:.3f} J/inference)")
    print(f"plan      : {compiled.plan.describe()}")
    if args.report_json:
        import json

        with open(args.report_json, "w") as f:
            json.dump(report.to_dict(), f, indent=1)
        print(f"report    : {args.report_json}")
    return 0


def cmd_analyze(args) -> int:
    from .analysis import Baseline, analyze_paths, find_default_baseline

    root = _repo_root()
    paths = args.paths or [str(root / "src")]
    baseline = None
    if args.baseline:
        import pathlib

        if pathlib.Path(args.baseline).is_file() or not args.write_baseline:
            baseline = Baseline.load(args.baseline)
    elif not args.no_baseline:
        default = find_default_baseline(root)
        if default is not None:
            baseline = Baseline.load(default)
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    report = analyze_paths(
        paths,
        rules=rules,
        baseline=baseline,
        include_catalogs=not args.no_catalogs,
        root=root,
        graph_out=args.graph,
    )
    if args.graph:
        # stderr: --format json consumers parse stdout as one document.
        print(f"call graph written to {args.graph}", file=sys.stderr)
    if args.write_baseline:
        all_findings = report.new + report.baselined
        target = args.baseline or str(root / "analysis-baseline.json")
        Baseline.from_findings(all_findings).save(target)
        print(
            f"wrote {len(all_findings)} finding(s) to {target}; "
            f"fill in the justifications"
        )
        return 0
    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def cmd_check_plan(args) -> int:
    from .analysis import verify_artifact_file

    failed = []
    results = []
    for artifact_path in args.artifacts:
        findings = verify_artifact_file(artifact_path)
        errors = [f for f in findings if f.severity == "error"]
        if args.format == "json":
            results.append({
                "path": str(artifact_path),
                "ok": not errors,
                "findings": [f.to_dict() for f in findings],
            })
        else:
            for finding in findings:
                print(finding.render())
            status = "FAIL" if errors else "OK"
            print(f"{artifact_path}: {status} ({len(findings)} finding(s))")
        if errors:
            failed.append(str(artifact_path))
    if args.format == "json":
        import json

        print(json.dumps({"clean": not failed, "files": results}, indent=2))
    if failed:
        raise ReproError(
            f"artifact verification failed for {len(failed)} file(s): "
            f"{', '.join(failed)}"
        )
    return 0


def _repo_root():
    import pathlib

    # src/repro/cli.py -> repo root is two levels above the package.
    return pathlib.Path(__file__).resolve().parents[2]


def cmd_experiments(args) -> int:
    from .eval import experiments as ex
    from .eval import formatting as fmt

    sections = {
        "fig06": lambda: fmt.format_fig06(ex.fig06_edge_cpu_speedups()),
        "fig07": lambda: fmt.format_efficiency(
            ex.fig07_efficiency_vs_edge_cpu(), "Fig 7",
            "paper: power geomean 29.14x, price geomean 0.61"),
        "fig08": lambda: fmt.format_fig08(ex.fig08_ablation()),
        "fig09": lambda: fmt.format_fig09(ex.fig09_memcpy_share()),
        "fig10": lambda: fmt.format_layer_times(
            ex.fig10_alexnet_zero_copy_layers(),
            "Fig 10 — AlexNet layers, zero-copy off vs on"),
        "fig11": lambda: fmt.format_layer_times(
            ex.fig11_alexnet_hybrid_layers(),
            "Fig 11 — AlexNet layers with hybrid execution"),
        "table1": lambda: fmt.format_table1(ex.table1_layer_improvements()),
        "fig12": lambda: fmt.format_fig12(ex.fig12_cloud_comparison()),
        "fig13": lambda: fmt.format_efficiency(
            ex.fig13_efficiency_vs_discrete_gpu(), "Fig 13",
            "paper: power 5.70x, price 1.25x"),
        "sec5f": lambda: fmt.format_sec5f(ex.sec5f_interkernel_only()),
        "sec5b2": lambda: fmt.format_sec5b2(ex.sec5b2_utilization()),
    }
    requested = args.ids or list(sections)
    unknown = [i for i in requested if i not in sections]
    if unknown:
        raise ReproError(f"unknown experiment ids {unknown}; "
                         f"available: {sorted(sections)}")
    for artifact_id in requested:
        print(sections[artifact_id]())
        print()
    return 0


def cmd_export(args) -> int:
    from .eval.export import write_all

    written = write_all(args.directory)
    print(f"wrote {len(written)} artifacts (csv+json) to {args.directory}:")
    for artifact_id in written:
        print(f"  {artifact_id}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EdgeNN reproduction (ICDE 2023): efficient NN "
                    "inference for CPU-GPU integrated edge devices.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list simulated platforms").set_defaults(
        func=cmd_devices
    )
    sub.add_parser("networks", help="list benchmark networks").set_defaults(
        func=cmd_networks
    )

    def add_engine_flags(p):
        p.add_argument("--no-memory", action="store_true",
                       help="disable semantic-aware memory management")
        p.add_argument("--no-hybrid", action="store_true",
                       help="disable CPU-GPU hybrid execution")
        p.add_argument("--objective", default="latency",
                       choices=[o.value for o in TuningObjective],
                       help="tuning objective (default: latency)")
        p.add_argument("--precision", default="fp32",
                       choices=[p_.value for p_ in Precision],
                       help="inference datatype (default: fp32)")
        p.add_argument("--batch", type=int, default=1,
                       help="frames per inference (default: 1)")

    run = sub.add_parser("run", help="tune and run one network")
    run.add_argument("network", choices=list(MODEL_BUILDERS))
    run.add_argument("--device", default=None,
                     help="integrated device name (default jetson)")
    run.add_argument("--trace", default=None,
                     help="write a Chrome trace of the schedule here")
    run.add_argument("--plan-dir", default=None, metavar="DIR",
                     help="persist/reuse tuned plans as artifacts in DIR")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="read/write plans through a content-addressed "
                          "plan store (see `repro tune-fleet`)")
    add_engine_flags(run)
    run.set_defaults(func=cmd_run)

    plan = sub.add_parser(
        "plan", help="compile, inspect, and execute serialized plan artifacts"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)

    plan_compile = plan_sub.add_parser(
        "compile", help="run the compilation pipeline and save the artifact"
    )
    plan_compile.add_argument("network", choices=list(MODEL_BUILDERS))
    plan_compile.add_argument("--device", default=None,
                              help="integrated device name (default jetson)")
    plan_compile.add_argument("-o", "--out", default=None, metavar="FILE",
                              help="write the artifact JSON here")
    plan_compile.add_argument("--plan-dir", default=None, metavar="DIR",
                              help="also save under DIR with the plan-cache "
                                   "file name (slug of the plan key)")
    add_engine_flags(plan_compile)
    plan_compile.set_defaults(func=cmd_plan_compile)

    plan_show = plan_sub.add_parser(
        "show", help="describe a saved plan artifact"
    )
    plan_show.add_argument("artifact", help="path to a plan-artifact JSON")
    plan_show.add_argument("--json", action="store_true",
                           help="dump the full artifact JSON")
    plan_show.add_argument("--layers", action="store_true",
                           help="list every layer placement")
    plan_show.set_defaults(func=cmd_plan_show)

    plan_run = plan_sub.add_parser(
        "run", help="execute a saved plan artifact (no tuning)"
    )
    plan_run.add_argument("artifact", help="path to a plan-artifact JSON")
    plan_run.add_argument("--report-json", default=None, metavar="FILE",
                          help="write the full inference report as JSON")
    plan_run.set_defaults(func=cmd_plan_run)

    compare = sub.add_parser("compare", help="compare against all baselines")
    compare.add_argument("network", choices=list(MODEL_BUILDERS))
    add_engine_flags(compare)
    compare.set_defaults(func=cmd_compare)

    breakdown = sub.add_parser(
        "breakdown", help="roofline boundness analysis of one network"
    )
    breakdown.add_argument("network", choices=list(MODEL_BUILDERS))
    breakdown.add_argument("--device", default=None)
    breakdown.set_defaults(func=cmd_breakdown)

    advise = sub.add_parser(
        "advise", help="lowest Jetson power mode meeting a latency SLO"
    )
    advise.add_argument("network", choices=list(MODEL_BUILDERS))
    advise.add_argument("--slo-ms", type=float, required=True,
                        help="latency target in milliseconds")
    advise.set_defaults(func=cmd_advise)

    serve = sub.add_parser(
        "serve", help="simulate a request-serving run (queue + batching)"
    )
    serve.add_argument("--network", default="alexnet",
                       choices=list(MODEL_BUILDERS),
                       help="model to serve (default alexnet)")
    serve.add_argument("--device", default=None,
                       help="integrated device name (default jetson)")
    serve.add_argument("--arrival-rate", type=float, default=10.0,
                       help="open-loop Poisson arrival rate, req/s")
    serve.add_argument("--duration", type=float, default=10.0,
                       help="admission horizon in virtual seconds")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="dynamic batcher max batch size (default 8)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="max batching wait for the oldest request")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="bounded queue depth before shedding")
    serve.add_argument("--closed-loop", type=int, default=0, metavar="N",
                       help="closed loop with N clients instead of Poisson")
    serve.add_argument("--think-ms", type=float, default=100.0,
                       help="closed-loop client think time")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="NET[:RATE[:WEIGHT]]",
                       help="add a tenant (repeatable; overrides --network)")
    serve.add_argument("--precision", default="fp32",
                       choices=[p_.value for p_ in Precision])
    serve.add_argument("--cold-start", action="store_true",
                       help="charge cold-start staging to the first batch")
    serve.add_argument("--seed", type=int, default=0,
                       help="arrival-stream seed (runs replay exactly)")
    serve.add_argument("--trace", default=None,
                       help="write a Chrome trace of the batch schedule")
    serve.add_argument("--obs-out", default=None, metavar="DIR",
                       help="enable full observability and write trace/"
                            "metrics/provenance artifacts to DIR")
    serve.add_argument("--plan-dir", default=None, metavar="DIR",
                       help="persist/reuse tuned plans as artifacts in DIR "
                            "(warm-start serving across processes)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="warm-start from a `repro tune-fleet` plan "
                            "store (zero tuner rounds on catalog hits)")
    serve.add_argument("--faults", default=None, metavar="SCENARIO",
                       help="inject faults: a built-in scenario name "
                            "(see `repro faults list`) or a scenario "
                            "JSON file")
    serve.add_argument("--no-resilience", action="store_true",
                       help="disable the resilience layer (retries, "
                            "breaker, degradation, payload validation) "
                            "to see what a naive service suffers")
    serve.add_argument("--deadline-ms", type=float, default=0.0,
                       help="per-request deadline; requests still queued "
                            "(or completing) past it are abandoned as "
                            "timed out (0 disables)")
    serve.add_argument("--timeline-out", default=None, metavar="FILE",
                       help="record a windowed telemetry timeline and "
                            "save the artifact JSON to FILE")
    serve.add_argument("--timeline-window", type=float, default=1.0,
                       metavar="SECONDS",
                       help="timeline window width in virtual seconds "
                            "(default 1.0)")
    serve.add_argument("--slo", action="append", default=[],
                       metavar="EXPR",
                       help="declare an SLO objective such as "
                            "'goodput_ratio>=0.99' or 'p99_ms<=250' "
                            "(repeatable; enables timeline recording and "
                            "burn-rate alerting)")
    serve.set_defaults(func=cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="simulate a heterogeneous device fleet behind a router",
    )
    cluster.add_argument("--model", action="append", default=[],
                         metavar="NET[:RATE]",
                         help="add a model pool with an open-loop stream "
                              "(repeatable; default squeezenet)")
    cluster.add_argument("--devices",
                         default="jetson-agx-xavier:3,dimensity-8100:2,"
                                 "raspberry-pi-4:1,rtx-2080ti-host:1",
                         metavar="NAME[:W],...",
                         help="weighted device mix drawn from the catalog")
    cluster.add_argument("--replicas", type=int, default=32,
                         help="initial replicas per model pool")
    cluster.add_argument("--router", default="plan_cost",
                         choices=["round_robin", "least_queue", "plan_cost"],
                         help="routing policy (default plan_cost)")
    cluster.add_argument("--objective", default="latency",
                         choices=["latency", "energy"],
                         help="plan_cost routing objective")
    cluster.add_argument("--affinity-slack", type=float, default=0.0,
                         help="plan_cost tenant stickiness slack "
                              "(0 disables affinity)")
    cluster.add_argument("--rate", type=float, default=100.0,
                         help="per-model arrival rate when --model has "
                              "no :RATE (req/s)")
    cluster.add_argument("--duration", type=float, default=60.0,
                         help="admission horizon in virtual seconds")
    cluster.add_argument("--arrivals", default="diurnal",
                         choices=["poisson", "diurnal", "flash"],
                         help="arrival shape per model stream")
    cluster.add_argument("--deadline-ms", type=float, default=5000.0,
                         help="per-request deadline (0 disables)")
    cluster.add_argument("--max-batch", type=int, default=8,
                         help="per-replica max batch size")
    cluster.add_argument("--queue-depth", type=int, default=64,
                         help="per-replica bounded queue depth")
    cluster.add_argument("--throttled-share", type=float, default=0.0,
                         help="fraction of replicas derived as thermally "
                              "throttled variants")
    cluster.add_argument("--faults", default=None, metavar="SCENARIO",
                         help="fault scenario applied to --fault-share of "
                              "replicas (name or JSON file)")
    cluster.add_argument("--fault-share", type=float, default=0.25,
                         help="fraction of replicas the scenario hits")
    cluster.add_argument("--autoscale", action="store_true",
                         help="enable the per-pool autoscaler")
    cluster.add_argument("--seed", type=int, default=0,
                         help="run seed (same seed replays bit-identically)")
    cluster.add_argument("--plan-dir", default=None, metavar="DIR",
                         help="persist/reuse tuned plans as artifacts in DIR")
    cluster.add_argument("--store", default=None, metavar="DIR",
                         help="warm-start every pool from a `repro "
                              "tune-fleet` plan store")
    cluster.add_argument("--out", default=None, metavar="FILE",
                         help="write the full ClusterReport JSON to FILE")
    cluster.add_argument("--timeline-out", default=None, metavar="FILE",
                         help="record a windowed telemetry timeline and "
                              "save the artifact JSON to FILE")
    cluster.add_argument("--timeline-window", type=float, default=1.0,
                         metavar="SECONDS",
                         help="timeline window width in virtual seconds "
                              "(default 1.0)")
    cluster.set_defaults(func=cmd_cluster)

    timeline = sub.add_parser(
        "timeline",
        help="inspect, diff, and SLO-gate saved telemetry timelines",
    )
    timeline_sub = timeline.add_subparsers(
        dest="timeline_command", required=True
    )
    timeline_show = timeline_sub.add_parser(
        "show", help="render an ASCII sparkline dashboard of an artifact"
    )
    timeline_show.add_argument("artifact",
                               help="path to a timeline-artifact JSON")
    timeline_show.add_argument("--metric", action="append", default=[],
                               metavar="NAME",
                               help="metric to plot (repeatable; default "
                                    "is the standard dashboard set)")
    timeline_show.add_argument("--width", type=int, default=64,
                               help="sparkline width in characters")
    timeline_show.set_defaults(func=cmd_timeline_show)
    timeline_diff = timeline_sub.add_parser(
        "diff",
        help="compare two timelines; exit 1 on behavioral regression",
    )
    timeline_diff.add_argument("baseline",
                               help="baseline timeline-artifact JSON")
    timeline_diff.add_argument("current",
                               help="candidate timeline-artifact JSON")
    timeline_diff.add_argument("--max-goodput-drop", type=float,
                               default=0.05, metavar="FRAC",
                               help="tolerated relative goodput drop "
                                    "(default 0.05)")
    timeline_diff.add_argument("--max-p99-increase", type=float,
                               default=0.10, metavar="FRAC",
                               help="tolerated relative p99 increase "
                                    "(default 0.10)")
    timeline_diff.add_argument("--max-rate-increase", type=float,
                               default=0.02, metavar="FRAC",
                               help="tolerated absolute shed/miss rate "
                                    "increase (default 0.02)")
    timeline_diff.add_argument("--json", action="store_true",
                               help="emit the diff as JSON")
    timeline_diff.set_defaults(func=cmd_timeline_diff)
    timeline_slo = timeline_sub.add_parser(
        "slo",
        help="evaluate SLO burn-rate alerts; exit 1 if any fire",
    )
    timeline_slo.add_argument("artifact",
                              help="path to a timeline-artifact JSON")
    timeline_slo.add_argument("--slo", action="append", required=True,
                              metavar="EXPR",
                              help="objective such as 'goodput_ratio>=0.99' "
                                   "(repeatable)")
    timeline_slo.add_argument("--short", type=int, default=1,
                              metavar="N",
                              help="short burn window count (default 1)")
    timeline_slo.add_argument("--long", type=int, default=5,
                              metavar="N",
                              help="long burn window count (default 5)")
    timeline_slo.add_argument("--factor", type=float, default=1.0,
                              help="burn-rate factor both windows must "
                                   "exceed (default 1.0)")
    timeline_slo.add_argument("--json", action="store_true",
                              help="emit the SLO report as JSON")
    timeline_slo.set_defaults(func=cmd_timeline_slo)

    faults = sub.add_parser(
        "faults", help="inspect the fault-injection scenario catalog"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_list = faults_sub.add_parser(
        "list", help="list built-in fault scenarios"
    )
    faults_list.set_defaults(func=cmd_faults_list)
    faults_show = faults_sub.add_parser(
        "show", help="describe one scenario (built-in name or JSON file)"
    )
    faults_show.add_argument("scenario",
                             help="catalog name or scenario JSON path")
    faults_show.add_argument("--json", action="store_true",
                             help="emit the scenario as JSON (a template "
                                  "for custom scenario files)")
    faults_show.set_defaults(func=cmd_faults_show)

    tune_fleet = sub.add_parser(
        "tune-fleet",
        help="ahead-of-time compile a plan catalog across a fault-"
             "tolerant multiprocess fleet into a content-addressed store",
    )
    tune_fleet.add_argument("--store", required=True, metavar="DIR",
                            help="plan-store root (created if missing; "
                                 "warm re-runs skip plans already there)")
    tune_fleet.add_argument("--workers", type=int, default=4,
                            help="process-pool size (default 4)")
    tune_fleet.add_argument("--seed", type=int, default=0,
                            help="fault + retry-jitter seed (same seed, "
                                 "same catalog -> byte-identical manifest)")
    tune_fleet.add_argument("--faults", default=None, metavar="SCENARIO",
                            help="inject worker crashes / artifact "
                                 "corruption: a scenario name (e.g. "
                                 "flaky-fleet) or a JSON file")
    tune_fleet.add_argument("--networks", default=None, metavar="A,B,...",
                            help="restrict the catalog to these networks "
                                 "(default: all benchmark networks)")
    tune_fleet.add_argument("--devices", default=None, metavar="A,B,...",
                            help="restrict to these devices (default: "
                                 "the full catalog incl. variants)")
    tune_fleet.add_argument("--batches", default=None, metavar="N,N,...",
                            help="batch sizes to compile (default 1,2,4,8)")
    tune_fleet.add_argument("--hot", default=None, metavar="A,B,...",
                            help="networks to prioritize (claimed first, "
                                 "like batch-1 keys)")
    tune_fleet.add_argument("--max-attempts", type=int, default=6,
                            help="attempts before a job is poisoned "
                                 "(default 6)")
    tune_fleet.add_argument("--lease-timeout", type=float, default=60.0,
                            metavar="SECONDS",
                            help="claim lease before the coordinator "
                                 "re-queues a silent worker (default 60)")
    tune_fleet.add_argument("--allow-poison", action="store_true",
                            help="exit 0 even if some jobs were poisoned "
                                 "(default: incomplete store exits 1)")
    tune_fleet.add_argument("--json", action="store_true",
                            help="emit the fleet report as JSON")
    tune_fleet.add_argument("--out", default=None, metavar="FILE",
                            help="also write the fleet report JSON here")
    tune_fleet.set_defaults(func=cmd_tune_fleet)

    trace = sub.add_parser(
        "trace", help="tune + run one network fully instrumented: span "
                      "tree, decision provenance, Perfetto trace"
    )
    trace.add_argument("network", choices=list(MODEL_BUILDERS))
    trace.add_argument("--device", default=None,
                       help="integrated device name (default jetson)")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write the kernel timeline as Chrome-trace JSON")
    trace.add_argument("--depth", type=int, default=None,
                       help="limit the printed span tree depth")
    add_engine_flags(trace)
    trace.set_defaults(func=cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="run one network and dump the metrics registry"
    )
    metrics.add_argument("network", choices=list(MODEL_BUILDERS))
    metrics.add_argument("--device", default=None,
                         help="integrated device name (default jetson)")
    metrics.add_argument("--format", default="prom",
                         choices=("prom", "json"),
                         help="Prometheus text (default) or JSON")
    add_engine_flags(metrics)
    metrics.set_defaults(func=cmd_metrics)

    analyze = sub.add_parser(
        "analyze", help="static analysis: determinism lint, concurrency "
                        "heuristic, interprocedural dataflow (seed-taint, "
                        "lock order, durability), lease-protocol model "
                        "check, catalog verifiers"
    )
    analyze.add_argument("paths", nargs="*",
                         help="files/directories to analyze (default: src/)")
    analyze.add_argument("--rules", default=None, metavar="IDS",
                         help="comma-separated rule ids or families "
                              "(default: all; e.g. REPRO101,REPRO201 or "
                              "REPRO21x,REPRO22x,REPRO23x,REPRO24x)")
    analyze.add_argument("--graph", default=None, metavar="FILE",
                         help="also dump the project call graph as "
                              "deterministic JSON to FILE")
    analyze.add_argument("--format", default="text",
                         choices=("text", "json"),
                         help="output format (default text)")
    analyze.add_argument("--baseline", default=None, metavar="FILE",
                         help="baseline-suppression file (default: "
                              "analysis-baseline.json at the repo root)")
    analyze.add_argument("--no-baseline", action="store_true",
                         help="ignore any baseline file (report everything)")
    analyze.add_argument("--no-catalogs", action="store_true",
                         help="skip the in-process device/scenario/model "
                              "catalog verifiers")
    analyze.add_argument("--write-baseline", action="store_true",
                         help="write every current finding to the baseline "
                              "file and exit 0 (adoption workflow)")
    analyze.set_defaults(func=cmd_analyze)

    check_plan = sub.add_parser(
        "check-plan", help="statically verify plan-artifact / fault-"
                           "scenario JSON files or a whole plan store "
                           "without executing them"
    )
    check_plan.add_argument("artifacts", nargs="+",
                            help="JSON files (plan artifacts, fault "
                                 "scenarios, store manifests — by schema) "
                                 "or plan-store directories to verify")
    check_plan.add_argument("--format", default="text",
                            choices=("text", "json"))
    check_plan.set_defaults(func=cmd_check_plan)

    exp = sub.add_parser("experiments",
                         help="regenerate the paper's tables/figures")
    exp.add_argument("ids", nargs="*", help="artifact ids (default: all)")
    exp.set_defaults(func=cmd_experiments)

    export = sub.add_parser("export", help="dump experiment CSV/JSON")
    export.add_argument("directory")
    export.set_defaults(func=cmd_export)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
