"""Discrete-event simulation primitives: timeline, trace, statistics."""

from .stats import ResourceStats, corun_share, resource_stats, utilization_profile
from .timeline import COPY, CPU, GPU, ScheduledEvent, Timeline
from .trace import Trace, TraceEvent

__all__ = [
    "COPY",
    "CPU",
    "GPU",
    "ResourceStats",
    "ScheduledEvent",
    "Timeline",
    "Trace",
    "TraceEvent",
    "corun_share",
    "resource_stats",
    "utilization_profile",
]
