"""Execution trace records and Chrome-trace export.

Every scheduled interval on the timeline becomes a :class:`TraceEvent`.
``Trace.to_chrome_trace()`` emits the ``chrome://tracing`` / Perfetto JSON
format so simulated schedules can be inspected visually.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .. import units
from ..errors import ReproError


@dataclass(frozen=True)
class TraceEvent:
    """One interval of work on one resource."""

    resource: str      # e.g. "cpu", "gpu", "copy"
    label: str         # e.g. "conv1", "memcpy:fc6.weights"
    start_s: float
    end_s: float
    category: str = "kernel"   # kernel | copy | sync | overhead

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ReproError(
                f"trace event {self.label!r} on {self.resource!r} ends "
                f"before it starts ({self.end_s} < {self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Trace:
    """An append-only collection of trace events for one simulated run."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def add(self, event: TraceEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def events_for(self, resource: str) -> List[TraceEvent]:
        """Events on one resource, in schedule order."""
        return [e for e in self._events if e.resource == resource]

    def busy_time(self, resource: str, category: Optional[str] = None) -> float:
        """Total scheduled time on a resource (optionally one category).

        Events on a single resource never overlap (the timeline serializes
        them), so summing durations is exact.
        """
        return sum(
            e.duration_s
            for e in self._events
            if e.resource == resource and (category is None or e.category == category)
        )

    def span(self) -> float:
        """Makespan: latest end time across all events (0 for empty traces)."""
        if not self._events:
            return 0.0
        return max(e.end_s for e in self._events)

    def to_chrome_trace(self) -> str:
        """Serialize to the Chrome trace-event JSON format (microseconds)."""
        pid_for: Dict[str, int] = {}
        records = []
        for event in self._events:
            tid = pid_for.setdefault(event.resource, len(pid_for) + 1)
            records.append(
                {
                    "name": event.label,
                    "cat": event.category,
                    "ph": "X",
                    "ts": units.to_microseconds(event.start_s),
                    "dur": units.to_microseconds(event.duration_s),
                    "pid": 1,
                    "tid": tid,
                }
            )
        meta: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "simulated device"},
            }
        ]
        for resource, tid in pid_for.items():
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": resource},
            })
            meta.append({
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            })
        return json.dumps({"traceEvents": meta + records})
