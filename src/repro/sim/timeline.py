"""Multi-resource discrete-event timeline.

The hybrid executor schedules kernels, copies, and synchronization points on
named resources ("cpu", "gpu", "copy").  Each resource processes its work
serially (a CUDA stream / an OpenMP team / a copy engine); cross-resource
ordering is expressed through dependencies on previously scheduled
:class:`ScheduledEvent` handles.

``schedule(resource, duration, after=[...])`` places the work at
``max(resource_free, deps_end)`` — i.e. resources run eagerly as soon as
both the resource and the inputs are available, which is exactly the lazy
synchronization strategy of the paper's Section IV-C (synchronize only when
the data dependency requires it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from ..errors import SimulationError
from .trace import Trace, TraceEvent

#: Conventional resource names used by executors.
CPU = "cpu"
GPU = "gpu"
COPY = "copy"


@dataclass(frozen=True)
class ScheduledEvent:
    """Handle to one scheduled interval; used as a dependency for later work."""

    resource: str
    label: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Timeline:
    """Tracks per-resource availability and accumulates the trace."""

    def __init__(self, resources: Iterable[str] = (CPU, GPU, COPY)) -> None:
        self._free_at: Dict[str, float] = {r: 0.0 for r in resources}
        if not self._free_at:
            raise SimulationError("timeline needs at least one resource")
        self.trace = Trace()

    @property
    def resources(self) -> Sequence[str]:
        return tuple(self._free_at)

    def free_at(self, resource: str) -> float:
        """When the resource next becomes available."""
        self._check(resource)
        return self._free_at[resource]

    def now(self) -> float:
        """Latest point any resource is busy until (current makespan)."""
        return max(self._free_at.values())

    def schedule(
        self,
        resource: str,
        duration_s: float,
        label: str,
        *,
        after: Sequence[ScheduledEvent] = (),
        category: str = "kernel",
        not_before: float = 0.0,
    ) -> ScheduledEvent:
        """Place ``duration_s`` of work on ``resource``.

        Start time is the max of: the resource's next free instant, the end
        of every dependency, and ``not_before``.  Zero-duration events are
        allowed (pure ordering points) and are still traced when labelled.
        """
        self._check(resource)
        if duration_s < 0:
            raise SimulationError(f"negative duration for {label!r}")
        start = max(self._free_at[resource], not_before)
        for dep in after:
            start = max(start, dep.end_s)
        end = start + duration_s
        self._free_at[resource] = end
        event = ScheduledEvent(resource=resource, label=label, start_s=start, end_s=end)
        self.trace.add(
            TraceEvent(
                resource=resource, label=label,
                start_s=start, end_s=end, category=category,
            )
        )
        return event

    def barrier(self, label: str = "barrier") -> ScheduledEvent:
        """Synchronize all resources at the current makespan.

        Models ``cudaDeviceSynchronize`` plus a CPU join: every resource's
        next work starts at or after this instant.
        """
        t = self.now()
        for resource in self._free_at:
            self._free_at[resource] = t
        return ScheduledEvent(resource="*", label=label, start_s=t, end_s=t)

    def busy_time(self, resource: str) -> float:
        """Total scheduled time on a resource."""
        self._check(resource)
        return self.trace.busy_time(resource)

    def utilization(self, resource: str) -> float:
        """Busy share of the makespan (0 if nothing ran)."""
        span = self.trace.span()
        if span == 0:
            return 0.0
        return min(1.0, self.busy_time(resource) / span)

    def _check(self, resource: str) -> None:
        if resource not in self._free_at:
            raise SimulationError(
                f"unknown resource {resource!r}; have {sorted(self._free_at)}"
            )
