"""Vectorized virtual-clock event core shared by both simulators.

The serving (:mod:`repro.serving.simulator`) and cluster
(:mod:`repro.cluster.simulator`) event loops used to each own their
clock machinery — per-request Python objects, ad-hoc heaps, duplicated
arrival merging.  This package extracts the hot path into one
struct-of-arrays core:

* :class:`~repro.sim.engine.arrivals.ArrivalSchedule` — whole arrival
  epochs as numpy arrays (merged, stably time-sorted) with a cursor
  and a dynamic side-heap for closed-loop follow-ups;
* :class:`~repro.sim.engine.heap.EventHeap` — a binary heap of
  ``(time, kind, seq)`` events that provably never pops out of
  virtual-time order;
* :class:`~repro.sim.engine.table.RequestTable` — request state as
  parallel numpy columns instead of one Python object per request,
  with lazy materialization for trace exports;
* :class:`~repro.sim.engine.queue.IndexQueue` — the bounded FIFO /
  dynamic-batching policy of :class:`~repro.serving.batcher.TenantQueue`
  operating on table indices, with vectorized deadline expiry;
* :class:`~repro.sim.engine.core.EventEngine` — the merge loop
  (arrivals vs. heap events vs. periodic ticks) with an optional bulk
  arrival path, plus :class:`~repro.sim.engine.core.DepthTracker`,
  whose accumulation order is bit-identical to the scalar loop it
  replaced.

The simulators stay the *policy*: admission, batching, routing, and
fault handling are callbacks the engine invokes on index arrays.
Golden parity (``tests/golden/engine_parity.json``) pins every report
and timeline digest to the pre-refactor loops bit-for-bit.
"""

from .arrivals import ArrivalSchedule
from .core import DepthTracker, EventEngine
from .heap import EventHeap
from .queue import IndexQueue
from .table import (
    FAILED,
    PENDING,
    REJECTED,
    RUNNING,
    SERVED,
    SHED,
    TIMED_OUT,
    RequestTable,
    status_of_code,
)

__all__ = [
    "ArrivalSchedule",
    "DepthTracker",
    "EventEngine",
    "EventHeap",
    "IndexQueue",
    "RequestTable",
    "PENDING",
    "RUNNING",
    "SERVED",
    "SHED",
    "TIMED_OUT",
    "FAILED",
    "REJECTED",
    "status_of_code",
]
