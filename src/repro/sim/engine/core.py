"""The merge loop: arrivals vs. heap events vs. periodic ticks.

One instant can hold several event kinds; the processing order is the
legacy single-heap order, made explicit:

1. **ticks** (autoscaler intervals) fire before any event at or after
   their instant (``next_tick <= t_next``);
2. **arrivals** (kind 0 in the old heap) precede same-instant
   completions and timers (``t_arrival <= t_event``);
3. heap events order among themselves by ``(time, kind, seq)``.

When the client signals that per-arrival processing is unobservable —
device busy, no faults, no per-request metrics, fully open loop — the
engine hands the whole span of arrivals up to the next heap event to
``on_arrivals`` as index-free numpy arrays (the bulk-admission fast
path).  Otherwise each arrival goes through ``on_arrival`` exactly as
the scalar loop would.

:class:`DepthTracker` carries the time-weighted queue-depth integral.
Its bulk update is the same cumulative sum the scalar loop computes —
``np.cumsum`` accumulates left-to-right, so seeding it with the running
total reproduces the scalar float adds bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .arrivals import ArrivalSchedule
from .heap import EventHeap

_INF = float("inf")


class DepthTracker:
    """Time-weighted global queue-depth accounting.

    Mirrors the scalar loop's ``advance``: the integral only moves when
    time does, and the accumulation order (one add per event, in event
    order) is preserved exactly so ``queue_depth_mean`` digests stay
    bit-identical.
    """

    __slots__ = ("depth", "depth_max", "integral_s", "last_t")

    def __init__(self) -> None:
        self.depth = 0
        self.depth_max = 0
        self.integral_s = 0.0
        self.last_t = 0.0

    def advance(self, now: float) -> None:
        """Account depth-time up to ``now`` (scalar path)."""
        if now > self.last_t:
            self.integral_s += self.depth * (now - self.last_t)
            self.last_t = now

    def admit(self) -> None:
        self.depth += 1
        if self.depth > self.depth_max:
            self.depth_max = self.depth

    def remove(self, n: int) -> None:
        self.depth -= n

    def advance_bulk(
        self, times: np.ndarray, admitted: np.ndarray
    ) -> None:
        """Account a whole arrival span at once.

        ``admitted[i]`` flags whether arrival ``i`` entered a queue.
        Equivalent scalar sequence per arrival: ``advance(t_i)`` with
        the depth *before* its admission, then ``admit()``.
        """
        n = len(times)
        if n == 0:
            return
        adm = (
            admitted
            if admitted.dtype == np.int64
            else admitted.astype(np.int64)
        )
        inc = np.cumsum(adm)
        self._integrate(times, self.depth + (inc - adm), int(inc[-1]))

    def advance_span(self, times: np.ndarray, take_n: int) -> None:
        """Single-queue span: the first ``take_n`` arrivals admitted,
        the rest shed (FIFO fill) — depth-before is a clipped ramp."""
        n = len(times)
        if n == 0:
            return
        before = self.depth + np.minimum(
            np.arange(n, dtype=np.int64), take_n
        )
        self._integrate(times, before, take_n)

    def _integrate(
        self, times: np.ndarray, depth_before: np.ndarray, grew: int
    ) -> None:
        # The products are computed vectorized but summed in the same
        # order through a seeded cumsum, which accumulates left-to-
        # right — bit-identical to the scalar loop's float adds.
        n = len(times)
        dts = np.empty(n, dtype=np.float64)
        dts[0] = times[0] - self.last_t
        if n > 1:
            dts[1:] = times[1:] - times[:-1]
        prods = depth_before * dts
        self.integral_s = float(
            np.cumsum(np.concatenate(([self.integral_s], prods)))[-1]
        )
        if times[-1] > self.last_t:
            self.last_t = float(times[-1])
        if grew:
            # Depth only grows within an arrival span, so the running
            # max is reached at the final admission.
            self.depth += grew
            if self.depth > self.depth_max:
                self.depth_max = self.depth


class EventEngine:
    """Drives one simulation: a merged arrival epoch plus an event heap.

    The engine owns *when* things happen; clients own *what* happens —
    admission, batching, routing, and fault handling are the callbacks.
    """

    __slots__ = ("schedule", "heap")

    def __init__(
        self,
        schedule: ArrivalSchedule,
        heap: Optional[EventHeap] = None,
    ) -> None:
        self.schedule = schedule
        self.heap = heap if heap is not None else EventHeap()

    def run(
        self,
        *,
        on_arrival: Callable[[float, int], None],
        on_event: Callable[[float, int, object], None],
        bulk_ready: Optional[Callable[[], bool]] = None,
        on_arrivals: Optional[
            Callable[[np.ndarray, np.ndarray], None]
        ] = None,
        next_tick: Optional[Callable[[], float]] = None,
        on_tick: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Process every event in virtual-time order until drained.

        ``bulk_ready``/``on_arrivals`` enable the fast path: when
        ``bulk_ready()`` is true, every static arrival up to (and
        including ties with) the next heap event is delivered as one
        ``on_arrivals(times, owners)`` call.  ``next_tick``/``on_tick``
        interleave a periodic hook that fires before same-or-later
        events (the autoscaler contract).
        """
        schedule = self.schedule
        heap = self.heap
        bulk = on_arrivals is not None and bulk_ready is not None
        ticking = next_tick is not None
        while True:
            t_arrival = schedule.peek_time()
            t_event = heap.peek_time()
            t_next = t_arrival if t_arrival <= t_event else t_event
            if t_next == _INF:
                # No events left: pending ticks never fire (the clock
                # stops with the last real event, as in the old loops).
                return
            if ticking:
                tick_at = next_tick()
                if tick_at <= t_next:
                    on_tick(tick_at)
                    continue
            if t_arrival <= t_event:
                if bulk and bulk_ready():
                    times, owners = schedule.take_until(t_event)
                    if len(times):
                        on_arrivals(times, owners)
                        continue
                    # Only dynamic arrivals remain before the next heap
                    # event; fall through to the scalar path.
                now, owner = schedule.pop()
                on_arrival(now, owner)
            else:
                now, kind, _seq, payload = heap.pop()
                on_event(now, kind, payload)
