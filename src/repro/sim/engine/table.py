"""Request state as a struct of arrays.

One row per request, one numpy column per field — the engine's
replacement for a Python :class:`~repro.serving.request.Request`
object per arrival.  Status codes are small ints mapping 1:1 onto
:class:`~repro.serving.request.RequestStatus`; unset instants are NaN
(materialized back to ``None``).  Consumers that genuinely need
objects (the Chrome-trace export, the CLI) call :meth:`materialize`
once after the run, off the hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

#: status codes (int8 column values), in rough lifecycle order.
PENDING = 0
RUNNING = 1
SERVED = 2
SHED = 3
TIMED_OUT = 4
FAILED = 5
REJECTED = 6


def status_of_code() -> Dict[int, object]:
    """Code → :class:`RequestStatus` map (deferred import: the serving
    package imports this engine, so the edge back must stay lazy)."""
    from ...serving.request import RequestStatus

    return {
        PENDING: RequestStatus.PENDING,
        RUNNING: RequestStatus.RUNNING,
        SERVED: RequestStatus.SERVED,
        SHED: RequestStatus.SHED,
        TIMED_OUT: RequestStatus.TIMED_OUT,
        FAILED: RequestStatus.FAILED,
        REJECTED: RequestStatus.REJECTED,
    }


class RequestTable:
    """Growable struct-of-arrays request store."""

    __slots__ = (
        "arrival_s", "finish_s", "dispatch_s", "deadline_s",
        "status", "tenant", "batch_size", "corrupt", "size",
    )

    def __init__(self, capacity: int = 0) -> None:
        cap = max(int(capacity), 16)
        self.arrival_s = np.empty(cap, dtype=np.float64)
        self.finish_s = np.full(cap, np.nan)
        self.dispatch_s = np.full(cap, np.nan)
        self.deadline_s = np.full(cap, np.nan)
        self.status = np.zeros(cap, dtype=np.int8)
        self.tenant = np.zeros(cap, dtype=np.int32)
        self.batch_size = np.zeros(cap, dtype=np.int32)
        self.corrupt = np.zeros(cap, dtype=bool)
        self.size = 0

    def __len__(self) -> int:
        return self.size

    def _grow_to(self, needed: int) -> None:
        cap = len(self.arrival_s)
        if needed <= cap:
            return
        new = max(needed, cap * 2)
        for name, fill in (
            ("arrival_s", 0.0), ("finish_s", np.nan),
            ("dispatch_s", np.nan), ("deadline_s", np.nan),
        ):
            old = getattr(self, name)
            col = np.full(new, fill)
            col[:cap] = old
            setattr(self, name, col)
        for name, dtype in (
            ("status", np.int8), ("tenant", np.int32),
            ("batch_size", np.int32), ("corrupt", bool),
        ):
            old = getattr(self, name)
            col = np.zeros(new, dtype=dtype)
            col[:cap] = old
            setattr(self, name, col)

    def append(self, arrival_s: float, tenant: int) -> int:
        """Add one request row; returns its index (= request id)."""
        idx = self.size
        self._grow_to(idx + 1)
        self.arrival_s[idx] = arrival_s
        self.tenant[idx] = tenant
        self.size = idx + 1
        return idx

    def append_bulk(
        self,
        arrivals_s: np.ndarray,
        tenant: Union[int, np.ndarray],
    ) -> int:
        """Add one row per arrival; returns the first new index."""
        n = len(arrivals_s)
        start = self.size
        self._grow_to(start + n)
        self.arrival_s[start:start + n] = arrivals_s
        self.tenant[start:start + n] = tenant
        self.size = start + n
        return start

    # -- materialization (off the hot path) ------------------------------

    def materialize(
        self, tenant_names: Sequence[str], limit: Optional[int] = None
    ) -> List["object"]:
        """Build legacy :class:`Request` objects for trace export."""
        from ...serving.request import Request

        codes = status_of_code()
        n = self.size if limit is None else min(limit, self.size)
        arrival = self.arrival_s[:n].tolist()
        finish = self.finish_s[:n].tolist()
        dispatch = self.dispatch_s[:n].tolist()
        deadline = self.deadline_s[:n].tolist()
        status = self.status[:n].tolist()
        tenant = self.tenant[:n].tolist()
        batch = self.batch_size[:n].tolist()
        corrupt = self.corrupt[:n].tolist()
        out: List[Request] = []
        isnan = np.isnan
        for i in range(n):
            out.append(Request(
                request_id=i,
                tenant=tenant_names[tenant[i]],
                arrival_s=arrival[i],
                status=codes[status[i]],
                dispatch_s=None if isnan(dispatch[i]) else dispatch[i],
                finish_s=None if isnan(finish[i]) else finish[i],
                batch_size=batch[i],
                deadline_s=None if isnan(deadline[i]) else deadline[i],
                corrupt=corrupt[i],
            ))
        return out
