"""Merged arrival epochs: numpy arrays instead of heap entries.

Every open-loop arrival process knows its whole trace up front
(:meth:`~repro.workloads.arrivals.ArrivalProcess.as_arrays`), so the
engine merges all streams once — concatenate plus one stable argsort —
and walks a cursor instead of paying ``heappush``/``heappop`` per
request.  Closed-loop follow-ups (arrivals created by completions) go
through a small dynamic side-heap that loses ties against the static
epoch, reproducing the legacy single-heap order where static arrivals
were pushed first and therefore carried smaller sequence numbers.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

_INF = float("inf")


class ArrivalSchedule:
    """Time-ordered arrival cursor over one merged epoch.

    ``streams[k]`` is owner ``k``'s sorted arrival array; the merge is
    stable, so same-instant arrivals keep (owner, position) order —
    exactly the order a shared push-counter heap would produce when
    each owner's arrivals are pushed in declaration order.
    """

    __slots__ = ("times", "owners", "_i", "_n", "_dyn", "_dseq")

    def __init__(self, streams: Sequence[np.ndarray]) -> None:
        chunks: List[np.ndarray] = []
        owners: List[np.ndarray] = []
        for index, stream in enumerate(streams):
            arr = np.asarray(stream, dtype=np.float64)
            chunks.append(arr)
            owners.append(np.full(len(arr), index, dtype=np.int32))
        times = np.concatenate(chunks) if chunks else np.empty(0)
        owner = np.concatenate(owners) if owners else np.empty(0, np.int32)
        order = np.argsort(times, kind="stable")
        self.times = times[order]
        self.owners = owner[order]
        self._i = 0
        self._n = len(self.times)
        #: dynamic follow-ups as (time, seq, owner); seq starts past the
        #: static epoch so dynamics lose every same-instant tie to it.
        self._dyn: List[Tuple[float, int, int]] = []
        self._dseq = self._n

    def __len__(self) -> int:
        return (self._n - self._i) + len(self._dyn)

    def __bool__(self) -> bool:
        return self._i < self._n or bool(self._dyn)

    def push(self, time_s: float, owner: int) -> None:
        """Add one dynamic (closed-loop) arrival."""
        heapq.heappush(self._dyn, (time_s, self._dseq, owner))
        self._dseq += 1

    def peek_time(self) -> float:
        """Instant of the next arrival (``inf`` when exhausted)."""
        s = self.times[self._i] if self._i < self._n else _INF
        if not self._dyn:
            return float(s)
        d = self._dyn[0][0]
        return float(s) if s <= d else d

    def pop(self) -> Tuple[float, int]:
        """Pop the next arrival as (time, owner); static wins ties."""
        s = self.times[self._i] if self._i < self._n else _INF
        if self._dyn:
            d = self._dyn[0][0]
            if d < s:
                time_s, _, owner = heapq.heappop(self._dyn)
                return time_s, owner
        i = self._i
        self._i = i + 1
        return float(s), int(self.owners[i])

    def take_until(self, limit_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """Consume every *static* arrival with ``t <= limit_s`` at once.

        Returns (times, owners) views of the epoch — the bulk-admission
        path.  Callers must only use this when no dynamic arrival can
        precede ``limit_s`` (the engine restricts bulk mode to fully
        open-loop runs, where the side-heap stays empty).
        """
        i = self._i
        j = int(np.searchsorted(self.times, limit_s, side="right"))
        self._i = j
        return self.times[i:j], self.owners[i:j]
