"""Binary event heap on the virtual clock.

A thin, typed wrapper over :mod:`heapq` holding ``(time_s, kind, seq,
payload)`` tuples.  ``kind`` orders same-instant events (smaller kinds
fire first — e.g. completions before wait-expiry timers) and ``seq`` is
a monotone push counter, so ties within one kind resolve in push order
and the payload never participates in comparisons.

The heap enforces its core contract on every pop: virtual time never
runs backwards.  The check is one float compare per pop — measured in
the noise even at fleet scale — and turns a silent causality bug into
an immediate error.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from ...errors import ReproError

_INF = float("inf")


class EventHeap:
    """Min-heap of ``(time_s, kind, seq, payload)`` events."""

    __slots__ = ("_heap", "_seq", "_last_pop_s")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._last_pop_s = -_INF

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time_s: float, kind: int, payload: Any = None) -> None:
        """Schedule one event; same-instant order is (kind, push order)."""
        heapq.heappush(self._heap, (time_s, kind, self._seq, payload))
        self._seq += 1

    def peek_time(self) -> float:
        """Instant of the next event (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else _INF

    def peek_kind(self) -> Optional[int]:
        """Kind of the next event (None when empty)."""
        return self._heap[0][1] if self._heap else None

    def pop(self) -> Tuple[float, int, int, Any]:
        """Pop the next event, enforcing monotone virtual time."""
        time_s, kind, seq, payload = heapq.heappop(self._heap)
        if time_s < self._last_pop_s:
            raise ReproError(
                f"event heap popped t={time_s} after t={self._last_pop_s}: "
                f"virtual time ran backwards"
            )
        self._last_pop_s = time_s
        return time_s, kind, seq, payload
