"""Bounded FIFO + dynamic batching over request-table indices.

Semantics are exactly :class:`~repro.serving.batcher.TenantQueue` —
same counters, same shed/ready/expiry rules, same ``_EPS`` tolerance —
but the pending set is a growable index ring into a
:class:`~repro.sim.engine.table.RequestTable` instead of a deque of
request objects, so batch extraction and deadline expiry are numpy
slices rather than per-request pops.

FIFO order plus a uniform per-tenant deadline offset makes queued
deadlines monotone; expiry is therefore one ``searchsorted`` over the
precomputed ``deadline + eps`` keys instead of a pop-while loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import ReproError
from . import table as tb

#: virtual-clock comparison tolerance — one value shared with the
#: legacy batcher (`repro.serving.batcher._EPS`), duplicated here to
#: keep the engine importable without the serving package.
EPS = 1e-12


class IndexQueue:
    """One tenant's pending requests as indices into a RequestTable."""

    __slots__ = (
        "name", "policy", "table",
        "_buf", "_dkey", "_head", "_tail",
        "offered", "shed", "timed_out", "rejected",
    )

    def __init__(self, name: str, policy, table: tb.RequestTable) -> None:
        self.name = name
        self.policy = policy
        self.table = table
        cap = 64
        self._buf = np.empty(cap, dtype=np.int64)
        #: per-slot expiry key (deadline + EPS); only filled when the
        #: policy sets deadlines.
        self._dkey = np.empty(cap, dtype=np.float64)
        self._head = 0
        self._tail = 0
        self.offered = 0
        self.shed = 0
        self.timed_out = 0
        self.rejected = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def depth(self) -> int:
        return self._tail - self._head

    def _room_for(self, n: int) -> None:
        if self._tail + n <= len(self._buf):
            return
        new = max(self._tail + n, len(self._buf) * 2)
        buf = np.empty(new, dtype=np.int64)
        buf[: self._tail] = self._buf[: self._tail]
        dkey = np.empty(new, dtype=np.float64)
        dkey[: self._tail] = self._dkey[: self._tail]
        self._buf = buf
        self._dkey = dkey

    # -- admission --------------------------------------------------------

    def offer(self, idx: int, arrival_s: float) -> bool:
        """Admit row ``idx`` or shed it; returns True when admitted."""
        self.offered += 1
        if self._tail - self._head >= self.policy.max_queue_depth:
            self.table.status[idx] = tb.SHED
            self.shed += 1
            return False
        self._admit(idx, arrival_s)
        return True

    def _admit(self, idx: int, arrival_s: float) -> None:
        self._room_for(1)
        deadline_s = self.policy.deadline_s
        if deadline_s is not None:
            deadline = arrival_s + deadline_s
            self.table.deadline_s[idx] = deadline
            self._dkey[self._tail] = deadline + EPS
        self._buf[self._tail] = idx
        self._tail += 1

    def admit_bulk(self, idxs: np.ndarray, arrivals_s: np.ndarray) -> None:
        """Admit pre-screened rows (the caller already applied the
        queue-depth cap and counted offered/shed)."""
        n = len(idxs)
        self._room_for(n)
        tail = self._tail
        deadline_s = self.policy.deadline_s
        if deadline_s is not None:
            deadlines = arrivals_s + deadline_s
            self.table.deadline_s[idxs] = deadlines
            self._dkey[tail:tail + n] = deadlines + EPS
        self._buf[tail:tail + n] = idxs
        self._tail = tail + n

    def admit_span(
        self, start: int, n: int, arrivals_s: np.ndarray
    ) -> None:
        """Admit the contiguous pre-screened rows ``start..start+n``
        (single-tenant bulk path: pure slice writes, no fancy
        indexing)."""
        self._room_for(n)
        tail = self._tail
        deadline_s = self.policy.deadline_s
        if deadline_s is not None:
            deadlines = arrivals_s + deadline_s
            self.table.deadline_s[start:start + n] = deadlines
            self._dkey[tail:tail + n] = deadlines + EPS
        self._buf[tail:tail + n] = np.arange(
            start, start + n, dtype=np.int64
        )
        self._tail = tail + n

    def reject(self, idx: int) -> None:
        """Refuse a malformed payload at the door (counts as offered)."""
        self.offered += 1
        self.table.status[idx] = tb.REJECTED
        self.rejected += 1

    # -- deadlines --------------------------------------------------------

    def expire(self, now: float) -> int:
        """Abandon queued requests past deadline; returns the count.

        Expired rows are marked TIMED_OUT with ``finish_s = now``
        (abandonment instant), exactly like the legacy pop-while loop.
        """
        if self.policy.deadline_s is None or self._head == self._tail:
            return 0
        head, tail = self._head, self._tail
        # expired <=> now > deadline + EPS <=> dkey < now; keys are
        # monotone (FIFO + uniform offset), so one bisect finds the cut.
        cut = int(
            np.searchsorted(self._dkey[head:tail], now, side="left")
        )
        if cut == 0:
            return 0
        idxs = self._buf[head:head + cut]
        self.table.status[idxs] = tb.TIMED_OUT
        self.table.finish_s[idxs] = now
        self._head = head + cut
        self.timed_out += cut
        return cut

    # -- batching ---------------------------------------------------------

    @property
    def oldest_arrival_s(self) -> Optional[float]:
        if self._head == self._tail:
            return None
        return float(self.table.arrival_s[self._buf[self._head]])

    def wait_deadline_s(self) -> Optional[float]:
        """Instant the oldest pending request's wait budget expires
        (None when the queue is empty)."""
        oldest = self.oldest_arrival_s
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def ready(self, now: float) -> bool:
        """True when a batch should dispatch at virtual instant ``now``."""
        n = self._tail - self._head
        if n == 0:
            return False
        if n >= self.policy.max_batch_size:
            return True
        return now + EPS >= self.wait_deadline_s()

    def take_batch(self, now: float) -> np.ndarray:
        """Pop up to ``max_batch_size`` rows and mark them running."""
        if self._head == self._tail:
            raise ReproError(
                f"tenant {self.name!r} has no pending requests"
            )
        k = min(self._tail - self._head, self.policy.max_batch_size)
        idxs = self._buf[self._head:self._head + k].copy()
        self._head += k
        self.table.status[idxs] = tb.RUNNING
        self.table.dispatch_s[idxs] = now
        self.table.batch_size[idxs] = k
        return idxs
