"""Trace statistics: utilization, idle gaps, and co-running overlap.

Computes schedule-level quantities from a :class:`~repro.sim.trace.Trace`:

* per-resource busy time / utilization / idle-gap structure;
* the **co-run share** — the fraction of wall time during which the CPU
  and the GPU are *simultaneously* busy, i.e. how much hybrid execution a
  schedule actually achieved (0 for the GPU-only original programs);
* binned utilization profiles for plotting schedules over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import SimulationError
from .trace import Trace


def _merged_intervals(trace: Trace, resource: str) -> List[Tuple[float, float]]:
    """Busy intervals of one resource, merged and sorted."""
    raw = sorted(
        (e.start_s, e.end_s)
        for e in trace.events_for(resource)
        if e.duration_s > 0
    )
    merged: List[Tuple[float, float]] = []
    for start, end in raw:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersect(
    a: Sequence[Tuple[float, float]], b: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Intersection of two sorted interval lists."""
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


@dataclass(frozen=True)
class ResourceStats:
    """Summary of one resource's schedule."""

    resource: str
    busy_s: float
    utilization: float
    event_count: int
    longest_idle_gap_s: float


def resource_stats(trace: Trace, resource: str) -> ResourceStats:
    """Busy time, utilization, and the longest idle gap of one resource."""
    span = trace.span()
    intervals = _merged_intervals(trace, resource)
    busy = sum(end - start for start, end in intervals)
    gaps = []
    cursor = 0.0
    for start, end in intervals:
        if start > cursor:
            gaps.append(start - cursor)
        cursor = max(cursor, end)
    if span > cursor:
        gaps.append(span - cursor)
    return ResourceStats(
        resource=resource,
        busy_s=busy,
        utilization=(busy / span) if span > 0 else 0.0,
        event_count=len([e for e in trace.events_for(resource)
                         if e.duration_s > 0]),
        longest_idle_gap_s=max(gaps) if gaps else 0.0,
    )


def corun_share(trace: Trace, a: str = "cpu", b: str = "gpu") -> float:
    """Fraction of the makespan during which resources ``a`` and ``b`` are
    busy simultaneously — the schedule's achieved hybrid-execution share."""
    span = trace.span()
    if span == 0:
        return 0.0
    overlap = _intersect(_merged_intervals(trace, a), _merged_intervals(trace, b))
    return sum(end - start for start, end in overlap) / span


def utilization_profile(
    trace: Trace, resources: Sequence[str], bins: int = 50
) -> Dict[str, List[float]]:
    """Binned utilization over time: per resource, ``bins`` values in
    [0, 1] giving the busy fraction of each equal slice of the makespan."""
    if bins <= 0:
        raise SimulationError("bins must be positive")
    span = trace.span()
    profile = {r: [0.0] * bins for r in resources}
    if span == 0:
        return profile
    width = span / bins
    for resource in resources:
        for start, end in _merged_intervals(trace, resource):
            first = int(start / width)
            last = min(bins - 1, int(end / width))
            for b in range(first, last + 1):
                lo = max(start, b * width)
                hi = min(end, (b + 1) * width)
                if hi > lo:
                    profile[resource][b] += (hi - lo) / width
    return profile
