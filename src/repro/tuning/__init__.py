"""repro.tuning — fault-tolerant fleet tuning.

MITuna-style ahead-of-time compilation at fleet scale: a
:func:`~repro.tuning.catalog.fleet_catalog` of plan keys drains through
a lease-based :class:`~repro.tuning.queue.JobQueue` across a
multiprocess :class:`~repro.tuning.fleet.TuneFleet` into a
content-addressed :class:`~repro.store.plan_store.PlanStore`.  Worker
crashes, torn writes, and corrupt artifacts are recovered (retried,
quarantined) rather than fatal, and the whole run is deterministic:
same seed, same catalog → byte-identical store manifest.

See ``docs/tuning_fleet.md`` and ``repro tune-fleet --help``.
"""

from .catalog import DEFAULT_BATCH_SIZES, fleet_catalog, key_for, mode_for
from .fleet import FleetReport, TuneFleet, WorkerCrashError, run_fleet
from .queue import (
    DONE,
    JobQueue,
    LEASED,
    PENDING,
    POISONED,
    QUEUE_SCHEMA,
    QUEUE_VERSION,
    TuneJob,
)

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "DONE",
    "FleetReport",
    "JobQueue",
    "LEASED",
    "PENDING",
    "POISONED",
    "QUEUE_SCHEMA",
    "QUEUE_VERSION",
    "TuneFleet",
    "TuneJob",
    "WorkerCrashError",
    "fleet_catalog",
    "key_for",
    "mode_for",
    "run_fleet",
]
