"""TuneFleet: fan plan compilation across a crash-tolerant worker pool.

The coordinator owns the :class:`~repro.tuning.queue.JobQueue` and the
:class:`~repro.store.plan_store.PlanStore` manifest; workers are
process-pool tasks that compile one plan each and write only
content-addressed object files (idempotent, atomic).  The division of
labor is what makes crashes cheap:

* a worker that dies mid-write leaves at worst a ``*.tmp`` corpse — the
  coordinator sees the failure, the queue requeues with backoff, and a
  later attempt writes the same content-addressed object;
* a worker whose write lands corrupted is caught at **ingest**: the
  coordinator re-hashes the object before touching the manifest, and a
  mismatch quarantines the bytes and retries the job;
* a worker that hangs is bounded by the queue's lease deadline.

Failures are injected deterministically through the
:class:`~repro.faults.FaultInjector` keyed draws — the outcome of
(job, attempt) depends only on the seed, never on scheduling order —
which is why two same-seed runs of ``repro tune-fleet`` end with
byte-identical store manifests (the CI determinism gate).
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.plan_cache import PlanKey
from ..errors import ReproError
from ..faults.injector import FaultInjector
from ..faults.resilience import RetryPolicy
from ..faults.scenario import FaultScenario
from ..fsutil import atomic_write_text, sha256_text
from ..store.plan_store import PlanStore
from .queue import DONE, JobQueue, POISONED, TuneJob

_LOG = logging.getLogger(__name__)

#: Quiet scenario for fault-free fleet runs.
_QUIET = FaultScenario(name="quiet-fleet", description="no injected faults")


class WorkerCrashError(ReproError):
    """A (simulated) worker process death mid-write.

    Raised *after* the torn tmp file is on disk, so the coordinator-side
    recovery path sees exactly what a killed process leaves behind.
    Module-level so it pickles across the process-pool boundary.
    """


def _compile_artifact(key: PlanKey, mode: str):
    """Compile one plan key the way its catalog mode prescribes."""
    from ..compile.pipeline import compile_fixed, compile_plan
    from ..core.engine import EdgeNNConfig
    from ..core.tuner import TuningObjective
    from ..hardware.variants import spec_by_name
    from ..nn.precision import Precision

    spec = spec_by_name(key.device)
    if mode == "adaptive":
        config = EdgeNNConfig(
            use_memory_management=key.use_memory_management,
            use_hybrid_execution=key.use_hybrid_execution,
            use_inter_kernel=key.use_inter_kernel,
            use_intra_kernel=key.use_intra_kernel,
            precision=Precision(key.precision),
            batch_size=key.batch_size,
            objective=TuningObjective(key.objective),
        )
        compiled = compile_plan(key.network, spec, config, key=key)
    elif mode in ("fixed:cpu", "fixed:gpu"):
        compiled = compile_fixed(
            key.network,
            spec,
            placement=mode.split(":", 1)[1],
            precision=Precision(key.precision),
            batch_size=key.batch_size,
        )
    else:
        raise ReproError(f"unknown compile mode {mode!r}")
    artifact = compiled.artifact
    if artifact.key != key:
        raise ReproError(
            f"compiled artifact key {artifact.key.slug()!r} does not match "
            f"requested job key {key.slug()!r}"
        )
    return artifact


def _run_worker_job(
    store_root: str,
    key_data: Dict[str, object],
    mode: str,
    attempt: int,
    scenario_data: Optional[Dict[str, object]],
    seed: int,
) -> str:
    """Process-pool entry point: compile one job, write its object.

    Returns the object's sha256 for the coordinator to verify and
    register.  Module-level (picklable) and manifest-free: workers only
    ever touch ``objects/`` — the coordinator owns the manifest.
    """
    key = PlanKey.from_dict(key_data)
    job_id = key.slug()
    injector: Optional[FaultInjector] = None
    if scenario_data is not None:
        injector = FaultInjector(
            FaultScenario.from_dict(scenario_data), seed=seed
        )
    artifact = _compile_artifact(key, mode)
    text = PlanStore.artifact_text(artifact)
    sha = sha256_text(text)
    store = PlanStore(store_root, check_fingerprints=False)
    path = store.object_path(sha)
    if injector is not None and injector.worker_crashes(
        job_id=job_id, attempt=attempt
    ):
        # Die "mid-write": the torn half of the payload is left as the
        # tmp sibling a killed atomic_write_text would leave, then the
        # worker vanishes without reporting a result.
        path.parent.mkdir(parents=True, exist_ok=True)
        torn = path.with_name(path.name + ".tmp")
        # Chaos injection: the torn write IS the point here.
        torn.write_text(text[: max(1, len(text) // 2)])  # repro-analysis: ignore[REPRO230]
        raise WorkerCrashError(
            f"worker crashed mid-write of {job_id} (attempt {attempt})"
        )
    if injector is not None and injector.artifact_corrupt_keyed(
        job_id=job_id, attempt=attempt
    ):
        # The write completes but the payload is damaged: the file sits
        # at the address of the *intended* content, so only the
        # coordinator's ingest-time re-hash can catch it.
        corrupted = text[: max(1, len(text) // 2)] + '"}garbage'
        atomic_write_text(path, corrupted)
        return sha
    if not path.exists():
        atomic_write_text(path, text)
    return sha


@dataclass
class FleetReport:
    """What one ``tune-fleet`` run did (JSON-serializable)."""

    planned: int = 0
    completed: int = 0
    poisoned: int = 0
    attempts: int = 0
    retries: int = 0
    lease_expirations: int = 0
    worker_crashes: int = 0
    corrupt_ingests: int = 0
    quarantined: int = 0
    workers: int = 0
    seed: int = 0
    scenario: str = ""
    wall_s: float = 0.0
    manifest_digest: str = ""
    store_root: str = ""
    poisoned_jobs: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "planned": self.planned,
            "completed": self.completed,
            "poisoned": self.poisoned,
            "attempts": self.attempts,
            "retries": self.retries,
            "lease_expirations": self.lease_expirations,
            "worker_crashes": self.worker_crashes,
            "corrupt_ingests": self.corrupt_ingests,
            "quarantined": self.quarantined,
            "workers": self.workers,
            "seed": self.seed,
            "scenario": self.scenario,
            "wall_s": self.wall_s,
            "manifest_digest": self.manifest_digest,
            "store_root": self.store_root,
            "poisoned_jobs": self.poisoned_jobs,
        }

    def describe(self) -> str:
        lines = [
            f"tune-fleet: {self.completed}/{self.planned} plans compiled "
            f"across {self.workers} workers in {self.wall_s:.2f}s",
            f"  attempts  : {self.attempts} "
            f"({self.retries} retries, "
            f"{self.lease_expirations} expired leases)",
            f"  faults    : {self.worker_crashes} worker crashes, "
            f"{self.corrupt_ingests} corrupt ingests "
            f"({self.quarantined} quarantined)",
            f"  manifest  : {self.manifest_digest}",
        ]
        if self.poisoned:
            lines.append(f"  poisoned  : {self.poisoned} jobs")
            for job in self.poisoned_jobs:
                lines.append(
                    f"    {job['job_id']}: {job['failures']}"
                )
        return "\n".join(lines)


class TuneFleet:
    """Coordinator: drain a job queue through a process pool into a store."""

    def __init__(
        self,
        store: PlanStore,
        queue: JobQueue,
        *,
        workers: int = 4,
        seed: int = 0,
        scenario: Optional[FaultScenario] = None,
        obs=None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.queue = queue
        self.workers = workers
        self.seed = seed
        self.scenario = scenario if scenario is not None else _QUIET
        self._obs = obs
        self._progress = progress or (lambda message: None)

    def run(self) -> FleetReport:
        """Drain the queue; returns the run report.

        Never raises on job failures — crashes, corruption, and poison
        jobs are the expected weather; the report carries the tallies.
        """
        report = FleetReport(
            planned=len(self.queue),
            workers=self.workers,
            seed=self.seed,
            scenario=self.scenario.name,
            store_root=str(self.store.root),
        )
        scenario_data = (
            None if self.scenario.is_quiet else self.scenario.to_dict()
        )
        started = time.monotonic()
        quarantined_at_start = self.store.quarantined
        in_flight: Dict[Future, TuneJob] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            while True:
                now = time.monotonic() - started
                self.queue.expire_leases(now)
                # Fill every free pool slot with the hottest ready job.
                while len(in_flight) < self.workers:
                    job = self.queue.claim(
                        f"worker-{len(in_flight)}", now
                    )
                    if job is None:
                        break
                    report.attempts += 1
                    future = pool.submit(
                        _run_worker_job,
                        str(self.store.root),
                        job.key.to_dict(),
                        job.mode,
                        job.attempts,
                        scenario_data,
                        self.seed,
                    )
                    in_flight[future] = job
                if not in_flight:
                    ready_at = self.queue.next_ready_at(now)
                    if ready_at is None:
                        break  # nothing pending or leased: drained
                    # Sleep exactly through the backoff gap.
                    time.sleep(max(0.0, ready_at - now))
                    continue
                done, _ = wait(
                    in_flight, timeout=1.0, return_when=FIRST_COMPLETED
                )
                now = time.monotonic() - started
                for future in done:
                    job = in_flight.pop(future)
                    self._settle(future, job, now, report)
        # Collect torn-write corpses crashes left behind.
        self.store.sweep_tmp()
        counts = self.queue.counts()
        report.completed = counts[DONE]
        report.poisoned = counts[POISONED]
        report.retries = self.queue.retries
        report.lease_expirations = self.queue.lease_expirations
        report.quarantined = self.store.quarantined - quarantined_at_start
        report.wall_s = time.monotonic() - started
        report.manifest_digest = self.store.digest()
        report.poisoned_jobs = [
            {"job_id": job.job_id, "failures": list(job.failures)}
            for job in self.queue.jobs(POISONED)
        ]
        return report

    def _settle(
        self,
        future: Future,
        job: TuneJob,
        now: float,
        report: FleetReport,
    ) -> None:
        """Apply one finished worker future to the queue + store."""
        try:
            sha = future.result()
        except WorkerCrashError as exc:
            report.worker_crashes += 1
            self._progress(
                f"worker crash on {job.job_id} "
                f"(attempt {job.attempts}): retrying"
            )
            self.queue.fail(job.job_id, f"worker_crash: {exc}", now)
            return
        except Exception as exc:  # noqa: BLE001 - worker errors must not kill the fleet
            self._progress(f"{job.job_id} failed: {exc}")
            self.queue.fail(job.job_id, f"{type(exc).__name__}: {exc}", now)
            return
        try:
            self.store.register(job.key, sha)
        except ReproError as exc:
            # Ingest-time integrity failure: the object was quarantined
            # by the store; consume an attempt and retry the job.
            report.corrupt_ingests += 1
            self._progress(
                f"corrupt object for {job.job_id} quarantined: retrying"
            )
            self.queue.fail(job.job_id, f"corrupt_ingest: {exc}", now)
            return
        self.queue.complete(job.job_id, sha, now)


def run_fleet(
    store_root: Union[str, Path],
    jobs: List[TuneJob],
    *,
    workers: int = 4,
    seed: int = 0,
    scenario: Optional[FaultScenario] = None,
    retry_policy: Optional[RetryPolicy] = None,
    lease_timeout_s: float = 60.0,
    queue_path: Optional[Union[str, Path]] = None,
    obs=None,
    progress: Optional[Callable[[str], None]] = None,
) -> FleetReport:
    """One-call fleet run: build the store + queue, drain the jobs.

    ``queue_path`` defaults to ``<store_root>/queue.json`` so a killed
    run leaves its full queue state next to the store it was filling.
    """
    store_root = Path(store_root)
    store = PlanStore(store_root, obs=obs)
    if queue_path is None:
        queue_path = store_root / "queue.json"
    policy = retry_policy or RetryPolicy(
        max_attempts=4, base_delay_s=0.01, max_delay_s=0.25, seed=seed
    )
    queue = JobQueue(
        queue_path,
        retry_policy=policy,
        lease_timeout_s=lease_timeout_s,
        obs=obs,
    )
    # Skip keys the store already holds: a warm re-run is a no-op.
    fresh = [job for job in jobs if not store.contains(job.key)]
    skipped = len(jobs) - len(fresh)
    if skipped and progress is not None:
        progress(f"{skipped} plans already in the store; skipping")
    queue.add_all(fresh)
    fleet = TuneFleet(
        store,
        queue,
        workers=workers,
        seed=seed,
        scenario=scenario,
        obs=obs,
        progress=progress,
    )
    report = fleet.run()
    report.planned = len(jobs)
    report.completed += skipped
    return report


__all__ = ["FleetReport", "TuneFleet", "WorkerCrashError", "run_fleet"]
