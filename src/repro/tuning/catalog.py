"""Fleet catalogs: which plan keys a tuning fleet should pre-compile.

A serving deployment's plan demand is enumerable up front: every
(network, device, batch size) it may dispatch.  :func:`fleet_catalog`
expands that cross product into :class:`~repro.tuning.queue.TuneJob`
records, choosing per device how the key compiles:

* integrated CPU-GPU devices get the **adaptive** five-stage pipeline
  (the paper's EdgeNN path, default ablation flags all on);
* CPU-only devices (raspberry-pi-4) get ``fixed:cpu``;
* discrete-GPU hosts (rtx-2080ti-host) get ``fixed:gpu``

— exactly the plans :class:`repro.cluster.fleet.Fleet` compiles lazily
today, so a warmed store covers serving and cluster runs with zero
tuner rounds.

Priorities: batch-1 keys (interactive traffic) and any ``hot``
networks claim first (priority 0); everything else is backfill
(priority 1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.plan_cache import PlanKey
from ..errors import ReproError
from ..hardware.specs import DeviceSpec
from ..hardware.variants import full_catalog
from ..nn.models import MODEL_BUILDERS
from .queue import TuneJob

#: Batch sizes a serving deployment dispatches (dynamic batcher range).
DEFAULT_BATCH_SIZES: Sequence[int] = (1, 2, 4, 8)


def mode_for(spec: DeviceSpec) -> str:
    """How plans for this device are compiled (see module docstring)."""
    if spec.is_integrated:
        return "adaptive"
    if spec.has_gpu:
        return "fixed:gpu"
    return "fixed:cpu"


def key_for(network: str, spec: DeviceSpec, batch_size: int) -> PlanKey:
    """The plan key the fleet compiles for one catalog cell.

    Adaptive devices use the default engine flags (all optimizations
    on — the keys :class:`~repro.core.engine.EdgeNNConfig` defaults
    produce at serve time); fixed devices use the all-off flags
    :func:`~repro.compile.pipeline.compile_fixed` stamps.
    """
    adaptive = spec.is_integrated
    return PlanKey(
        network=network,
        device=spec.name,
        batch_size=batch_size,
        precision="fp32",
        use_memory_management=adaptive,
        use_hybrid_execution=adaptive,
        use_inter_kernel=adaptive,
        use_intra_kernel=adaptive,
        objective="latency",
    )


def fleet_catalog(
    networks: Optional[Iterable[str]] = None,
    devices: Optional[Iterable[str]] = None,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    *,
    hot: Iterable[str] = (),
) -> List[TuneJob]:
    """Expand (networks x devices x batches) into prioritized jobs.

    Defaults to every registered model on every catalog device (paper
    catalog + variants).  ``hot`` networks are elevated to priority 0
    at every batch size.  The result is sorted in claim order
    ``(priority, job_id)``, so the catalog itself is deterministic.
    """
    catalog = full_catalog()
    chosen_networks = list(networks) if networks else sorted(MODEL_BUILDERS)
    chosen_devices = list(devices) if devices else sorted(catalog)
    hot_set = set(hot)
    for name in chosen_networks:
        if name not in MODEL_BUILDERS:
            raise ReproError(
                f"unknown network {name!r}; "
                f"available: {sorted(MODEL_BUILDERS)}"
            )
    for name in hot_set:
        if name not in MODEL_BUILDERS:
            raise ReproError(
                f"unknown hot network {name!r}; "
                f"available: {sorted(MODEL_BUILDERS)}"
            )
    for name in chosen_devices:
        if name not in catalog:
            raise ReproError(
                f"unknown device {name!r}; available: {sorted(catalog)}"
            )
    if not batch_sizes:
        raise ReproError("fleet catalog needs at least one batch size")
    for batch in batch_sizes:
        if not isinstance(batch, int) or batch < 1:
            raise ReproError(
                f"batch sizes must be ints >= 1, got {batch!r}"
            )

    jobs: List[TuneJob] = []
    for device_name in chosen_devices:
        spec = catalog[device_name]
        mode = mode_for(spec)
        for network in chosen_networks:
            for batch in batch_sizes:
                priority = 0 if (batch == 1 or network in hot_set) else 1
                jobs.append(TuneJob(
                    key=key_for(network, spec, batch),
                    mode=mode,
                    priority=priority,
                ))
    jobs.sort(key=lambda job: (job.priority, job.job_id))
    return jobs


__all__ = ["DEFAULT_BATCH_SIZES", "fleet_catalog", "key_for", "mode_for"]
