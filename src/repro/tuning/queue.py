"""Fault-tolerant tuning job queue: lease-based claims, bounded retries.

MITuna-style fleet tuning treats each :class:`~repro.core.plan_cache.PlanKey`
as one unit of embarrassingly parallel work.  Workers die, so the queue
never *hands over* a job — it **leases** it:

* a claim marks the job leased until ``now + lease_timeout_s``; if the
  worker neither completes nor fails it by then, the lease expires and
  the job is requeued (the crash counts as an attempt);
* a failed attempt requeues the job with a deterministic exponential
  backoff gate (:meth:`~repro.faults.resilience.RetryPolicy.delay`,
  token = job id, so two same-seed runs back off identically);
* a job that exhausts ``RetryPolicy.max_attempts`` is **poisoned** —
  parked with its failure history instead of spinning forever;
* claims are ordered by ``(priority, job_id)``: hot keys (priority 0,
  e.g. batch-1 interactive plans) compile before the long tail, and the
  job-id tiebreak keeps claim order deterministic.

The queue is *coordinator-owned*: exactly one process mutates it (the
fleet's scheduler thread; workers are pool tasks that report back), so
there is no cross-process locking — just crash safety.  Every
transition persists the whole queue as one atomic JSON write, so a
killed coordinator restarts from its last transition: leased jobs are
simply left to expire and re-run.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..core.plan_cache import PlanKey
from ..errors import ReproError
from ..faults.resilience import RetryPolicy
from ..fsutil import atomic_write_text

QUEUE_SCHEMA = "repro.tune-queue"
QUEUE_VERSION = 1

#: Job lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
POISONED = "poisoned"

_STATES = (PENDING, LEASED, DONE, POISONED)

#: How a plan key is compiled: the adaptive five-stage pipeline or a
#: degenerate fixed placement (the baselines' path for CPU-only /
#: discrete-GPU devices).
MODES = ("adaptive", "fixed:cpu", "fixed:gpu")


@dataclass(frozen=True)
class TuneJob:
    """One unit of fleet work: compile one plan key, one way."""

    key: PlanKey
    mode: str = "adaptive"
    #: claim order: lower claims first (0 = hot key).
    priority: int = 1
    #: attempts already consumed (failures + expired leases).
    attempts: int = 0
    state: str = PENDING
    #: earliest queue-clock instant the job may be claimed (backoff gate).
    not_before_s: float = 0.0
    #: queue-clock deadline of the current lease (while leased).
    lease_deadline_s: float = 0.0
    #: who holds / last held the lease.
    worker: str = ""
    #: failure reasons, in order (provenance for poisoned jobs).
    failures: Tuple[str, ...] = ()
    #: content hash of the produced store object (set when done).
    sha256: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ReproError(
                f"job mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.state not in _STATES:
            raise ReproError(
                f"job state must be one of {_STATES}, got {self.state!r}"
            )

    @property
    def job_id(self) -> str:
        """The key's slug — unique per catalog entry."""
        return self.key.slug()

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key.to_dict(),
            "mode": self.mode,
            "priority": self.priority,
            "attempts": self.attempts,
            "state": self.state,
            "not_before_s": self.not_before_s,
            "lease_deadline_s": self.lease_deadline_s,
            "worker": self.worker,
            "failures": list(self.failures),
            "sha256": self.sha256,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneJob":
        try:
            key_data = data["key"]
            if not isinstance(key_data, Mapping):
                raise ReproError(
                    f"job key must be an object, got {key_data!r}"
                )
            return cls(
                key=PlanKey.from_dict(key_data),
                mode=str(data.get("mode", "adaptive")),
                priority=int(data.get("priority", 1)),  # type: ignore[arg-type]
                attempts=int(data.get("attempts", 0)),  # type: ignore[arg-type]
                state=str(data.get("state", PENDING)),
                not_before_s=float(
                    data.get("not_before_s", 0.0)  # type: ignore[arg-type]
                ),
                lease_deadline_s=float(
                    data.get("lease_deadline_s", 0.0)  # type: ignore[arg-type]
                ),
                worker=str(data.get("worker", "")),
                failures=tuple(
                    str(f) for f in data.get("failures", ())  # type: ignore[union-attr]
                ),
                sha256=str(data.get("sha256", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed tune job record: {exc}") from exc


class JobQueue:
    """Lease-based, file-backed queue of :class:`TuneJob` records.

    The clock is explicit: every time-dependent operation takes ``now``
    (seconds on whatever monotone clock the coordinator uses), so lease
    expiry and backoff are unit-testable without sleeping.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        lease_timeout_s: float = 60.0,
        obs=None,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ReproError(
                f"lease_timeout_s must be > 0, got {lease_timeout_s}"
            )
        self._path = Path(path) if path is not None else None
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=4, base_delay_s=0.01, max_delay_s=0.25
        )
        self.lease_timeout_s = lease_timeout_s
        self._obs = obs
        self._lock = threading.RLock()
        self._jobs: Dict[str, TuneJob] = {}
        #: attempts re-queued after a reported failure.
        self.retries = 0
        #: leases that expired without a report (worker presumed dead).
        self.lease_expirations = 0

    # -- persistence ----------------------------------------------------------

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def _persist(self) -> None:
        if self._path is None:
            return
        doc = {
            "schema": QUEUE_SCHEMA,
            "version": QUEUE_VERSION,
            "jobs": [
                self._jobs[job_id].to_dict()
                for job_id in sorted(self._jobs)
            ],
        }
        atomic_write_text(
            self._path, json.dumps(doc, indent=1, sort_keys=True) + "\n"
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        retry_policy: Optional[RetryPolicy] = None,
        lease_timeout_s: float = 60.0,
        obs=None,
    ) -> "JobQueue":
        """Resume a queue from its file (crashed-coordinator restart).

        Leased jobs are loaded as-is; their leases date from the dead
        coordinator's clock, so callers typically follow up with
        :meth:`expire_leases` to requeue them.
        """
        queue = cls(
            path,
            retry_policy=retry_policy,
            lease_timeout_s=lease_timeout_s,
            obs=obs,
        )
        try:
            data = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ReproError(f"cannot read job queue {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"job queue {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("schema") != QUEUE_SCHEMA:
            raise ReproError(
                f"{path} is not a tune-queue file "
                f"(expected schema {QUEUE_SCHEMA!r})"
            )
        if data.get("version") != QUEUE_VERSION:
            raise ReproError(
                f"unsupported tune-queue version {data.get('version')!r} "
                f"(this build reads {QUEUE_VERSION})"
            )
        for record in data.get("jobs", ()):
            job = TuneJob.from_dict(record)
            queue._jobs[job.job_id] = job
        return queue

    # -- enqueue --------------------------------------------------------------

    def add(self, job: TuneJob) -> bool:
        """Enqueue a job; returns False if its id is already present."""
        with self._lock:
            if job.job_id in self._jobs:
                return False
            self._jobs[job.job_id] = job
            self._persist()
            self._gauge_depth()
            return True

    def add_all(self, jobs: List[TuneJob]) -> int:
        """Enqueue many jobs in one persist; returns how many were new."""
        with self._lock:
            added = 0
            for job in jobs:
                if job.job_id not in self._jobs:
                    self._jobs[job.job_id] = job
                    added += 1
            if added:
                self._persist()
                self._gauge_depth()
            return added

    # -- lease protocol -------------------------------------------------------

    def expire_leases(self, now: float) -> List[str]:
        """Requeue every lease past its deadline; returns the job ids.

        An expired lease means the worker died (or hung) without
        reporting: the silence consumes an attempt exactly like a
        reported failure, so a job that kills every worker it lands on
        still poisons out after ``max_attempts``.
        """
        with self._lock:
            expired: List[str] = []
            for job_id in sorted(self._jobs):
                job = self._jobs[job_id]
                if job.state == LEASED and now >= job.lease_deadline_s:
                    expired.append(job_id)
                    self.lease_expirations += 1
                    self._fail_locked(
                        job, f"lease expired (worker {job.worker!r})", now
                    )
            if expired:
                self._persist()
                self._gauge_depth()
            return expired

    def claim(self, worker: str, now: float) -> Optional[TuneJob]:
        """Lease the highest-priority claimable job to ``worker``.

        Claimable = pending with its backoff gate open
        (``not_before_s <= now``).  Ordering is ``(priority, job_id)``,
        so hot keys drain first and ties break deterministically.
        Returns None when nothing is claimable right now.
        """
        with self._lock:
            best: Optional[TuneJob] = None
            for job in self._jobs.values():
                if job.state != PENDING or job.not_before_s > now:
                    continue
                if best is None or (
                    (job.priority, job.job_id)
                    < (best.priority, best.job_id)
                ):
                    best = job
            if best is None:
                return None
            leased = replace(
                best,
                state=LEASED,
                worker=worker,
                lease_deadline_s=now + self.lease_timeout_s,
            )
            self._jobs[leased.job_id] = leased
            self._persist()
            return leased

    def complete(self, job_id: str, sha256: str, now: float) -> TuneJob:
        """Mark a leased job done (its store object is ``sha256``)."""
        with self._lock:
            job = self._require(job_id)
            if job.state != LEASED:
                raise ReproError(
                    f"cannot complete job {job_id!r} in state {job.state!r}"
                )
            done = replace(
                job, state=DONE, sha256=sha256, lease_deadline_s=0.0
            )
            self._jobs[job_id] = done
            self._persist()
            self._gauge_depth()
            return done

    def fail(self, job_id: str, reason: str, now: float) -> TuneJob:
        """Record a failed attempt; requeue with backoff or poison."""
        with self._lock:
            job = self._require(job_id)
            if job.state not in (LEASED, PENDING):
                raise ReproError(
                    f"cannot fail job {job_id!r} in state {job.state!r}"
                )
            failed = self._fail_locked(job, reason, now)
            self._persist()
            self._gauge_depth()
            return failed

    def _fail_locked(self, job: TuneJob, reason: str, now: float) -> TuneJob:
        attempts = job.attempts + 1
        failures = job.failures + (reason,)
        if attempts >= self.retry_policy.max_attempts:
            updated = replace(
                job,
                state=POISONED,
                attempts=attempts,
                failures=failures,
                lease_deadline_s=0.0,
            )
            self._counter("tune_jobs_poisoned_total").inc()
        else:
            # Deterministic backoff: attempt index + job id fully
            # determine the delay, so two same-seed fleet runs gate
            # retries identically no matter which worker failed when.
            delay = self.retry_policy.delay(
                attempts - 1, token=job.job_id
            )
            updated = replace(
                job,
                state=PENDING,
                attempts=attempts,
                failures=failures,
                not_before_s=now + delay,
                lease_deadline_s=0.0,
                worker="",
            )
            self.retries += 1
            self._counter("tune_jobs_retried_total").inc()
        self._jobs[job.job_id] = updated
        return updated

    def _require(self, job_id: str) -> TuneJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown tune job {job_id!r}")
        return job

    # -- introspection --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Jobs per state (every state present, zero-filled)."""
        with self._lock:
            counts = {state: 0 for state in _STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def outstanding(self) -> int:
        """Jobs that still need work (pending + leased)."""
        counts = self.counts()
        return counts[PENDING] + counts[LEASED]

    def next_ready_at(self, now: float) -> Optional[float]:
        """Earliest instant a pending job becomes claimable (>= now).

        None when no job is pending; ``now`` when one is claimable
        already.  The fleet uses this to sleep exactly through a
        backoff gap instead of polling.
        """
        with self._lock:
            gates = [
                max(job.not_before_s, now)
                for job in self._jobs.values()
                if job.state == PENDING
            ]
            return min(gates) if gates else None

    def jobs(self, state: Optional[str] = None) -> List[TuneJob]:
        """Snapshot of jobs (optionally one state), sorted by id."""
        with self._lock:
            selected = [
                job for job in self._jobs.values()
                if state is None or job.state == state
            ]
            return sorted(selected, key=lambda j: j.job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- obs ------------------------------------------------------------------

    def _counter(self, name: str):
        if self._obs is not None and getattr(self._obs, "enabled", False):
            return self._obs.metrics.counter(
                name, "Tuning fleet job-queue events."
            )
        return _NULL_INSTRUMENT

    def _gauge_depth(self) -> None:
        if self._obs is not None and getattr(self._obs, "enabled", False):
            counts = {state: 0 for state in _STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            self._obs.metrics.gauge(
                "tune_queue_depth", "Unfinished tuning jobs.",
            ).set(float(counts[PENDING] + counts[LEASED]))


class _NullInstrument:
    def inc(self, value: float = 1.0) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


__all__ = [
    "DONE",
    "JobQueue",
    "LEASED",
    "MODES",
    "PENDING",
    "POISONED",
    "QUEUE_SCHEMA",
    "QUEUE_VERSION",
    "TuneJob",
]
